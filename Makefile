# Convenience targets for the reproduction.

.PHONY: install test bench examples figures outputs analyze bounds typecheck clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/

# Static deadlock (CDG) + queue-bound certification + determinism (lint)
# analysis; fails on any disagreement with the runtime expectation table /
# QueueBoundOracle or any new lint violation.
analyze:
	PYTHONPATH=src python -m repro analyze all

# Just the queue-bound certifier (the Theorem 15 BOUNDED/UNBOUNDED table
# cross-checked against the runtime QueueBoundOracle).
bounds:
	PYTHONPATH=src python -m repro analyze bounds

# mypy --strict slice (see [tool.mypy] in pyproject.toml).  mypy is a dev
# dependency; CI installs it, locally it is optional.
typecheck:
	@command -v mypy >/dev/null || { echo "mypy not installed; pip install mypy"; exit 1; }
	mypy --config-file pyproject.toml

bench:
	python -m pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/adversarial_showdown.py 120
	python examples/bounded_queue_tradeoff.py
	python examples/linear_time_routing.py
	python examples/dynamic_traffic.py
	python examples/hard_instance_library.py
	python examples/render_figures.py

# The artifacts recorded in EXPERIMENTS.md.
outputs:
	python -m pytest tests/ 2>&1 | tee test_output.txt
	python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Remove caches only -- benchmarks/results/ holds checked-in artifacts
# recorded in EXPERIMENTS.md and must survive a clean.
clean:
	rm -rf .pytest_cache campaigns hard_instances
	find . -name __pycache__ -type d -exec rm -rf {} +
