"""Fault plans on the array engine: byte-identity with the reference path.

The array engine evaluates fault plans as a vectorized per-step
availability mask built from the same pure counter-hash draws the
reference engine's scalar ``link_filter`` closure consumes -- so a
faulted run must be *byte-identical* across engines: same per-step
moves, same refusal accounting, same delivery times.  These tests pin
that contract for both plan families the issue names (Bernoulli and
scheduled outages) plus their composition, and check the fail-fast
guardrails around what the backend still does not model.
"""

import pytest

from repro.faults import (
    BernoulliLinkPlan,
    CompositeFaultPlan,
    Outage,
    ScheduledOutagePlan,
    run_faulty,
)
from repro.faults.plan import link_draw, link_draw_array
from repro.mesh import Mesh, Simulator, Torus
from repro.mesh.directions import Direction
from repro.verify import ARRAY_PORTED, REGISTRY
from repro.workloads import random_permutation

import numpy as np


def _trace(engine, router, plan, topology, steps=50):
    """Per-step configuration fingerprints of a faulted run."""
    sim = Simulator(
        topology,
        REGISTRY[router].factory(2, 0),
        random_permutation(topology, seed=0),
        engine=engine,
    )
    plan.attach(sim)
    assert sim.engine_name == engine
    trace = []
    for _ in range(steps):
        if sim.done:
            break
        sim.step()
        trace.append(
            (
                sim.time,
                sim.total_moves,
                sim.refused_moves,
                sim.scheduled_moves,
                sim.max_queue_len,
                tuple(sorted(sim.delivery_times.items())),
            )
        )
    return trace


def _plans():
    return {
        "bernoulli": lambda: BernoulliLinkPlan(0.8, seed=7),
        "scheduled": lambda: ScheduledOutagePlan(
            [
                Outage((2, 2), 3, 15),
                Outage((1, 0), 0, 10, Direction.E),
                Outage((3, 3), 5, 25),
                Outage((0, 2), 8, 12, Direction.N),
            ]
        ),
        "composite": lambda: CompositeFaultPlan(
            BernoulliLinkPlan(0.9, seed=3),
            ScheduledOutagePlan([Outage((2, 1), 2, 20)]),
        ),
    }


class TestFaultedByteIdentity:
    @pytest.mark.parametrize("router", sorted(ARRAY_PORTED))
    @pytest.mark.parametrize("plan_name", sorted(_plans()))
    def test_mesh_trace_identical(self, router, plan_name):
        make_plan = _plans()[plan_name]
        ref = _trace("reference", router, make_plan(), Mesh(6))
        arr = _trace("array", router, make_plan(), Mesh(6))
        assert arr == ref

    @pytest.mark.parametrize("router", sorted(ARRAY_PORTED))
    def test_torus_trace_identical_under_bernoulli(self, router):
        ref = _trace("reference", router, BernoulliLinkPlan(0.7, seed=1), Torus(6))
        arr = _trace("array", router, BernoulliLinkPlan(0.7, seed=1), Torus(6))
        assert arr == ref


class TestVectorizedDraws:
    def test_link_draw_array_matches_scalar_exactly(self):
        xs = np.array([0, 1, 2, 5, 7, 0, 3], dtype=np.int64)
        ys = np.array([0, 0, 3, 5, 1, 7, 3], dtype=np.int64)
        dirs = np.array([0, 1, 2, 3, 0, 1, 2], dtype=np.int64)
        for seed in (0, 1, 12345):
            for t in (0, 1, 99, 10_000):
                batched = link_draw_array(seed, xs, ys, dirs, t)
                scalar = [
                    link_draw(seed, (int(x), int(y)), Direction(int(d)), t)
                    for x, y, d in zip(xs, ys, dirs)
                ]
                assert batched.tolist() == scalar  # exact, not approx

    def test_elementwise_fallback_used_for_scheduled_plans(self):
        plan = ScheduledOutagePlan([Outage((1, 1), 0, 10, Direction.E)])
        xs = np.array([1, 1, 2], dtype=np.int64)
        ys = np.array([1, 1, 1], dtype=np.int64)
        dirs = np.array([1, 0, 1], dtype=np.int64)  # E, N, E
        up = plan.link_up_array(xs, ys, dirs, 5)
        assert up.tolist() == [False, True, True]

    def test_all_up_plan_shortcuts_to_ones(self):
        plan = BernoulliLinkPlan(1.0)
        xs = np.array([0, 1], dtype=np.int64)
        up = plan.link_up_array(xs, xs, xs, 0)
        assert up.all()


class TestRunFaultyEngine:
    def test_run_faulty_array_matches_reference(self):
        topo = Mesh(6)
        reports = {}
        for engine in ("reference", "array"):
            reports[engine] = run_faulty(
                topo,
                REGISTRY["bounded-dor"].factory(2, 0),
                random_permutation(topo, seed=0),
                BernoulliLinkPlan(0.85, seed=2),
                max_steps=400,
                engine=engine,
            ).to_metrics()
        ref, arr = reports["reference"], reports["array"]
        assert ref.pop("engine") == "reference"
        assert arr.pop("engine") == "array"
        assert arr == ref

    def test_run_faulty_records_actual_engine(self):
        topo = Mesh(4)
        metrics = run_faulty(
            topo,
            REGISTRY["bounded-dor"].factory(2, 0),
            random_permutation(topo, seed=0),
            BernoulliLinkPlan(0.9, seed=0),
            max_steps=200,
            engine="array",
        ).to_metrics()
        assert metrics["engine"] == "array"

    def test_retransmission_on_array_fails_fast(self):
        topo = Mesh(4)
        with pytest.raises(NotImplementedError, match="reference"):
            run_faulty(
                topo,
                REGISTRY["bounded-dor"].factory(2, 0),
                random_permutation(topo, seed=0),
                BernoulliLinkPlan(0.9, seed=0),
                max_steps=200,
                retransmit_timeout=20,
                engine="array",
            )
