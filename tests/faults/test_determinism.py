"""Bit-identical faulty runs: across workers, repeats, and code paths."""

import pytest

from repro.faults import (
    BernoulliLinkPlan,
    ConservativeBoundedDimensionOrderRouter,
    run_faulty,
)
from repro.harness import CampaignSpec, TrialSpec, run_campaign
from repro.mesh import Mesh, Simulator
from repro.workloads import random_permutation


def faults_spec(**overrides):
    fields = dict(
        kind="faults",
        algorithm="conservative-bounded-dor",
        n=6,
        k=2,
        availability=0.8,
        seed=0,
        max_steps=800,
    )
    fields.update(overrides)
    return TrialSpec(**fields)


class TestRunFaultyDeterminism:
    def test_repeated_runs_are_bit_identical(self):
        def once():
            topo = Mesh(8)
            return run_faulty(
                topo,
                ConservativeBoundedDimensionOrderRouter(2),
                random_permutation(topo, seed=4),
                BernoulliLinkPlan(0.7, seed=4),
                max_steps=1500,
                retransmit_timeout=40,
            ).to_metrics()

        assert once() == once()

    def test_filtered_path_with_full_availability_matches_unfiltered(self):
        """availability=1.0 installs the link_filter (disabling the
        fast offer path) but fails nothing: the filtered and unfiltered
        simulator paths must produce the same run."""
        topo = Mesh(6)
        packets = random_permutation(topo, seed=9)

        def run(attach_plan):
            sim = Simulator(
                topo,
                ConservativeBoundedDimensionOrderRouter(2),
                list(packets),
                validate=False,
            )
            if attach_plan:
                BernoulliLinkPlan(1.0, seed=0).attach(sim)
                assert sim.link_filter is not None
            result = sim.run(max_steps=500)
            return result.steps, result.total_moves, result.delivery_times

        assert run(True) == run(False)


class TestCampaignDeterminism:
    @pytest.fixture(autouse=True)
    def pinned_code_version(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "faults-determinism-test")

    def test_rows_identical_across_worker_counts(self, tmp_path):
        campaign = CampaignSpec(
            name="faults_det",
            trials=[
                faults_spec(),
                faults_spec(algorithm="fault-reroute", availability=0.9),
                faults_spec(
                    algorithm="bounded-dor", availability=0.6, seed=1
                ),
                faults_spec(mttf=50, mttr=5, retransmit_timeout=30),
            ],
        )
        serial = run_campaign(
            campaign, workers=1, base_dir=tmp_path / "serial", fresh=True
        )
        pooled = run_campaign(
            campaign, workers=4, base_dir=tmp_path / "pooled", fresh=True
        )
        assert serial.ok and pooled.ok
        assert [t.metrics for t in serial.results] == [
            t.metrics for t in pooled.results
        ]
        # The stored row files are byte-identical, not merely equal.
        serial_rows = (tmp_path / "serial/faults_det/results.jsonl").read_bytes()
        pooled_rows = (tmp_path / "pooled/faults_det/results.jsonl").read_bytes()
        assert serial_rows == pooled_rows
