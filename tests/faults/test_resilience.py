"""Resilience layer: conservative queueing, drops, retransmission."""

import pytest

from repro.faults import (
    BernoulliLinkPlan,
    CompositeFaultPlan,
    ConservativeBoundedDimensionOrderRouter,
    FaultPlan,
    Outage,
    RenewalOutagePlan,
    ResilienceManager,
    ScheduledOutagePlan,
    run_faulty,
)
from repro.mesh import Mesh, Simulator
from repro.mesh.packet import Packet
from repro.verify.oracles import (
    PacketConservationOracle,
    QueueBoundOracle,
    attach_checker,
)
from repro.workloads import random_permutation


def fresh_sim(packets, n=4, k=2, validate=False):
    return Simulator(
        Mesh(n),
        ConservativeBoundedDimensionOrderRouter(k),
        packets,
        validate=validate,
    )


class TestSimulatorFaultHooks:
    def test_drop_packet_removes_from_queue_and_counts(self):
        p = Packet(0, (0, 0), (3, 3))
        sim = fresh_sim([p])
        assert sim.packets_at((0, 0)) == [p]
        sim.drop_packet(p)
        assert sim.packets_at((0, 0)) == []
        assert sim.dropped == {0: 0}
        assert sim.done  # dropped counts as resolved

    def test_drop_pending_removes_future_injection(self):
        p = Packet(0, (0, 0), (3, 3), injection_time=10)
        sim = fresh_sim([p])
        sim.drop_pending(0)
        assert sim.dropped == {0: 0}
        assert sim.pending_count == 0
        with pytest.raises(ValueError, match="not pending"):
            sim.drop_pending(0)

    def test_inject_packet_mid_run(self):
        sim = fresh_sim([Packet(0, (0, 0), (1, 0))])
        sim.step()
        sim.inject_packet(Packet(1, (2, 2), (2, 2), injection_time=sim.time + 1))
        assert sim.total_packets == 2
        result = sim.run(max_steps=50)
        assert result.completed and result.delivered == 2

    def test_inject_packet_rejects_duplicate_and_offgrid(self):
        sim = fresh_sim([Packet(0, (0, 0), (3, 3))])
        with pytest.raises(ValueError, match="duplicate packet id"):
            sim.inject_packet(Packet(0, (1, 1), (2, 2)))
        with pytest.raises(ValueError, match="outside topology"):
            sim.inject_packet(Packet(7, (9, 9), (0, 0)))

    def test_conservation_oracle_accounts_for_drops(self):
        packets = [Packet(0, (0, 0), (3, 3)), Packet(1, (3, 3), (0, 0))]
        sim = fresh_sim(packets)
        checker = attach_checker(
            sim, [PacketConservationOracle()], mode="strict"
        )
        sim.drop_packet(packets[0])
        sim.run(max_steps=50)  # strict mode: any imbalance would raise
        checker.finish()
        assert sim.dropped == {0: 0}
        assert sim.delivery_times.keys() == {1}


class TestConservativeRouter:
    def test_never_overflows_under_heavy_flakiness(self):
        topo = Mesh(8)
        sim = Simulator(
            topo,
            ConservativeBoundedDimensionOrderRouter(1),
            random_permutation(topo, seed=0),
            validate=False,
        )
        BernoulliLinkPlan(0.5, seed=0).attach(sim)
        checker = attach_checker(sim, [QueueBoundOracle()], mode="record")
        sim.run(max_steps=2000)
        checker.finish()
        assert checker.violations == []

    def test_contract_model_blockable_everywhere(self):
        model = ConservativeBoundedDimensionOrderRouter(2).enumerate_transitions(
            Mesh(4), 2
        )
        assert model is not None
        assert "accept-if-space" in model.note


class TestResilienceManager:
    def test_validation(self):
        sim = fresh_sim([])
        with pytest.raises(ValueError, match="timeout"):
            ResilienceManager(sim, FaultPlan(), timeout=0)
        with pytest.raises(ValueError, match="max_retransmits"):
            ResilienceManager(sim, FaultPlan(), timeout=5, max_retransmits=-1)

    def test_node_outage_drops_then_retransmits_to_completion(self):
        """A packet parked at a node that dies is dropped, re-injected at
        its source after the timeout, and eventually delivered."""
        p = Packet(0, (0, 0), (3, 0))
        sim = fresh_sim([p], n=4)
        # Node (1, 0) is down for steps 1..40: the eastbound packet gets
        # dropped (it cannot reach (1,0) -- links into a down node fail --
        # unless it is already there; kill its source instead).
        plan = ScheduledOutagePlan([Outage((0, 0), 1, 40)])
        plan.attach(sim)
        # timeout=25: the first retransmit (step 25) also dies at the
        # still-down source; the second (step 50) finally gets through.
        manager = ResilienceManager(sim, plan, timeout=25)
        while sim.time < 200 and not (sim.done and manager.settled):
            sim.step()
        assert manager.dropped_by_outage >= 1
        assert manager.retransmissions >= 1
        assert 0 in manager.delivered_at
        assert manager.delivered_fraction == 1.0
        # Latency is measured against the *original* injection time.
        assert manager.latencies()[0] >= 40

    def test_duplicate_suppression_keeps_conservation(self):
        """When the original survives after all, late copies are dropped
        the moment the first one arrives; strict conservation holds."""
        topo = Mesh(6)
        sim = Simulator(
            topo,
            ConservativeBoundedDimensionOrderRouter(2),
            random_permutation(topo, seed=3),
            validate=False,
        )
        plan = BernoulliLinkPlan(0.6, seed=4)
        plan.attach(sim)
        checker = attach_checker(
            sim, [PacketConservationOracle()], mode="strict"
        )
        manager = ResilienceManager(sim, plan, timeout=15)
        while sim.time < 1500 and not (sim.done and manager.settled):
            sim.step()
        checker.finish()
        assert manager.delivered_fraction == 1.0
        assert manager.retransmissions > 0
        # Every original delivered exactly once; surplus copies dropped.
        assert len(sim.delivery_times) == manager.originals
        assert len(sim.dropped) == manager.retransmissions

    def test_settled_semantics(self):
        p = Packet(0, (0, 0), (3, 3))
        sim = fresh_sim([p])
        # The destination is dead forever: delivery is impossible.
        plan = ScheduledOutagePlan([Outage((3, 3), 0, 10**6)])
        plan.attach(sim)
        manager = ResilienceManager(sim, plan, timeout=5, max_retransmits=2)
        assert not manager.settled  # retransmission budget remains
        while sim.time < 100 and not (sim.done and manager.settled):
            sim.step()
        assert manager.settled
        assert manager._attempts[0] == 2
        assert manager.delivered_fraction == 0.0

    def test_counters_shape(self):
        sim = fresh_sim([Packet(0, (0, 0), (1, 1))])
        manager = ResilienceManager(sim, FaultPlan(), timeout=50)
        while sim.time < 50 and not (sim.done and manager.settled):
            sim.step()
        assert manager.counters() == {
            "originals": 1,
            "delivered_originals": 1,
            "retransmissions": 0,
            "dropped_by_outage": 0,
        }


class TestRunFaulty:
    def test_retransmission_recovers_most_of_an_outage_heavy_run(self):
        """The verified headline scenario: Bernoulli flakiness plus a node
        renewal process; retransmission recovers 63/64 originals."""
        topo = Mesh(8)
        plan = CompositeFaultPlan(
            BernoulliLinkPlan(0.9, seed=3),
            RenewalOutagePlan(60, 8, seed=5, scope="node"),
        )
        report = run_faulty(
            topo,
            ConservativeBoundedDimensionOrderRouter(2),
            random_permutation(topo, seed=1),
            plan,
            max_steps=2000,
            retransmit_timeout=50,
        )
        metrics = report.to_metrics()
        assert metrics["originals"] == 64
        assert metrics["delivered_fraction"] >= 0.9
        assert metrics["retransmissions"] > 0
        assert metrics["queue_bound_violations"] == 0
        assert not report.overflowed

    def test_fault_free_run_is_clean_and_complete(self):
        topo = Mesh(6)
        report = run_faulty(
            topo,
            ConservativeBoundedDimensionOrderRouter(2),
            random_permutation(topo, seed=0),
            FaultPlan(),
            max_steps=500,
        )
        assert report.ok
        m = report.to_metrics()
        assert m["completed"] and m["delivered_fraction"] == 1.0
        assert m["dropped_packets"] == 0 and m["retransmissions"] == 0
        assert m["latency_p50"] is not None
        assert m["latency_p50"] <= m["latency_p99"]
