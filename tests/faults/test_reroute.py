"""Fault-aware rerouting: bounded sidesteps around dead links."""

import pytest

from repro.faults import (
    ConservativeBoundedDimensionOrderRouter,
    FaultAwareRerouteRouter,
    FaultPlan,
    Outage,
    ScheduledOutagePlan,
    run_faulty,
)
from repro.faults.reroute import rectangle_excess
from repro.mesh import Mesh, Simulator
from repro.mesh.directions import Direction
from repro.mesh.packet import Packet
from repro.verify.oracles import MinimalityOracle, attach_checker
from repro.workloads import random_permutation


def reroute_router(plan, k=2, delta=1):
    return FaultAwareRerouteRouter(
        ConservativeBoundedDimensionOrderRouter(k), plan, delta=delta
    )


class TestRectangleExcess:
    def test_inside_rectangle_is_zero(self):
        assert rectangle_excess((2, 2), (0, 0), (4, 4)) == 0
        assert rectangle_excess((0, 4), (0, 0), (4, 4)) == 0  # corner

    def test_outside_counts_manhattan_distance_to_rectangle(self):
        assert rectangle_excess((5, 2), (0, 0), (4, 4)) == 1
        assert rectangle_excess((5, 5), (0, 0), (4, 4)) == 2
        assert rectangle_excess((0, 3), (1, 1), (3, 2)) == 2

    def test_endpoint_order_irrelevant(self):
        assert rectangle_excess((6, 1), (4, 4), (0, 0)) == rectangle_excess(
            (6, 1), (0, 0), (4, 4)
        )


class TestConstruction:
    def test_delta_validated(self):
        with pytest.raises(ValueError, match="delta"):
            reroute_router(FaultPlan(), delta=-1)

    def test_contract_metadata(self):
        router = reroute_router(FaultPlan(), delta=2)
        assert router.name == "fault-reroute"
        assert not router.minimal
        assert not router.destination_exchangeable
        assert router.excursion_delta() == 2
        assert router.enumerate_transitions(Mesh(4), 2) is None

    def test_delegates_queue_spec_to_inner(self):
        inner = ConservativeBoundedDimensionOrderRouter(3)
        router = FaultAwareRerouteRouter(inner, FaultPlan())
        assert router.queue_spec == inner.queue_spec


class TestSidestep:
    def test_dead_link_sidestepped_within_delta(self):
        """An eastbound packet meeting a dead E link takes one vertical
        sidestep (excess 1) and still arrives; a plain minimal router
        would wait out the whole outage."""
        p = Packet(0, (0, 0), (3, 0))
        plan = ScheduledOutagePlan(
            [Outage((1, 0), 0, 200, direction=Direction.E)]
        )
        sim = Simulator(Mesh(4), reroute_router(plan, delta=1), [p], validate=False)
        plan.attach(sim)
        checker = attach_checker(sim, [MinimalityOracle()], mode="strict")
        result = sim.run(max_steps=50)
        checker.finish()  # excursion bound delta=1 held throughout
        assert result.completed
        # The detour costs exactly two extra hops (up-and-over, back down).
        assert result.delivery_times[0] == 3 + 2

    def test_minimal_router_waits_out_the_same_outage(self):
        p = Packet(0, (0, 0), (3, 0))
        plan = ScheduledOutagePlan(
            [Outage((1, 0), 0, 200, direction=Direction.E)]
        )
        sim = Simulator(
            Mesh(4),
            ConservativeBoundedDimensionOrderRouter(2),
            [p],
            validate=False,
        )
        plan.attach(sim)
        result = sim.run(max_steps=50)
        assert not result.completed  # stuck behind the dead link

    def test_zero_delta_never_leaves_the_rectangle(self):
        """delta=0 allows sidesteps only *along* the rectangle boundary;
        a packet on a degenerate (flat) rectangle cannot detour at all."""
        p = Packet(0, (0, 0), (3, 0))
        plan = ScheduledOutagePlan(
            [Outage((1, 0), 0, 200, direction=Direction.E)]
        )
        sim = Simulator(Mesh(4), reroute_router(plan, delta=0), [p], validate=False)
        plan.attach(sim)
        result = sim.run(max_steps=50)
        assert not result.completed

    def test_faultless_behavior_matches_inner_router(self):
        topo = Mesh(6)
        packets = random_permutation(topo, seed=2)

        def run(algorithm):
            sim = Simulator(topo, algorithm, list(packets), validate=False)
            result = sim.run(max_steps=500)
            return result.steps, result.delivery_times

        assert run(reroute_router(FaultPlan())) == run(
            ConservativeBoundedDimensionOrderRouter(2)
        )

    def test_full_run_under_scheduled_outages_is_oracle_clean(self):
        topo = Mesh(8)
        plan = ScheduledOutagePlan(
            [
                Outage((3, 3), 10, 60),
                Outage((4, 2), 20, 80, direction=Direction.N),
            ]
        )
        report = run_faulty(
            topo,
            reroute_router(plan, delta=1),
            random_permutation(topo, seed=0),
            plan,
            max_steps=1000,
            oracle_mode="strict",
        )
        assert report.ok
        assert report.to_metrics()["minimality_violations"] == 0
        assert report.to_metrics()["delivered_fraction"] == 1.0
