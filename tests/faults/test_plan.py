"""Unit and property tests for the deterministic fault plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import (
    BernoulliLinkPlan,
    CompositeFaultPlan,
    Outage,
    RenewalOutagePlan,
    ScheduledOutagePlan,
    counter_draw,
    link_draw,
)
from repro.mesh import Mesh, Simulator
from repro.mesh.directions import Direction
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation


class TestCounterDraw:
    def test_in_unit_interval(self):
        for args in [(0,), (0, 1, 2, 3), (7, 0, 0, 0, 10**9)]:
            assert 0.0 <= counter_draw(*args) < 1.0

    def test_pure_function_of_arguments(self):
        a = counter_draw(3, 1, 2, int(Direction.E), 40)
        # Interleave unrelated draws; the repeat must be unaffected.
        counter_draw(3, 9, 9, 9, 9)
        counter_draw(99, 0)
        assert counter_draw(3, 1, 2, int(Direction.E), 40) == a

    def test_distinct_arguments_give_distinct_draws(self):
        draws = {
            counter_draw(seed, x, y, d, t)
            for seed in range(2)
            for x in range(3)
            for y in range(3)
            for d in range(4)
            for t in range(5)
        }
        # 360 argument tuples; a sequential-RNG bug or weak mixing would
        # collapse many of them onto shared values.
        assert len(draws) == 2 * 3 * 3 * 4 * 5

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        x=st.integers(min_value=0, max_value=63),
        y=st.integers(min_value=0, max_value=63),
        d=st.sampled_from(list(Direction)),
        t=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_link_state_consistent_within_a_step(self, seed, x, y, d, t):
        """The same link queried any number of times in one step agrees --
        the exact property the old sequential-RNG stub violated."""
        plan = BernoulliLinkPlan(0.5, seed=seed)
        first = plan.link_up((x, y), d, t)
        for _ in range(3):
            assert plan.link_up((x, y), d, t) == first
        assert link_draw(seed, (x, y), d, t) == link_draw(seed, (x, y), d, t)


class TestBernoulliLinkPlan:
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_availability_validated(self, bad):
        with pytest.raises(ValueError, match="availability"):
            BernoulliLinkPlan(bad)

    def test_full_availability_short_circuits(self):
        plan = BernoulliLinkPlan(1.0, seed=0)
        assert all(
            plan.link_up((x, y), d, t)
            for x in range(4)
            for y in range(4)
            for d in Direction
            for t in range(50)
        )

    def test_empirical_frequency_tracks_availability(self):
        plan = BernoulliLinkPlan(0.8, seed=11)
        samples = [
            plan.link_up((x, y), d, t)
            for x in range(8)
            for y in range(8)
            for d in Direction
            for t in range(40)
        ]
        freq = sum(samples) / len(samples)
        assert 0.77 < freq < 0.83

    def test_seed_changes_the_history(self):
        a = BernoulliLinkPlan(0.5, seed=0)
        b = BernoulliLinkPlan(0.5, seed=1)
        history_a = [a.link_up((2, 3), Direction.N, t) for t in range(64)]
        history_b = [b.link_up((2, 3), Direction.N, t) for t in range(64)]
        assert history_a != history_b

    def test_nodes_always_up(self):
        assert BernoulliLinkPlan(0.5).node_up((0, 0), 0)


class TestScheduledOutagePlan:
    def test_window_boundaries_are_half_open(self):
        plan = ScheduledOutagePlan([Outage((1, 1), 10, 20)])
        assert plan.node_up((1, 1), 9)
        assert not plan.node_up((1, 1), 10)
        assert not plan.node_up((1, 1), 19)
        assert plan.node_up((1, 1), 20)

    def test_link_outage_fails_only_that_outlink(self):
        plan = ScheduledOutagePlan(
            [Outage((2, 2), 5, 8, direction=Direction.E)]
        )
        assert not plan.link_up((2, 2), Direction.E, 6)
        assert plan.link_up((2, 2), Direction.W, 6)
        assert plan.link_up((3, 2), Direction.W, 6)  # reverse link independent
        assert plan.node_up((2, 2), 6)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="start < end"):
            Outage((0, 0), 5, 5)
        with pytest.raises(ValueError, match="start < end"):
            Outage((0, 0), -1, 3)


class TestRenewalOutagePlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="mttf and mttr"):
            RenewalOutagePlan(0, 5)
        with pytest.raises(ValueError, match="scope"):
            RenewalOutagePlan(10, 5, scope="board")

    def test_starts_up_and_alternates(self):
        plan = RenewalOutagePlan(10, 3, seed=2, scope="node")
        history = [plan.node_up((3, 4), t) for t in range(400)]
        assert history[0]  # window 0 is always an up window
        assert not all(history) and any(not h for h in history)
        # The history is a sequence of alternating runs, never two
        # adjacent down-windows merged with an up-window between them
        # missing -- i.e. it has both states and flips more than once.
        flips = sum(1 for a, b in zip(history, history[1:]) if a != b)
        assert flips >= 2

    def test_state_independent_of_query_order(self):
        forward = RenewalOutagePlan(20, 5, seed=7, scope="node")
        backward = RenewalOutagePlan(20, 5, seed=7, scope="node")
        times = list(range(300))
        a = [forward.node_up((1, 2), t) for t in times]
        b = list(reversed([backward.node_up((1, 2), t) for t in reversed(times)]))
        assert a == b

    def test_scope_selects_entity_kind(self):
        node_plan = RenewalOutagePlan(5, 5, seed=1, scope="node")
        link_plan = RenewalOutagePlan(5, 5, seed=1, scope="link")
        assert all(
            node_plan.link_up((x, 0), Direction.E, t)
            for x in range(4)
            for t in range(100)
        )
        assert all(
            link_plan.node_up((x, 0), t) for x in range(4) for t in range(100)
        )


class TestCompositeFaultPlan:
    def test_intersection_semantics(self):
        always_down = ScheduledOutagePlan([Outage((0, 0), 0, 100)])
        composite = CompositeFaultPlan(BernoulliLinkPlan(1.0), always_down)
        assert not composite.node_up((0, 0), 50)
        assert composite.node_up((1, 1), 50)

    def test_needs_at_least_one_plan(self):
        with pytest.raises(ValueError, match="at least one"):
            CompositeFaultPlan()


class TestAttach:
    def test_link_filter_fails_links_into_and_out_of_down_nodes(self):
        sim = Simulator(
            Mesh(4), BoundedDimensionOrderRouter(2), [], validate=False
        )
        plan = ScheduledOutagePlan([Outage((1, 1), 0, 10)])
        plan.attach(sim)
        assert sim.link_filter is not None
        # Out of the down node, into it, and an unrelated link.
        assert not sim.link_filter((1, 1), Direction.E, 5)
        assert not sim.link_filter((1, 0), Direction.N, 5)
        assert sim.link_filter((3, 3), Direction.W, 5)
        # After the window the same queries pass.
        assert sim.link_filter((1, 1), Direction.E, 10)

    def test_bernoulli_attach_run_is_reproducible(self):
        def run_once():
            topo = Mesh(6)
            sim = Simulator(
                topo,
                BoundedDimensionOrderRouter(2),
                random_permutation(topo, seed=5),
                validate=False,
            )
            BernoulliLinkPlan(0.9, seed=5).attach(sim)
            result = sim.run(max_steps=500)
            return result.steps, result.delivery_times

        assert run_once() == run_once()
