"""Tests for the campaign-store analysis layer."""

import json

import pytest

from repro.analysis.campaigns import (
    load_recorded_result,
    load_recorded_results,
    summarize_manifest,
    summarize_rows,
)
from repro.harness import CampaignSpec, TrialSpec, run_campaign


@pytest.fixture
def run(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "analysis-test")
    campaign = CampaignSpec(
        name="analysis-demo",
        trials=[
            TrialSpec(kind="route", n=8, k=2, algorithm="bounded-dor", label="baseline"),
            TrialSpec(kind="lower_bound", n=60, construction="adaptive"),
            TrialSpec(kind="section6", n=27),
            TrialSpec(kind="sort_route", n=6),
        ],
    )
    return run_campaign(campaign, base_dir=tmp_path, progress=False)


class TestSummaries:
    def test_summarize_rows_covers_every_kind(self, run):
        table = summarize_rows([r.result_row() for r in run.results])
        assert "bounded-dor" in table and "baseline" in table
        assert "bound=" in table  # lower_bound headline
        assert "actual=" in table  # section6 headline
        assert "sort_route" in table

    def test_summarize_rows_shows_errors(self, run):
        rows = [r.result_row() for r in run.results]
        rows[0]["status"] = "error"
        rows[0]["metrics"] = None
        rows[0]["error"] = "RuntimeError: boom\ntrace"
        table = summarize_rows(rows)
        assert "RuntimeError: boom" in table

    def test_summarize_manifest(self, run):
        text = summarize_manifest(run.manifest)
        assert "campaign: analysis-demo" in text
        assert "4 total, 4 ok" in text

    def test_summarize_manifest_lists_failures(self, run):
        manifest = json.loads(json.dumps(run.manifest))
        manifest["trials"][1]["status"] = "timeout"
        manifest["trials"][1]["error"] = "trial exceeded 5s"
        text = summarize_manifest(manifest)
        assert "failures:" in text and "#1 [timeout]" in text


class TestRecordedResults:
    def test_round_trip_with_benchmark_fixture_format(self, tmp_path):
        payload = {"name": "E1", "format": 1, "text": "a table", "data": [{"n": 60}]}
        path = tmp_path / "E1.json"
        path.write_text(json.dumps(payload))
        assert load_recorded_result(path) == payload
        assert load_recorded_results(tmp_path) == {"E1": payload}

    def test_rejects_non_result_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"unrelated": True}))
        with pytest.raises(ValueError, match="not a recorded benchmark result"):
            load_recorded_result(path)
