"""Tests for power-law fitting and crossover detection."""

import numpy as np
import pytest

from repro.analysis import crossover_point, fit_power_law


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_exact_linear(self):
        xs = [27, 81, 243]
        ys = [900 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_noisy_data_close(self):
        rng = np.random.default_rng(0)
        xs = [16, 32, 64, 128, 256]
        ys = [2 * x**1.5 * float(rng.uniform(0.9, 1.1)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert 1.3 <= fit.exponent <= 1.7

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [5, 20, 80])
        assert fit.predict(8) == pytest.approx(320, rel=1e-6)

    def test_rejects_short_or_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])


class TestCrossover:
    def test_simple_crossing(self):
        xs = [1, 2, 3, 4]
        a = [1, 2, 3, 4]  # linear
        b = [3, 3, 3, 3]  # constant
        x = crossover_point(xs, a, b)
        assert x == pytest.approx(3.0)

    def test_no_crossing(self):
        xs = [1, 2, 3]
        assert crossover_point(xs, [5, 6, 7], [1, 1, 1]) is None

    def test_interpolated(self):
        xs = [0, 10]
        x = crossover_point(xs, [0, 10], [5, 5])
        assert x == pytest.approx(5.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_point([1, 2], [1], [1, 2])
