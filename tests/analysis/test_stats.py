"""The shared stats helpers both faults and streaming reduce through."""

import pytest

from repro.analysis.stats import (
    degradation_metrics,
    delivered_fraction,
    latency_percentiles,
    percentile,
    violation_counts,
)
from repro.verify.oracles import Violation


class TestPercentile:
    def test_nearest_rank_basics(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 50) == 5
        assert percentile(values, 99) == 10
        assert percentile(values, 100) == 10
        assert percentile(values, 1) == 1

    def test_result_is_an_observed_value(self):
        values = [3, 7, 100]
        for q in (1, 25, 50, 75, 99):
            assert percentile(values, q) in values

    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_faults_reexport_is_the_same_function(self):
        """The extraction moved percentile out of repro.faults.run; the
        legacy import path must keep working and agree."""
        from repro.faults.run import percentile as faults_percentile

        assert faults_percentile is percentile

    def test_presorted_skips_the_sort_but_agrees(self):
        values = [9, 1, 5, 5, 2]
        ordered = sorted(values)
        for q in (1, 25, 50, 75, 99, 100):
            assert percentile(ordered, q, presorted=True) == percentile(values, q)

    def test_presorted_trusts_the_caller(self):
        # presorted=True must not re-sort: on deliberately unsorted input
        # it indexes the sequence as-is (this is the contract, not a bug).
        assert percentile([9, 1, 5], 50, presorted=True) == 1
        assert percentile([9, 1, 5], 50) == 5


#: Nearest-rank goldens: (sample, q) -> pinned output.  These pin the
#: exact rank rule (ceil(q/100 * len), clamped to [1, len], 1-indexed on
#: the ascending sample) so the single-sort refactor of
#: latency_percentiles provably changed nothing.
PERCENTILE_GOLDENS = {
    ((4, 1, 3, 2, 5), 1): 1,
    ((4, 1, 3, 2, 5), 20): 1,
    ((4, 1, 3, 2, 5), 21): 2,
    ((4, 1, 3, 2, 5), 50): 3,
    ((4, 1, 3, 2, 5), 99): 5,
    ((4, 1, 3, 2, 5), 100): 5,
    ((7,), 50): 7,
    ((7,), 99): 7,
    ((10, 10, 20), 50): 10,
    ((10, 10, 20), 67): 20,
    (tuple(range(100, 0, -1)), 50): 50,
    (tuple(range(100, 0, -1)), 95): 95,
    (tuple(range(100, 0, -1)), 99): 99,
}


class TestPercentileGoldens:
    def test_pinned_nearest_rank_outputs(self):
        for (sample, q), expected in PERCENTILE_GOLDENS.items():
            assert percentile(list(sample), q) == expected, (sample, q)

    def test_latency_percentiles_matches_pins(self):
        sample = (4, 1, 3, 2, 5)
        row = latency_percentiles(list(sample), (50, 99))
        assert row == {"latency_p50": 3, "latency_p99": 5}


class TestLatencyPercentiles:
    def test_default_keys(self):
        row = latency_percentiles([1, 2, 3])
        assert set(row) == {"latency_p50", "latency_p99"}

    def test_custom_quantiles(self):
        row = latency_percentiles(range(1, 101), (50, 95, 99))
        assert row == {"latency_p50": 50, "latency_p95": 95, "latency_p99": 99}

    def test_empty_gives_nones(self):
        assert latency_percentiles([]) == {"latency_p50": None, "latency_p99": None}


class TestViolationCounts:
    def test_buckets_by_oracle(self):
        violations = [
            Violation("queue-bound", 1, "a"),
            Violation("queue-bound", 2, "b"),
            Violation("conservation", 2, "c"),
        ]
        assert violation_counts(violations) == {"queue-bound": 2, "conservation": 1}

    def test_empty(self):
        assert violation_counts([]) == {}


class TestDegradation:
    def test_delivered_fraction_empty_instance(self):
        assert delivered_fraction(0, 0) == 1.0
        assert delivered_fraction(3, 4) == 0.75

    def test_row_shape_and_extra_merge(self):
        row = degradation_metrics(
            delivered=3,
            total=4,
            latencies=[2, 5, 9],
            dropped=1,
            extra={"retransmissions": 7},
        )
        assert row == {
            "delivered_fraction": 0.75,
            "latency_p50": 5,
            "latency_p99": 9,
            "dropped_packets": 1,
            "retransmissions": 7,
        }
