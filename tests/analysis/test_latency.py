"""Tests for latency/throughput statistics."""

import math

import pytest

from repro.analysis import latency_stats, peak_throughput, throughput_series
from repro.mesh import Mesh, Packet, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import bernoulli_traffic, random_permutation


def run(n=12, k=2, packets=None, seed=0):
    mesh = Mesh(n)
    if packets is None:
        packets = random_permutation(mesh, seed=seed)
    sim = Simulator(mesh, BoundedDimensionOrderRouter(k), packets)
    result = sim.run(max_steps=200_000)
    assert result.completed
    return mesh, packets, result


class TestLatencyStats:
    def test_single_packet_latency_equals_distance(self):
        mesh, packets, result = run(packets=[Packet(0, (0, 0), (5, 3))])
        dist = {0: mesh.distance((0, 0), (5, 3))}
        stats = latency_stats(result, packets, dist)
        assert stats.count == 1
        assert stats.mean == stats.max == 8
        assert stats.mean_slowdown == pytest.approx(1.0)

    def test_percentiles_ordered(self):
        mesh, packets, result = run()
        stats = latency_stats(result, packets)
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max
        assert stats.count == len(packets)
        assert math.isnan(stats.mean_slowdown)  # no distances given

    def test_slowdown_at_least_one(self):
        mesh, packets, result = run(seed=3)
        dist = {p.pid: mesh.distance(p.source, p.dest) for p in packets}
        stats = latency_stats(result, packets, dist)
        assert stats.mean_slowdown >= 1.0

    def test_injection_times_subtracted(self):
        mesh = Mesh(8)
        p = Packet(0, (0, 0), (3, 0), injection_time=5)
        sim = Simulator(mesh, BoundedDimensionOrderRouter(2), [p])
        result = sim.run(1000)
        stats = latency_stats(result, [p])
        assert stats.mean == 3.0  # latency excludes the waiting-to-inject time

    def test_empty_run(self):
        mesh, packets, result = run(packets=[Packet(0, (1, 1), (1, 1))])
        stats = latency_stats(result, packets)
        # delivered at step 0 counts as latency 0
        assert stats.count == 1 and stats.max == 0


class TestThroughput:
    def test_series_sums_to_delivered(self):
        mesh, packets, result = run()
        series = throughput_series(result, window=1)
        assert sum(v for _, v in series) == pytest.approx(
            sum(1 for t in result.delivery_times.values() if t > 0)
        )

    def test_window_validation(self):
        mesh, packets, result = run()
        with pytest.raises(ValueError):
            throughput_series(result, window=0)

    def test_peak_at_least_average(self):
        mesh, packets, result = run()
        avg = len(packets) / result.steps
        assert peak_throughput(result, window=4) >= avg * 0.5

    def test_dynamic_traffic_end_to_end(self):
        mesh = Mesh(10)
        packets = bernoulli_traffic(mesh, rate=0.02, horizon=50, seed=1)
        sim = Simulator(mesh, BoundedDimensionOrderRouter(2), packets)
        result = sim.run(max_steps=100_000)
        assert result.completed
        stats = latency_stats(result, packets)
        assert stats.count == len(packets)
        assert stats.mean >= 1.0


class TestBernoulliTraffic:
    def test_expected_volume(self):
        mesh = Mesh(10)
        packets = bernoulli_traffic(mesh, rate=0.1, horizon=100, seed=0)
        expected = 0.1 * 100 * 100
        assert 0.6 * expected <= len(packets) <= 1.4 * expected

    def test_injection_times_within_horizon(self):
        mesh = Mesh(6)
        packets = bernoulli_traffic(mesh, rate=0.3, horizon=20, seed=2)
        assert all(0 <= p.injection_time < 20 for p in packets)

    def test_validation(self):
        with pytest.raises(ValueError):
            bernoulli_traffic(Mesh(4), rate=0.0, horizon=10)
        with pytest.raises(ValueError):
            bernoulli_traffic(Mesh(4), rate=0.5, horizon=0)
