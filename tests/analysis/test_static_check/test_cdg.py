"""Golden CDG verdicts, witness cycles, and the runtime agreement check."""

import pytest

from repro.analysis.static_check import (
    CYCLIC,
    DEADLOCK_FREE,
    AgreementFinding,
    CdgVerdict,
    Channel,
    analyze_registry,
    analyze_router,
    build_cdg,
    check_agreement,
    check_agreement_detailed,
    find_witness_cycle,
    tarjan_scc,
)
from repro.analysis.static_check.cdg import (
    SEVERITY_ADVISORY,
    SEVERITY_ERROR,
    make_topology,
)
from repro.mesh.directions import Direction
from repro.mesh.queues import CENTRAL
from repro.mesh.topology import Mesh
from repro.verify.differential import REGISTRY

#: The golden table: verdicts are independent of n and k (blocking is
#: all-or-nothing per queue), so one entry per (router, topology).
GOLDEN = {
    ("dor", "mesh"): CYCLIC,
    ("dor", "torus"): CYCLIC,
    ("bounded-dor", "mesh"): DEADLOCK_FREE,
    ("bounded-dor", "torus"): CYCLIC,
    ("farthest-first", "mesh"): DEADLOCK_FREE,
    ("farthest-first", "torus"): CYCLIC,
    ("greedy-adaptive", "mesh"): CYCLIC,
    ("greedy-adaptive", "torus"): CYCLIC,
    ("alternating-adaptive", "mesh"): CYCLIC,
    ("alternating-adaptive", "torus"): CYCLIC,
    ("randomized-adaptive", "mesh"): CYCLIC,
    ("randomized-adaptive", "torus"): CYCLIC,
    ("bounded-excursion", "mesh"): CYCLIC,
    ("bounded-excursion", "torus"): CYCLIC,
    ("hot-potato", "mesh"): DEADLOCK_FREE,
    ("hot-potato", "torus"): DEADLOCK_FREE,
    # The escape-channel argument is wrap-free and regular-grid only, so
    # the verdict flips to the conservative CYCLIC off the meshes (the
    # ND cells are pinned in test_topology_verdicts.py).
    ("credit-adaptive", "mesh"): DEADLOCK_FREE,
    ("credit-adaptive", "torus"): CYCLIC,
}


class TestGoldenVerdicts:
    @pytest.mark.parametrize("router", sorted(REGISTRY))
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    @pytest.mark.parametrize("n", [4, 8])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_verdict_matches_golden_table(self, router, topology, n, k):
        verdict = analyze_router(router, topology, n, k)
        assert verdict.verdict == GOLDEN[(router, topology)], (
            f"{router}/{topology} n={n} k={k}: got {verdict.verdict}"
        )

    def test_registry_table_is_exhaustive(self):
        assert {r for r, _ in GOLDEN} == set(REGISTRY)

    def test_cyclic_verdicts_carry_a_witness(self):
        for verdict in analyze_registry(ns=(4,), ks=(2,)):
            if verdict.verdict == CYCLIC:
                assert len(verdict.witness) >= 1
            else:
                assert verdict.witness == ()


class TestWitnessCycles:
    def test_dor_mesh_witness_is_the_head_on_two_cycle(self):
        """The classic central-queue exchange deadlock, edge by edge."""
        verdict = analyze_router("dor", "mesh", 4, 2)
        assert verdict.verdict == CYCLIC
        assert len(verdict.witness) == 2
        a, b = verdict.witness
        # Two *adjacent* central queues waiting on each other head-on.
        assert a.key == CENTRAL and b.key == CENTRAL
        ax, ay = a.node
        bx, by = b.node
        assert abs(ax - bx) + abs(ay - by) == 1
        # Verify both edges exist in the actual graph.
        entry = REGISTRY["dor"]
        algorithm = entry.factory(2, 0)
        topology = make_topology("mesh", 4)
        model = algorithm.enumerate_transitions(topology, 2)
        adjacency = build_cdg(topology, model)
        assert b in adjacency[a]
        assert a in adjacency[b]

    def test_bounded_dor_torus_witness_is_a_wraparound_ring(self):
        verdict = analyze_router("bounded-dor", "torus", 4, 1)
        assert verdict.verdict == CYCLIC
        # An E-chain (or W-chain) around one row: n channels, same key.
        assert len(verdict.witness) == 4
        keys = {c.key for c in verdict.witness}
        assert keys <= {Direction.E, Direction.W}
        assert len(keys) == 1
        rows = {c.node[1] for c in verdict.witness}
        assert len(rows) == 1  # all in one row

    def test_witness_edges_all_exist(self):
        for name in ("greedy-adaptive", "bounded-excursion"):
            entry = REGISTRY[name]
            topology = make_topology("mesh", 4)
            model = entry.factory(2, 0).enumerate_transitions(topology, 2)
            adjacency = build_cdg(topology, model)
            witness = find_witness_cycle(adjacency)
            assert witness
            for i, channel in enumerate(witness):
                nxt = witness[(i + 1) % len(witness)]
                assert nxt in adjacency[channel]


class TestGraphAlgorithms:
    def test_tarjan_finds_the_cycle_component(self):
        a, b, c, d = (
            Channel((0, 0), CENTRAL),
            Channel((0, 1), CENTRAL),
            Channel((1, 0), CENTRAL),
            Channel((1, 1), CENTRAL),
        )
        adjacency = {a: (b,), b: (c,), c: (a,), d: (a,)}
        components = tarjan_scc(adjacency)
        sizes = sorted(len(comp) for comp in components)
        assert sizes == [1, 3]
        big = max(components, key=len)
        assert set(big) == {a, b, c}

    def test_acyclic_graph_has_no_witness(self):
        a, b = Channel((0, 0), CENTRAL), Channel((0, 1), CENTRAL)
        assert find_witness_cycle({a: (b,), b: ()}) == ()

    def test_self_loop_is_a_length_one_witness(self):
        a = Channel((0, 0), CENTRAL)
        assert find_witness_cycle({a: (a,)}) == (a,)

    def test_witness_is_minimal(self):
        # A 2-cycle and a 3-cycle: the witness must pick the 2-cycle.
        a, b, c, d, e = (Channel((i, 0), CENTRAL) for i in range(5))
        adjacency = {a: (b,), b: (a, c), c: (d,), d: (e,), e: (c,)}
        witness = find_witness_cycle(adjacency)
        assert len(witness) == 2
        assert set(witness) == {a, b}

    def test_mesh_boundary_drops_edges(self):
        entry = REGISTRY["bounded-dor"]
        topology = Mesh(4)
        model = entry.factory(2, 0).enumerate_transitions(topology, 2)
        adjacency = build_cdg(topology, model)
        # The westernmost East-queue chain ends at the boundary: the E queue
        # of (3, 0) has no E neighbour, so no out-edges.
        assert adjacency[Channel((3, 0), Direction.W)] == ()


class TestAgreement:
    def test_full_registry_agrees(self):
        assert check_agreement() == []

    def test_deadlock_free_with_expected_stall_is_flagged(self):
        # dor is expected to stall on hh/dynamic: a DEADLOCK_FREE verdict
        # for it on the mesh must be reported as a layer disagreement.
        fake = CdgVerdict("dor", "mesh", 4, 2, DEADLOCK_FREE)
        findings = check_agreement([fake])
        assert len(findings) == 1
        assert "dor/mesh" in findings[0]

    def test_unstable_verdicts_are_flagged(self):
        findings = check_agreement(
            [
                CdgVerdict("hot-potato", "mesh", 4, 1, DEADLOCK_FREE),
                CdgVerdict("hot-potato", "mesh", 4, 2, CYCLIC),
            ]
        )
        assert len(findings) == 1
        assert "unstable" in findings[0]

    def test_cyclic_with_complete_expectations_is_not_a_finding(self):
        # Cycle is necessary, not sufficient: bounded-dor on the torus is
        # CYCLIC yet expected to complete -- that must pass.
        fake = CdgVerdict("bounded-dor", "torus", 4, 2, CYCLIC)
        assert check_agreement([fake]) == []


class TestDetailedAgreement:
    def test_cyclic_but_completing_surfaces_as_advisory(self):
        # The other direction of the cross-check: a cycle the runtime has
        # never closed is now *reported*, not silently ignored.
        fake = CdgVerdict("bounded-dor", "torus", 4, 2, CYCLIC)
        findings = check_agreement_detailed([fake])
        assert [f.severity for f in findings] == [SEVERITY_ADVISORY]
        assert "bounded-dor/torus" in findings[0].message
        assert "necessary, not sufficient" in findings[0].message

    def test_error_wrapper_drops_advisories(self):
        fake = CdgVerdict("bounded-dor", "torus", 4, 2, CYCLIC)
        assert check_agreement([fake]) == []

    def test_disagreements_surface_as_errors(self):
        fake = CdgVerdict("dor", "mesh", 4, 2, DEADLOCK_FREE)
        findings = check_agreement_detailed([fake])
        assert [f.severity for f in findings] == [SEVERITY_ERROR]
        assert isinstance(findings[0], AgreementFinding)

    def test_registry_yields_advisories_but_no_errors(self):
        findings = check_agreement_detailed()
        severities = {f.severity for f in findings}
        assert severities == {SEVERITY_ADVISORY}
        # Every CYCLIC-but-completing (router, topology) cell is covered;
        # dor/mesh is absent because its stalls *are* expected there.
        cells = {f.message.split(":")[0] for f in findings}
        assert "bounded-dor/torus" in cells
        assert "dor/mesh" not in cells


class TestErrors:
    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            analyze_router("psychic", "mesh", 4, 2)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            analyze_router("dor", "hypercube", 4, 2)

    def test_unknown_registry_subset_rejected(self):
        with pytest.raises(ValueError, match="unknown routers"):
            analyze_registry(routers=["psychic"])

    def test_verdict_serializes(self):
        verdict = analyze_router("dor", "mesh", 4, 2)
        data = verdict.to_dict()
        assert data["verdict"] == CYCLIC
        assert data["witness"] and data["witness"][0]["key"] == "central"
