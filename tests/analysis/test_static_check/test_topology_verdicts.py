"""ISSUE 9 acceptance gates: static verdicts per topology + literal agreement.

Two groups:

- the credit-adaptive router's deadlock-freedom and queue bound must be
  provable *statically* on the 2D and 3D mesh (DEADLOCK_FREE from the CDG
  analyzer, BOUNDED(k) from the certifier), with both agreement gates
  clean against the runtime layers; the wrap/irregular fallbacks must be
  the documented conservative verdicts.
- the topology vocabulary is spelled as literals in three layers
  (``repro.mesh.ndtopology``, ``repro.harness.specs``,
  ``repro.verify.differential``) that import in different directions, so
  these tests pin them to each other.
"""

import pytest

from repro.analysis.static_check import (
    BOUNDED,
    CYCLIC,
    DEADLOCK_FREE,
    UNBOUNDED,
    analyze_router,
    certify_router,
    check_agreement,
    check_bounds_agreement,
    render_markdown,
    verdict_matrix,
)
from repro.analysis.static_check.cdg import TOPOLOGIES, analyze_registry
from repro.analysis.static_check.bounds import certify_registry
from repro.harness.specs import (
    ND_ALGORITHMS,
    ND_TOPOLOGIES,
    ROUTE_ALGORITHMS,
    TOPOLOGY_CHOICES,
    VERIFY_FAMILIES,
)
from repro.mesh.ndtopology import TOPOLOGY_BUILDERS, TOPOLOGY_NAMES
from repro.verify.differential import (
    FAMILIES,
    FAMILY_TOPOLOGY,
    REGISTRY,
    SMOKE_FAMILIES,
)


class TestCreditAdaptiveVerdicts:
    @pytest.mark.parametrize("topology", ["mesh", "mesh3d"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_deadlock_free_and_bounded_on_meshes(self, topology, k):
        cdg = analyze_router("credit-adaptive", topology, 4, k)
        assert cdg.verdict == DEADLOCK_FREE
        bounds = certify_router("credit-adaptive", topology, 4, k)
        assert bounds.verdict == BOUNDED
        assert bounds.bound == k
        assert bounds.describe() == f"BOUNDED(b={k})"

    @pytest.mark.parametrize("topology", ["torus", "torus3d", "pillar"])
    def test_conservative_fallback_on_wrap_and_irregular(self, topology):
        """Wrap cycles and node-dependent link sets are out of scope for
        the escape-channel argument: the static layers must stay sound by
        reporting the conservative verdicts, never a false certificate."""
        assert analyze_router("credit-adaptive", topology, 4, 2).verdict == CYCLIC
        assert certify_router("credit-adaptive", topology, 4, 2).verdict == UNBOUNDED

    def test_agreement_gates_clean_across_all_topologies(self):
        cdg_verdicts = analyze_registry(ns=(4,), ks=(2,))
        assert check_agreement(cdg_verdicts, n=4, ks=(2,)) == []
        bounds_verdicts = certify_registry(ns=(4,), ks=(2,))
        assert check_bounds_agreement(bounds_verdicts, n=4, ks=(2,)) == []


class TestVerdictMatrix:
    def test_matrix_covers_registry_and_marks_inapplicable(self):
        matrix = verdict_matrix(n=4, k=2)
        assert set(matrix) == set(REGISTRY)
        # 2D-only routers have no ND cells; credit-adaptive has all five.
        assert set(matrix["bounded-dor"]) == {"mesh", "torus"}
        assert set(matrix["credit-adaptive"]) == set(TOPOLOGY_NAMES)
        assert matrix["credit-adaptive"]["mesh3d"] == (
            DEADLOCK_FREE,
            "BOUNDED(b=2)",
        )

    def test_render_markdown_shape(self):
        matrix = verdict_matrix(n=4, k=2, routers=("bounded-dor", "credit-adaptive"))
        table = render_markdown(matrix)
        lines = table.splitlines()
        assert lines[0] == "| router | " + " | ".join(TOPOLOGIES) + " |"
        assert len(lines) == 2 + 2  # header, rule, one row per router
        assert "—" in lines[2]  # bounded-dor is 2D-only
        assert "DEADLOCK_FREE / BOUNDED(b=2)" in lines[3]

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError):
            verdict_matrix(routers=("no-such-router",))


class TestLiteralAgreement:
    """The same vocabulary is spelled in layers that cannot import each
    other without cycles; pin the literals to the canonical registry."""

    def test_spec_topology_choices_match_registry(self):
        assert TOPOLOGY_CHOICES == TOPOLOGY_NAMES
        assert set(TOPOLOGY_NAMES) == set(TOPOLOGY_BUILDERS)
        assert set(ND_TOPOLOGIES) == set(TOPOLOGY_NAMES) - {"mesh", "torus"}

    def test_analysis_topologies_match_registry(self):
        assert TOPOLOGIES == TOPOLOGY_NAMES

    def test_nd_algorithms_are_the_all_topology_routers(self):
        all_topology = {
            name
            for name, entry in REGISTRY.items()
            if set(entry.topologies) == set(TOPOLOGY_NAMES)
        }
        assert set(ND_ALGORITHMS) == all_topology
        assert set(ND_ALGORITHMS) <= set(ROUTE_ALGORITHMS)

    def test_family_topology_map_matches_verify_families(self):
        assert set(FAMILY_TOPOLOGY) == set(FAMILIES)
        assert set(VERIFY_FAMILIES) == set(FAMILIES)
        assert set(SMOKE_FAMILIES) <= set(FAMILIES)
        assert set(FAMILY_TOPOLOGY.values()) <= set(TOPOLOGY_NAMES)

    def test_every_registry_entry_names_known_topologies(self):
        for name, entry in REGISTRY.items():
            assert set(entry.topologies) <= set(TOPOLOGY_NAMES), name
