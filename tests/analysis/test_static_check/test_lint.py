"""Unit tests for the SC001-SC009 AST lint rules, plus the repo self-scan."""

import pathlib
import textwrap

import pytest

from repro.analysis.static_check import diff_against_baseline, run_lint
from repro.analysis.static_check.lint import RULES, lint_source, rules_for_path

REPO_ROOT = pathlib.Path(__file__).parents[3]


# The determinism rules; snippets below carry no module docstring, so the
# SC005 coverage rule is exercised separately in TestSC005Docstrings.
DETERMINISM_RULES = ("SC001", "SC002", "SC003", "SC004")


def rules_of(source, rules=DETERMINISM_RULES, **kwargs):
    return [v.rule for v in lint_source(textwrap.dedent(source), rules=rules, **kwargs)]


class TestSC001Randomness:
    def test_global_random_call_flagged(self):
        assert rules_of(
            """
            import random
            x = random.randint(0, 3)
            """
        ) == ["SC001"]

    def test_aliased_import_tracked(self):
        assert rules_of(
            """
            import random as rnd
            rnd.shuffle(items)
            """
        ) == ["SC001"]

    def test_from_import_tracked(self):
        assert rules_of(
            """
            from random import shuffle
            shuffle(items)
            """
        ) == ["SC001"]

    def test_seeded_random_instance_ok(self):
        assert rules_of(
            """
            import random
            rng = random.Random(42)
            rng.shuffle(items)
            """
        ) == []

    def test_unseeded_random_instance_flagged(self):
        assert rules_of(
            """
            import random
            rng = random.Random()
            """
        ) == ["SC001"]

    def test_numpy_global_state_flagged(self):
        assert rules_of(
            """
            import numpy as np
            x = np.random.permutation(10)
            """
        ) == ["SC001"]

    def test_numpy_default_rng_needs_seed(self):
        assert rules_of(
            """
            from numpy.random import default_rng
            a = default_rng()
            b = default_rng(7)
            """
        ) == ["SC001"]

    def test_seeding_the_module_is_not_flagged(self):
        # random.seed(...) is how tests pin the global state; allowed.
        assert rules_of(
            """
            import random
            random.seed(0)
            """
        ) == []


class TestSC002WallClock:
    def test_time_time_flagged(self):
        assert rules_of(
            """
            import time
            t = time.time()
            """
        ) == ["SC002"]

    def test_perf_counter_from_import_flagged(self):
        assert rules_of(
            """
            from time import perf_counter
            t = perf_counter()
            """
        ) == ["SC002"]

    def test_datetime_now_flagged(self):
        assert rules_of(
            """
            from datetime import datetime
            t = datetime.now()
            """
        ) == ["SC002"]

    def test_datetime_module_path_flagged(self):
        assert rules_of(
            """
            import datetime
            t = datetime.datetime.utcnow()
            """
        ) == ["SC002"]

    def test_time_sleep_is_fine(self):
        assert rules_of(
            """
            import time
            time.sleep(1)
            """
        ) == []


class TestSC003BareAssert:
    def test_assert_flagged(self):
        assert rules_of("assert x > 0\n") == ["SC003"]

    def test_raise_is_fine(self):
        assert rules_of(
            """
            if x <= 0:
                raise ValueError("x must be positive")
            """
        ) == []


class TestSC004SetIteration:
    def test_for_over_set_literal_flagged(self):
        assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["SC004"]

    def test_for_over_set_call_flagged(self):
        assert rules_of("for x in set(items):\n    pass\n") == ["SC004"]

    def test_for_over_set_variable_flagged(self):
        assert rules_of(
            """
            s = set(items)
            for x in s:
                pass
            """
        ) == ["SC004"]

    def test_annotated_empty_set_tracked(self):
        assert rules_of(
            """
            def f():
                seen: set[int] = set()
                for x in seen:
                    pass
            """
        ) == ["SC004"]

    def test_sorted_wrapper_ok(self):
        assert rules_of(
            """
            s = set(items)
            for x in sorted(s):
                pass
            """
        ) == []

    def test_order_insensitive_reducers_ok(self):
        assert rules_of(
            """
            s = {1, 2, 3}
            n = len(s)
            m = max(s)
            t = sum(s)
            ok = any(x > 1 for x in items)
            """
        ) == []

    def test_list_materialisation_flagged(self):
        assert rules_of("xs = list({3, 1, 2})\n") == ["SC004"]

    def test_comprehension_over_set_flagged(self):
        assert rules_of(
            """
            s = set(items)
            xs = [x + 1 for x in s]
            """
        ) == ["SC004"]

    def test_set_algebra_keeps_setness(self):
        assert rules_of(
            """
            a = set(xs)
            b = a | set(ys)
            for v in b:
                pass
            """
        ) == ["SC004"]

    def test_union_method_keeps_setness(self):
        assert rules_of(
            """
            u = set().union(*groups)
            for v in u:
                pass
            """
        ) == ["SC004"]

    def test_rebinding_to_a_list_clears_setness(self):
        assert rules_of(
            """
            s = set(items)
            s = sorted(s)
            for x in s:
                pass
            """
        ) == []

    def test_membership_test_is_fine(self):
        assert rules_of(
            """
            s = set(items)
            if x in s:
                pass
            """
        ) == []

    def test_function_scopes_are_separate(self):
        assert rules_of(
            """
            def f():
                s = set(items)

            def g():
                s = [1, 2]
                for x in s:
                    pass
            """
        ) == []


class TestSC005Docstrings:
    def test_missing_module_docstring_flagged(self):
        assert rules_of("x = 1\n", rules=("SC005",)) == ["SC005"]

    def test_missing_class_docstring_flagged(self):
        assert rules_of(
            '''
            """Module doc."""

            class Foo:
                pass
            ''',
            rules=("SC005",),
        ) == ["SC005"]

    def test_documented_module_and_class_ok(self):
        assert rules_of(
            '''
            """Module doc."""

            class Foo:
                """Class doc."""
            ''',
            rules=("SC005",),
        ) == []

    def test_nested_class_needs_docstring_too(self):
        assert rules_of(
            '''
            """Module doc."""

            class Outer:
                """Outer doc."""

                class Inner:
                    pass
            ''',
            rules=("SC005",),
        ) == ["SC005"]

    def test_functions_are_not_checked(self):
        assert rules_of(
            '''
            """Module doc."""

            def f():
                pass
            ''',
            rules=("SC005",),
        ) == []

    def test_class_noqa_waives(self):
        assert rules_of(
            '''
            """Module doc."""

            class Foo:  # noqa: SC005
                pass
            ''',
            rules=("SC005",),
        ) == []


class TestSC006AliasMutation:
    def test_subscript_store_into_parameter_flagged(self):
        assert rules_of(
            """
            def kernel(occ):
                occ[0] = 1
            """,
            rules=("SC006",),
        ) == ["SC006"]

    def test_basic_slice_view_keeps_the_alias(self):
        assert rules_of(
            """
            def kernel(occ):
                view = occ[1:]
                view.fill(0)
            """,
            rules=("SC006",),
        ) == ["SC006"]

    def test_fancy_indexing_breaks_the_alias(self):
        # Advanced indexing returns a copy: mutating it is local.
        assert rules_of(
            """
            def kernel(occ, idx):
                picked = occ[idx]
                picked.fill(0)
            """,
            rules=("SC006",),
        ) == []

    def test_augmented_assign_on_parameter_flagged(self):
        assert rules_of(
            """
            def kernel(occ, idx):
                occ[idx] += 1
            """,
            rules=("SC006",),
        ) == ["SC006"]

    def test_ufunc_at_on_parameter_flagged(self):
        assert rules_of(
            """
            import numpy as np

            def kernel(occ, idx):
                np.add.at(occ, idx, 1)
            """,
            rules=("SC006",),
        ) == ["SC006"]

    def test_explicit_copy_clears_the_alias(self):
        assert rules_of(
            """
            def kernel(occ):
                occ = occ.copy()
                occ[0] = 1
            """,
            rules=("SC006",),
        ) == []

    def test_local_arrays_are_free_to_mutate(self):
        assert rules_of(
            """
            def kernel(n):
                scratch = make(n)
                scratch[0] = 1
                scratch.sort()
            """,
            rules=("SC006",),
        ) == []

    def test_self_attributes_are_not_parameters(self):
        assert rules_of(
            """
            class Engine:
                def step(self, idx):
                    self.occ[idx] = 0
            """,
            rules=("SC006",),
        ) == []


class TestSC007UnstableSorts:
    def test_np_argsort_without_kind_flagged(self):
        assert rules_of(
            """
            import numpy as np
            order = np.argsort(keys)
            """,
            rules=("SC007",),
        ) == ["SC007"]

    def test_stable_kind_ok(self):
        assert rules_of(
            """
            import numpy as np
            a = np.argsort(keys, kind="stable")
            b = np.sort(keys, kind="mergesort")
            """,
            rules=("SC007",),
        ) == []

    def test_method_argsort_without_kind_flagged(self):
        assert rules_of(
            "order = keys.argsort()\n", rules=("SC007",)
        ) == ["SC007"]

    def test_unique_with_return_index_flagged(self):
        assert rules_of(
            """
            import numpy as np
            values, first = np.unique(keys, return_index=True)
            """,
            rules=("SC007",),
        ) == ["SC007"]

    def test_value_only_unique_and_lexsort_exempt(self):
        assert rules_of(
            """
            import numpy as np
            values = np.unique(keys)
            order = np.lexsort((minor, major))
            """,
            rules=("SC007",),
        ) == []


class TestSC008ImplicitDtype:
    def test_constructors_without_dtype_flagged(self):
        assert rules_of(
            """
            import numpy as np
            a = np.zeros(4)
            b = np.arange(10)
            """,
            rules=("SC008",),
        ) == ["SC008", "SC008"]

    def test_explicit_dtype_ok(self):
        assert rules_of(
            """
            import numpy as np
            a = np.zeros(4, dtype=np.int64)
            b = np.array([1, 2], dtype=np.int8)
            """,
            rules=("SC008",),
        ) == []

    def test_non_numpy_names_are_ignored(self):
        assert rules_of(
            """
            a = zeros(4)
            b = helper.array([1, 2])
            """,
            rules=("SC008",),
        ) == []


class TestSC009EngineFallback:
    def test_engine_hint_without_readback_flagged(self):
        assert rules_of(
            """
            def run(topology, algorithm, packets):
                sim = Simulator(topology, algorithm, packets, engine="array")
                return sim.run()
            """,
            rules=("SC009",),
        ) == ["SC009"]

    def test_engine_name_readback_ok(self):
        assert rules_of(
            """
            def run(topology, algorithm, packets):
                sim = Simulator(topology, algorithm, packets, engine="array")
                used = sim.engine_name
                return used, sim.run()
            """,
            rules=("SC009",),
        ) == []

    def test_literal_reference_engine_is_exempt(self):
        # Explicitly requesting the reference engine cannot fall back.
        assert rules_of(
            """
            def run(topology, algorithm, packets):
                sim = Simulator(topology, algorithm, packets, engine="reference")
                return sim.run()
            """,
            rules=("SC009",),
        ) == []

    def test_nested_functions_are_checked_separately(self):
        assert rules_of(
            """
            def outer(spec):
                def inner():
                    sim = Simulator(engine="array")
                    return sim.engine_name

                bad = Simulator(engine=spec.engine)
                return inner(), bad.run()
            """,
            rules=("SC009",),
        ) == ["SC009"]


class TestWaivers:
    def test_noqa_with_rule_waives(self):
        assert rules_of("for x in {1, 2}:  # noqa: SC004\n    pass\n") == []

    def test_bare_noqa_waives_everything(self):
        assert rules_of("assert x  # noqa\n") == []

    def test_noqa_for_other_rule_does_not_waive(self):
        assert rules_of("assert x  # noqa: SC004\n") == ["SC003"]


class TestScoping:
    def test_scheduling_packages_get_determinism_rules(self):
        # SC009 rides everywhere: dispatch sites live outside the kernels.
        assert rules_for_path("src/repro/mesh/simulator.py") == (
            *DETERMINISM_RULES, "SC009"
        )
        assert rules_for_path("src/repro/routing/dor.py") == (
            *DETERMINISM_RULES, "SC009"
        )

    def test_infrastructure_packages_get_docstring_rule(self):
        assert rules_for_path("src/repro/perf/bench.py") == (
            "SC003", "SC005", "SC009"
        )
        assert rules_for_path("src/repro/harness/specs.py") == (
            "SC003", "SC005", "SC009"
        )

    def test_other_packages_get_assert_and_engine_rules_only(self):
        assert rules_for_path("src/repro/core/bounds.py") == ("SC003", "SC009")
        assert rules_for_path("src/repro/verify/oracles.py") == (
            "SC003", "SC009"
        )

    def test_transition_models_get_docstring_rule(self):
        assert rules_for_path("src/repro/mesh/transitions.py") == (
            *DETERMINISM_RULES, "SC005", "SC009"
        )

    def test_array_kernels_get_every_hazard_rule(self):
        # The numpy kernels get the full stack: package determinism rules,
        # the SC005 prose-contract rule, and the array hazards SC006-SC008.
        assert rules_for_path("src/repro/mesh/array_engine.py") == (
            "SC001", "SC002", "SC003", "SC004", "SC005",
            "SC006", "SC007", "SC008", "SC009",
        )
        assert rules_for_path("src/repro/mesh/array_state.py") == (
            "SC001", "SC002", "SC003", "SC004", "SC005",
            "SC006", "SC007", "SC008", "SC009",
        )
        assert rules_for_path("src/repro/verify/engine_equivalence.py") == (
            "SC003", "SC005", "SC009"
        )

    def test_every_rule_is_scoped_somewhere(self):
        scoped = (
            set(rules_for_path("src/repro/mesh/array_engine.py"))
            | set(rules_for_path("src/repro/perf/x.py"))
        )
        assert scoped == set(RULES)

    def test_rule_subset_respected(self):
        found = rules_of(
            """
            import random
            random.random()
            assert x
            """,
            rules=("SC003",),
        )
        assert found == ["SC003"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            lint_source("x = 1\n", rules=("SC999",))

    def test_syntax_error_reported_with_path(self):
        with pytest.raises(ValueError, match="broken.py"):
            lint_source("def (\n", path="broken.py")


class TestRepoSelfScan:
    def test_repo_is_clean_against_baseline(self):
        """The acceptance gate: the tree has no new violations."""
        new, _fixed = diff_against_baseline(run_lint(REPO_ROOT))
        assert new == [], "\n".join(str(v) for v in new)

    def test_violation_fields_are_stable(self):
        found = lint_source(
            "import random\nx = random.random()\n",
            path="src/repro/mesh/x.py",
            rules=DETERMINISM_RULES,
        )
        (violation,) = found
        assert violation.fingerprint == (
            "SC001",
            "src/repro/mesh/x.py",
            "x = random.random()",
        )
        assert "x.py:2:" in str(violation)
        assert violation.to_dict()["rule"] == "SC001"
