"""Unit tests for the symbolic transition models (repro.mesh.transitions)."""

import pytest

from repro.mesh.directions import DIRECTIONS, Direction
from repro.mesh.queues import CENTRAL
from repro.mesh.topology import Mesh, Torus
from repro.mesh.transitions import (
    TransitionModel,
    model_from_contract,
)
from repro.routing import (
    BoundedDimensionOrderRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
)

E, W, N, S = Direction.E, Direction.W, Direction.N, Direction.S


class TestTurnSets:
    def test_dimension_ordered_horizontal_continues_or_turns_vertical(self):
        m = model_from_contract(
            queue_kind="incoming", minimal=True, dimension_ordered=True
        )
        assert set(m.outs_for(E)) == {N, E, S}
        assert set(m.outs_for(W)) == {N, S, W}

    def test_dimension_ordered_vertical_goes_straight_only(self):
        m = model_from_contract(
            queue_kind="incoming", minimal=True, dimension_ordered=True
        )
        assert m.outs_for(N) == (N,)
        assert m.outs_for(S) == (S,)

    def test_injection_may_go_anywhere(self):
        for kwargs in (
            dict(minimal=True, dimension_ordered=True),
            dict(minimal=True, dimension_ordered=False),
            dict(minimal=False, dimension_ordered=False),
        ):
            m = model_from_contract(queue_kind="incoming", **kwargs)
            assert set(m.outs_for(None)) == set(DIRECTIONS)

    def test_minimal_adaptive_forbids_exactly_reversal(self):
        m = model_from_contract(
            queue_kind="incoming", minimal=True, dimension_ordered=False
        )
        for d in DIRECTIONS:
            outs = set(m.outs_for(d))
            assert d.opposite not in outs
            assert outs == set(DIRECTIONS) - {d.opposite}

    def test_unrestricted_allows_reversal(self):
        m = model_from_contract(
            queue_kind="incoming", minimal=False, dimension_ordered=False
        )
        for d in DIRECTIONS:
            assert set(m.outs_for(d)) == set(DIRECTIONS)

    def test_outs_are_deterministically_ordered(self):
        m = model_from_contract(
            queue_kind="incoming", minimal=False, dimension_ordered=False
        )
        assert m.outs_for(E) == tuple(d for d in DIRECTIONS)


class TestDefaultBlocking:
    def test_central_blocks_on_the_central_key(self):
        m = model_from_contract(
            queue_kind="central", minimal=True, dimension_ordered=False
        )
        assert m.blocking_keys == frozenset({CENTRAL})
        assert not m.never_blocks

    def test_incoming_blocks_on_all_four_by_default(self):
        m = model_from_contract(
            queue_kind="incoming", minimal=True, dimension_ordered=False
        )
        assert m.blocking_keys == frozenset(DIRECTIONS)

    def test_empty_blocking_means_never_blocks(self):
        m = model_from_contract(
            queue_kind="central",
            minimal=False,
            dimension_ordered=False,
            blocking_keys=frozenset(),
        )
        assert m.never_blocks


class TestRouterOverrides:
    @pytest.mark.parametrize("topology", [Mesh(4), Torus(4)])
    def test_bounded_dor_blocks_only_east_west(self, topology):
        model = BoundedDimensionOrderRouter(2).enumerate_transitions(topology, 2)
        assert model.blocking_keys == frozenset({E, W})
        assert model.queue_kind == "incoming"

    def test_farthest_first_incoming_matches_theorem15(self):
        model = FarthestFirstRouter(2).enumerate_transitions(Mesh(4), 2)
        assert model.blocking_keys == frozenset({E, W})

    def test_farthest_first_central_blocks_everything_it_has(self):
        model = FarthestFirstRouter(2, queue_kind="central").enumerate_transitions(
            Mesh(4), 2
        )
        assert model.blocking_keys == frozenset({CENTRAL})

    def test_hot_potato_never_blocks(self):
        model = HotPotatoRouter().enumerate_transitions(Mesh(4), 1)
        assert model.never_blocks

    def test_base_class_derives_from_contract(self):
        # Greedy adaptive has no override: contract-derived model, minimal
        # turns, every incoming queue blockable.
        router = GreedyAdaptiveRouter(2, "incoming")
        model = router.enumerate_transitions(Mesh(4), 2)
        assert isinstance(model, TransitionModel)
        assert model.blocking_keys == frozenset(DIRECTIONS)
        assert S not in model.outs_for(N)

    def test_central_dor_blocks_its_single_queue(self):
        model = DimensionOrderRouter(4).enumerate_transitions(Mesh(4), 4)
        assert model.queue_kind == "central"
        assert model.blocking_keys == frozenset({CENTRAL})


class TestDrainGuarantees:
    @pytest.mark.parametrize("topology", [Mesh(4), Torus(4)])
    def test_bounded_dor_drains_north_south(self, topology):
        # Theorem 15: a nonempty N/S queue ejects a packet every step, so
        # those queues never refuse yet stay bounded.
        model = BoundedDimensionOrderRouter(2).enumerate_transitions(topology, 2)
        assert model.drain_keys == frozenset({N, S})
        assert model.drain_all_keys == frozenset()
        assert model.drain_for(N) == "one"
        assert model.drain_for(E) is None

    def test_farthest_first_incoming_drains_north_south(self):
        model = FarthestFirstRouter(2).enumerate_transitions(Mesh(4), 2)
        assert model.drain_keys == frozenset({N, S})
        assert model.blocking_keys == frozenset({E, W})

    def test_farthest_first_central_claims_no_drain(self):
        model = FarthestFirstRouter(2, queue_kind="central").enumerate_transitions(
            Mesh(4), 2
        )
        assert model.drain_keys == frozenset()
        assert model.drain_all_keys == frozenset()

    @pytest.mark.parametrize("topology", [Mesh(4), Torus(4)])
    def test_hot_potato_drains_everything_every_step(self, topology):
        model = HotPotatoRouter().enumerate_transitions(topology, 1)
        assert model.never_blocks
        assert model.drain_all_keys == frozenset({CENTRAL})
        assert model.drain_for(CENTRAL) == "all"

    def test_adaptive_families_expose_blockable_models_without_drains(self):
        # Satellite coverage: the contract-derived adaptive models are
        # non-None, all-blockable, minimal-turn, and claim no drains.
        for queue_kind in ("incoming", "central"):
            model = GreedyAdaptiveRouter(2, queue_kind).enumerate_transitions(
                Mesh(4), 2
            )
            assert isinstance(model, TransitionModel)
            assert model.drain_keys == frozenset()
            assert model.drain_all_keys == frozenset()
            assert not model.never_blocks
            assert S not in model.outs_for(N)

    def test_drain_and_blocking_are_mutually_exclusive(self):
        # A queue cannot both refuse offers and guarantee a drain: the
        # default incoming contract blocks on all four directions.
        with pytest.raises(ValueError, match="refuse offers and guarantee"):
            model_from_contract(
                queue_kind="incoming",
                minimal=True,
                dimension_ordered=True,
                drain_keys=frozenset({E}),
            )

    def test_drain_one_and_drain_all_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="both DRAIN_ONE and DRAIN_ALL"):
            model_from_contract(
                queue_kind="incoming",
                minimal=True,
                dimension_ordered=True,
                blocking_keys=frozenset({E, W}),
                drain_keys=frozenset({N}),
                drain_all_keys=frozenset({N}),
            )
