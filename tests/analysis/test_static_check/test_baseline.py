"""Baseline round-trip and diff semantics."""

import json

import pytest

from repro.analysis.static_check import (
    baseline_path,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.static_check.lint import LintViolation


def violation(rule="SC004", path="src/repro/mesh/x.py", line=10, code="for x in s:"):
    return LintViolation(path, line, 0, rule, "msg", code)


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline([violation(), violation(line=20)], target)
        counts = load_baseline(target)
        assert counts[("SC004", "src/repro/mesh/x.py", "for x in s:")] == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "ghost.json") == {}

    def test_version_mismatch_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(target)

    def test_checked_in_baseline_parses(self):
        # The real baseline must stay loadable (it is empty by design:
        # the starting sweep's findings were fixed, not baselined).
        assert load_baseline(baseline_path()) == {}

    def test_saved_entries_use_the_snippet_key(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline([violation(code="for  x   in s:")], target)
        payload = json.loads(target.read_text())
        assert payload["version"] == 2
        (entry,) = payload["entries"]
        assert entry["snippet"] == "for x in s:"  # normalized on save
        assert "code" not in entry

    def test_version_one_files_migrate_transparently(self, tmp_path):
        # v1 stored the verbatim line under "code"; loading must rekey it
        # to the normalized snippet so old checkouts keep suppressing.
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "SC004",
                            "path": "src/repro/mesh/x.py",
                            "code": "for  x   in s:",
                            "count": 1,
                        }
                    ],
                }
            )
        )
        counts = load_baseline(target)
        assert counts[("SC004", "src/repro/mesh/x.py", "for x in s:")] == 1
        new, fixed = diff_against_baseline([violation()], target)
        assert new == [] and fixed == []

    def test_reformatted_line_keeps_its_fingerprint(self, tmp_path):
        # The whole point of the rekeying: pure whitespace churn on the
        # offending line must not strand the baseline entry.
        target = tmp_path / "baseline.json"
        save_baseline([violation(code="for x in s:")], target)
        new, fixed = diff_against_baseline(
            [violation(line=42, code="for   x in    s:")], target
        )
        assert new == [] and fixed == []


class TestDiff:
    def test_new_violation_reported(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline([], target)
        new, fixed = diff_against_baseline([violation()], target)
        assert len(new) == 1 and fixed == []

    def test_baselined_violation_suppressed(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline([violation()], target)
        new, fixed = diff_against_baseline([violation(line=99)], target)
        assert new == [] and fixed == []  # same fingerprint, moved line

    def test_duplicating_a_baselined_line_fails(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline([violation()], target)
        new, _ = diff_against_baseline(
            [violation(line=10), violation(line=30)], target
        )
        assert len(new) == 1  # the excess occurrence is new

    def test_fixed_fingerprints_reported(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline([violation(), violation(rule="SC003", code="assert x")], target)
        new, fixed = diff_against_baseline([violation()], target)
        assert new == []
        assert fixed == [("SC003", "src/repro/mesh/x.py", "assert x")]
