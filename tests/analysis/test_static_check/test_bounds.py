"""Golden queue-bound verdicts, witness chains, and the oracle cross-check."""

import json

import pytest

from repro.analysis.static_check import (
    BOUNDED,
    UNBOUNDED,
    BoundsVerdict,
    certify_algorithm,
    certify_registry,
    certify_router,
    check_bounds_agreement,
    compute_channel_bounds,
    validate_drain_claims,
)
from repro.analysis.static_check.bounds import (
    CLOSED_LOOP,
    OPEN_LOOP,
    REASON_OVERFLOW,
    REASON_WEDGE,
    certify_model,
)
from repro.analysis.static_check.cdg import UNKNOWN, make_topology
from repro.mesh.directions import Direction
from repro.mesh.queues import CENTRAL, QueueSpec
from repro.mesh.topology import Mesh
from repro.mesh.transitions import model_from_contract
from repro.verify.differential import REGISTRY

E, W, N, S = Direction.E, Direction.W, Direction.N, Direction.S

#: The golden table, independent of n; ``"k"`` means the bound tracks the
#: cell's k, a number is an absolute bound (hot-potato's central capacity).
GOLDEN = {
    ("dor", "mesh"): (UNBOUNDED, REASON_WEDGE, None),
    ("dor", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("bounded-dor", "mesh"): (BOUNDED, "", "k"),
    ("bounded-dor", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("farthest-first", "mesh"): (BOUNDED, "", "k"),
    ("farthest-first", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("greedy-adaptive", "mesh"): (UNBOUNDED, REASON_WEDGE, None),
    ("greedy-adaptive", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("alternating-adaptive", "mesh"): (UNBOUNDED, REASON_WEDGE, None),
    ("alternating-adaptive", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("randomized-adaptive", "mesh"): (UNBOUNDED, REASON_WEDGE, None),
    ("randomized-adaptive", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("bounded-excursion", "mesh"): (UNBOUNDED, REASON_WEDGE, None),
    ("bounded-excursion", "torus"): (UNBOUNDED, REASON_WEDGE, None),
    ("hot-potato", "mesh"): (BOUNDED, "", 4),
    ("hot-potato", "torus"): (BOUNDED, "", 4),
    # Certified via the always-accepting escape channel on the mesh; the
    # wrap closes the dependency cycle on the torus (conservative refusal).
    ("credit-adaptive", "mesh"): (BOUNDED, "", "k"),
    ("credit-adaptive", "torus"): (UNBOUNDED, REASON_WEDGE, None),
}


class TestGoldenVerdicts:
    @pytest.mark.parametrize("router", sorted(REGISTRY))
    @pytest.mark.parametrize("topology", ["mesh", "torus"])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_verdict_matches_golden_table(self, router, topology, k):
        verdict = certify_router(router, topology, 4, k)
        kind, reason, bound = GOLDEN[(router, topology)]
        assert verdict.verdict == kind, (
            f"{router}/{topology} k={k}: got {verdict.describe()}"
        )
        assert verdict.reason == reason
        if bound == "k":
            assert verdict.bound == k
        elif bound is not None:
            assert verdict.bound == bound

    def test_registry_table_is_exhaustive(self):
        assert {r for r, _ in GOLDEN} == set(REGISTRY)

    def test_no_registered_router_is_unknown(self):
        # Every registered router exposes a transition model on both
        # topologies, so the certifier always reaches a real verdict.
        for verdict in certify_registry(ns=(4,), ks=(2,)):
            assert verdict.verdict != UNKNOWN, verdict

    def test_unbounded_verdicts_carry_a_witness(self):
        for verdict in certify_registry(ns=(4,), ks=(2,)):
            if verdict.verdict == UNBOUNDED:
                assert len(verdict.witness) >= 1, verdict
            else:
                assert verdict.witness == ()

    def test_verdict_stable_across_n(self):
        for router in sorted(REGISTRY):
            kinds = {
                certify_router(router, "mesh", n, 2).verdict for n in (4, 8)
            }
            assert len(kinds) == 1, f"{router}: {kinds}"


class TestWitnessChains:
    def test_dor_mesh_witness_is_the_head_on_exchange(self):
        """The PR 6 streaming wedge: two adjacent central queues head-on."""
        verdict = certify_router("dor", "mesh", 4, 2)
        assert verdict.reason == REASON_WEDGE
        assert len(verdict.witness) == 2
        a, b = verdict.witness
        assert a.source.key == CENTRAL and a.target.key == CENTRAL
        assert a.target == b.source and b.target == a.source
        ax, ay = a.source.node
        bx, by = a.target.node
        assert abs(ax - bx) + abs(ay - by) == 1

    def test_witness_steps_chain(self):
        for verdict in certify_registry(ns=(4,), ks=(2,)):
            steps = verdict.witness
            for i, step in enumerate(steps):
                assert step.target == steps[(i + 1) % len(steps)].source

    def test_witness_turns_are_legal(self):
        for router in ("greedy-adaptive", "bounded-excursion"):
            entry = REGISTRY[router]
            topology = make_topology("mesh", 4)
            model = entry.factory(2, 0).enumerate_transitions(topology, 2)
            verdict = certify_router(router, "mesh", 4, 2)
            for step in verdict.witness:
                assert (step.travel_in, step.travel_out) in model.turns
                assert (
                    topology.neighbor(step.source.node, step.travel_out)
                    == step.target.node
                )

    def test_step_renders_with_travel_labels(self):
        verdict = certify_router("dor", "mesh", 4, 2)
        text = str(verdict.witness[0])
        assert "--[" in text and "-->" in text


class TestAbstractDomain:
    def test_bounded_dor_mesh_every_queue_bounded_at_k(self):
        model = REGISTRY["bounded-dor"].factory(2, 0).enumerate_transitions(
            Mesh(4), 2
        )
        bounds = compute_channel_bounds(Mesh(4), model, 2)
        assert bounds and all(b == 2 for b in bounds.values())

    def test_never_blocking_model_without_drain_overflows(self):
        # Always-accepting queues fed by transit and no drain guarantee:
        # the fixed point hits TOP and the verdict is queue-overflow.
        model = model_from_contract(
            queue_kind="incoming",
            minimal=True,
            dimension_ordered=False,
            blocking_keys=frozenset(),
        )
        bounds = compute_channel_bounds(Mesh(4), model, 2)
        assert any(b is None for b in bounds.values())
        verdict = certify_model(
            model, Mesh(4), 2, router="x", topology_name="mesh", n=4, k=2
        )
        assert verdict.verdict == UNBOUNDED
        assert verdict.reason == REASON_OVERFLOW
        assert verdict.witness  # a feeder chain into the overflowing queue

    def test_unsound_drain_claim_is_dropped_with_a_note(self):
        # The N queue claims a drain, but its occupants (travelling S)
        # may turn E into a blockable queue: the claim is unsound.
        model = model_from_contract(
            queue_kind="incoming",
            minimal=True,
            dimension_ordered=False,
            blocking_keys=frozenset({E}),
            drain_keys=frozenset({N}),
        )
        validated, notes = validate_drain_claims(model)
        assert validated == {}
        assert notes and "unsound" in notes[0]
        verdict = certify_model(
            model, Mesh(4), 2, router="x", topology_name="mesh", n=4, k=2
        )
        assert verdict.verdict == UNBOUNDED
        assert "unsound" in verdict.note

    def test_sound_drain_claims_survive_validation(self):
        model = REGISTRY["bounded-dor"].factory(2, 0).enumerate_transitions(
            Mesh(4), 2
        )
        validated, notes = validate_drain_claims(model)
        assert set(validated) == {N, S}
        assert notes == []

    def test_key_bounds_cover_every_queue_key(self):
        verdict = certify_router("bounded-dor", "mesh", 4, 2)
        labels = dict(verdict.key_bounds)
        assert set(labels) == {"N", "E", "S", "W"}
        assert all(bound == 2 for bound in labels.values())
        assert verdict.channels == 4 * 4 * 4


class TestSemantics:
    def test_closed_loop_drops_the_wedge_rule(self):
        # A deadlocked batch freezes occupancy at capacity: dor on the
        # mesh is BOUNDED closed-loop, UNBOUNDED open-loop.
        open_v = certify_router("dor", "mesh", 4, 2, semantics=OPEN_LOOP)
        closed_v = certify_router("dor", "mesh", 4, 2, semantics=CLOSED_LOOP)
        assert open_v.verdict == UNBOUNDED
        assert closed_v.verdict == BOUNDED
        assert closed_v.bound == 4  # dor's central capacity max(k, 4)

    def test_overflow_is_unbounded_under_both_semantics(self):
        model = model_from_contract(
            queue_kind="incoming",
            minimal=True,
            dimension_ordered=False,
            blocking_keys=frozenset(),
        )
        for semantics in (OPEN_LOOP, CLOSED_LOOP):
            verdict = certify_model(
                model,
                Mesh(4),
                2,
                router="x",
                topology_name="mesh",
                n=4,
                k=2,
                semantics=semantics,
            )
            assert verdict.verdict == UNBOUNDED

    def test_unknown_semantics_rejected(self):
        model = model_from_contract(
            queue_kind="incoming", minimal=True, dimension_ordered=True
        )
        with pytest.raises(ValueError, match="unknown semantics"):
            certify_model(
                model,
                Mesh(4),
                2,
                router="x",
                topology_name="mesh",
                n=4,
                k=2,
                semantics="weird",
            )


class TestUnknown:
    def test_model_free_algorithm_is_unknown(self):
        class Opaque:
            queue_spec = QueueSpec(kind="central", capacity=4)

            def enumerate_transitions(self, topology, k):
                return None

        verdict = certify_algorithm(Opaque(), "opaque", "mesh", 4, 2)
        assert verdict.verdict == UNKNOWN
        assert verdict.describe() == UNKNOWN
        assert "no static transition model" in verdict.note


class TestAgreement:
    def test_full_registry_agrees_with_the_runtime_oracle(self):
        assert check_bounds_agreement(n=4, ks=(1, 2)) == []

    def test_bounded_with_expected_stall_is_flagged(self):
        # dor is expected to stall on mesh hh/dynamic: a BOUNDED verdict
        # for it would contradict the differential table.
        fake = BoundsVerdict("dor", "mesh", 4, 2, BOUNDED, bound=4)
        findings = check_bounds_agreement([fake], n=4, ks=())
        assert len(findings) == 1
        assert "expects stalls" in findings[0]

    def test_unstable_verdicts_are_flagged(self):
        findings = check_bounds_agreement(
            [
                BoundsVerdict("hot-potato", "mesh", 4, 1, BOUNDED, bound=4),
                BoundsVerdict("hot-potato", "mesh", 4, 2, UNBOUNDED),
            ],
            n=4,
            ks=(),
        )
        assert len(findings) == 1
        assert "unstable" in findings[0]

    def test_unregistered_router_is_flagged(self):
        fake = BoundsVerdict("psychic", "mesh", 4, 2, BOUNDED, bound=1)
        findings = check_bounds_agreement([fake], n=4, ks=())
        assert findings == ["psychic: not in the differential registry"]

    def test_too_small_certified_bound_is_caught_at_runtime(self):
        # Claim hot-potato is bounded at 1: the oracle-checked runs see
        # central occupancy up to 4 and contradict the fake certificate.
        fake = BoundsVerdict("hot-potato", "mesh", 4, 2, BOUNDED, bound=1)
        findings = check_bounds_agreement([fake], n=4, ks=(2,))
        assert findings
        assert any("exceeds the certified bound 1" in f for f in findings)


class TestErrors:
    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            certify_router("psychic", "mesh", 4, 2)

    def test_unknown_registry_subset_rejected(self):
        with pytest.raises(ValueError, match="unknown routers"):
            certify_registry(routers=("psychic",))

    def test_verdict_serializes_to_json(self):
        for verdict in (
            certify_router("dor", "mesh", 4, 2),
            certify_router("bounded-dor", "mesh", 4, 2),
        ):
            data = verdict.to_dict()
            json.dumps(data)  # witness steps and key bounds must encode
            assert data["semantics"] == OPEN_LOOP
            assert data["channels"] == verdict.channels
