"""The ``python -m repro analyze`` subcommand and the analyze trial kind."""

import json

import pytest

from repro.cli import build_parser, main
from repro.harness import TrialSpec
from repro.harness.execute import execute_trial


class TestAnalyzeCli:
    def test_cdg_passes_on_the_registry(self, capsys):
        rc = main(["analyze", "cdg", "--n", "4", "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DEADLOCK_FREE" in out and "CYCLIC" in out
        assert "witness" in out
        assert "analyze cdg PASS" in out

    def test_lint_passes_against_the_baseline(self, capsys):
        rc = main(["analyze", "lint"])
        assert rc == 0
        assert "analyze lint PASS" in capsys.readouterr().out

    def test_bounds_certifies_the_registry(self, capsys):
        rc = main(["analyze", "bounds", "--n", "4", "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BOUNDED(b=2)" in out  # bounded-dor / farthest-first at k=2
        assert "UNBOUNDED[wedged-backlog]" in out
        assert "witness" in out
        assert "0 disagreement(s) with the runtime QueueBoundOracle" in out
        assert "analyze bounds PASS" in out

    def test_bounds_json_carries_the_witness_chain(self, capsys):
        rc = main(
            ["analyze", "bounds", "--json", "--n", "4", "--k", "2",
             "--routers", "dor", "--topologies", "mesh"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("]") + 1])
        assert payload[0]["verdict"] == "UNBOUNDED"
        assert payload[0]["reason"] == "wedged-backlog"
        assert len(payload[0]["witness"]) == 2  # the head-on exchange

    def test_all_runs_every_engine(self, capsys):
        rc = main(["analyze", "all", "--n", "4", "--k", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "analyze cdg PASS" in out
        assert "analyze bounds PASS" in out
        assert "analyze lint PASS" in out

    def test_json_output_is_parseable(self, capsys):
        rc = main(
            ["analyze", "cdg", "--json", "--n", "4", "--k", "2",
             "--routers", "dor", "--topologies", "mesh"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("]") + 1])
        assert payload[0]["router"] == "dor"
        assert payload[0]["verdict"] == "CYCLIC"
        assert payload[0]["witness"]

    def test_unknown_router_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "cdg", "--routers", "psychic"])
        assert exc.value.code == 2
        assert "unknown routers" in capsys.readouterr().err

    def test_bad_engine_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["analyze", "psychic"])
        assert exc.value.code == 2

    def test_update_baseline_rejected_for_all(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "all", "--update-baseline"])
        assert exc.value.code == 2

    def test_top_level_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for command in ("route", "lower-bound", "section6", "bounds",
                        "verify", "campaign", "analyze"):
            assert command in out


class TestAnalyzeTrialKind:
    def test_cdg_trial_executes(self):
        spec = TrialSpec(kind="analyze", workload="cdg", n=4, k=2)
        metrics = execute_trial(spec)
        # 8 compass routers x 2 topologies + credit-adaptive x 5 topologies.
        assert metrics["verdicts"] == 21
        assert metrics["deadlock_free"] + metrics["cyclic"] == 21

    def test_lint_trial_executes(self):
        spec = TrialSpec(kind="analyze", workload="lint", n=4)
        assert execute_trial(spec)["lint_new"] == 0

    def test_router_pin(self):
        spec = TrialSpec(kind="analyze", workload="cdg", n=4, k=2,
                         algorithm="hot-potato")
        metrics = execute_trial(spec)
        assert metrics["verdicts"] == 2
        assert metrics["deadlock_free"] == 2

    def test_bad_engine_rejected_by_validate(self):
        spec = TrialSpec(kind="analyze", workload="transpose", n=4)
        with pytest.raises(ValueError, match="analyze trials name an engine"):
            spec.validate()

    def test_bad_router_rejected_by_validate(self):
        spec = TrialSpec(kind="analyze", workload="cdg", n=4, algorithm="psychic")
        with pytest.raises(ValueError, match="unknown analyze router"):
            spec.validate()


class TestBoundsTrialKind:
    def test_bounds_trial_executes(self):
        spec = TrialSpec(kind="bounds", n=4, k=2)
        metrics = execute_trial(spec)
        # 8 compass routers x 2 topologies + credit-adaptive x 5 topologies.
        assert metrics["bounds_verdicts"] == 21
        assert metrics["bounded"] + metrics["unbounded"] == 21
        # bounded-dor, ff (mesh), hot-potato x2, credit-adaptive (mesh+mesh3d).
        assert metrics["bounded"] == 6

    def test_router_pin(self):
        spec = TrialSpec(kind="bounds", n=4, k=1, algorithm="hot-potato")
        metrics = execute_trial(spec)
        assert metrics["bounds_verdicts"] == 2
        assert metrics["bounded"] == 2

    def test_analyze_workload_bounds_runs_the_certifier(self):
        spec = TrialSpec(kind="analyze", workload="bounds", n=4, k=2)
        metrics = execute_trial(spec)
        # 8 compass routers x 2 topologies + credit-adaptive x 5 topologies.
        assert metrics["bounds_verdicts"] == 21

    def test_bad_router_rejected_by_validate(self):
        spec = TrialSpec(kind="bounds", n=4, algorithm="psychic")
        with pytest.raises(ValueError, match="unknown bounds router"):
            spec.validate()
