"""Tests for the Theorem 15 turning-interval monitor."""

from repro.analysis.turning_intervals import TurningIntervalMonitor
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.replay import packets_for_replay
from repro.mesh import Mesh, Packet, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation


def run_monitored(n: int, k: int, packets, max_steps=200_000):
    monitor = TurningIntervalMonitor(k=k)
    sim = Simulator(
        Mesh(n), BoundedDimensionOrderRouter(k), packets, interceptor=monitor
    )
    result = sim.run(max_steps=max_steps)
    monitor.finalize(sim)
    assert result.completed
    return monitor, result


class TestTurningIntervalMonitor:
    def test_synthetic_interval_detected(self):
        """k packets from one row all turning at one column form exactly one
        turning interval there, while straight column traffic delays them."""
        n, k = 10, 2
        packets = [
            Packet(0, (4, 2), (5, 8)),  # turner A: reaches (5,2) at t=1
            Packet(1, (3, 2), (5, 9)),  # turner B: reaches (5,2) at t=2
            # Straight column-5 traffic arriving exactly in the window.
            Packet(2, (5, 1), (5, 7)),
            Packet(3, (5, 0), (5, 6)),
        ]
        monitor, _ = run_monitored(n, k, packets)
        at_column5 = [iv for iv in monitor.intervals if iv.column == 5 and iv.row == 2]
        assert len(at_column5) == 1
        iv = at_column5[0]
        assert iv.members == {0, 1}
        assert iv.duration is not None and 1 <= iv.duration <= n

    def test_no_intervals_without_full_turning_queue(self):
        n, k = 8, 4  # queue never fills with 4 same-column turners
        packets = [Packet(0, (0, 0), (5, 5)), Packet(1, (0, 1), (6, 6))]
        monitor, _ = run_monitored(n, k, packets)
        assert monitor.intervals == []

    def test_counting_claims_on_random_permutations(self):
        """Theorem 15 proof: <= n/k intervals per row; each interval is
        O(n) long (the strict n applies to delay by straight column traffic
        alone; opposite-side turners can add a constant factor)."""
        n, k = 16, 1
        mesh = Mesh(n)
        for seed in range(3):
            monitor, _ = run_monitored(n, k, random_permutation(mesh, seed=seed))
            assert monitor.max_intervals_per_row() <= n // k
            assert monitor.max_duration() <= 3 * n

    def test_counting_claims_on_adversarial_instance(self):
        """The claims hold even on the Section 5 constructed permutation --
        that is exactly why the upper bound matches the lower bound."""
        n, k = 60, 1
        con = DorLowerBoundConstruction(n, lambda: BoundedDimensionOrderRouter(k))
        packets = packets_for_replay(con.run())
        monitor, result = run_monitored(n, k, packets, max_steps=500_000)
        assert monitor.max_intervals_per_row() <= n // k
        assert monitor.max_duration() <= 3 * n
        # The adversarial instance actually produces turning intervals --
        # they are the mechanism of its slowness.
        assert monitor.intervals

    def test_intervals_per_row_accounting(self):
        n, k = 16, 1
        mesh = Mesh(n)
        monitor, _ = run_monitored(n, k, random_permutation(mesh, seed=5))
        per_row = monitor.intervals_per_row()
        assert sum(per_row.values()) == len(monitor.intervals)
