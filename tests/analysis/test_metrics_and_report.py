"""Tests for measurements, comparisons, and report formatting."""

from repro.analysis import compare_algorithms, format_series, format_table, measure_routing
from repro.mesh import Mesh
from repro.routing import BoundedDimensionOrderRouter, GreedyAdaptiveRouter
from repro.workloads import random_permutation


class TestMeasureRouting:
    def test_basic_measurement(self):
        mesh = Mesh(8)
        m = measure_routing(
            mesh, BoundedDimensionOrderRouter(2), random_permutation(mesh, seed=0)
        )
        assert m.completed
        assert m.algorithm == "bounded-dimension-order"
        assert m.steps >= mesh.diameter // 2
        assert m.avg_delivery_time > 0
        assert m.max_queue_len <= 2

    def test_compare_same_workload(self):
        mesh = Mesh(8)
        rows = compare_algorithms(
            mesh,
            [
                ("dor", lambda: BoundedDimensionOrderRouter(2)),
                ("adaptive", lambda: GreedyAdaptiveRouter(2, "incoming")),
            ],
            lambda: random_permutation(mesh, seed=1),
        )
        assert len(rows) == 2
        assert all(r.completed for r in rows)
        # Same instance, minimal routers: identical total moves.
        assert rows[0].total_moves == rows[1].total_moves


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all same width

    def test_format_table_floats(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.23" in out

    def test_format_series(self):
        out = format_series("time", [27, 81], [244, 1015])
        assert out == "time: 27=244, 81=1015"
