"""Purity and edge-case tests for the open-loop arrival processes.

Mirrors tests/faults/test_plan.py: every arrival decision must be a pure
function of ``(seed, source, time)`` -- independent of query order,
repetition, interleaving, and (by construction) worker count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.specs import STREAMING_ARRIVALS
from repro.mesh import Mesh
from repro.streaming import (
    HotspotDestinations,
    MAX_ARRIVALS_PER_STEP,
    OnOffArrivals,
    PROCESS_NAMES,
    PoissonArrivals,
    UniformDestinations,
    build_process,
    poisson_count,
)

MESH = Mesh(8)

nodes = st.tuples(
    st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
)
seeds = st.integers(min_value=0, max_value=2**31)
times = st.integers(min_value=0, max_value=10**5)


class TestPoissonCount:
    def test_zero_rate_is_silent(self):
        assert poisson_count(0.5, 0.0) == 0

    def test_monotone_in_u(self):
        counts = [poisson_count(u / 100.0, 2.0) for u in range(100)]
        assert counts == sorted(counts)

    def test_capped(self):
        assert poisson_count(1.0 - 1e-15, 1e6) == MAX_ARRIVALS_PER_STEP


class TestPurity:
    @given(seed=seeds, source=nodes, time=times)
    @settings(max_examples=60, deadline=None)
    def test_poisson_arrivals_pure(self, seed, source, time):
        """Repeating a query after unrelated interleaved queries -- the
        worker-count/query-order independence property."""
        proc = PoissonArrivals(0.7, seed=seed)
        first = proc.arrivals(MESH, source, time)
        proc.arrivals(MESH, (0, 0), time + 1)
        proc.arrivals(MESH, source, time + 17)
        assert proc.arrivals(MESH, source, time) == first
        # A fresh instance (another worker) agrees exactly.
        assert PoissonArrivals(0.7, seed=seed).arrivals(MESH, source, time) == first

    @given(seed=seeds, source=nodes, time=st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_onoff_arrivals_order_independent(self, seed, source, time):
        """The lazy window unfold must not depend on visit order: querying
        time T directly equals querying 0..T sequentially."""
        direct = OnOffArrivals(1.0, 4.0, 3.0, seed=seed)
        sequential = OnOffArrivals(1.0, 4.0, 3.0, seed=seed)
        for t in range(0, time + 1, max(1, time // 7)):
            sequential.arrivals(MESH, source, t)
        assert direct.arrivals(MESH, source, time) == sequential.arrivals(
            MESH, source, time
        )

    @given(seed=seeds, source=nodes, time=times)
    @settings(max_examples=60, deadline=None)
    def test_destinations_never_source(self, seed, source, time):
        proc = PoissonArrivals(2.0, seed=seed)
        for dest in proc.arrivals(MESH, source, time):
            assert dest != source
            assert MESH.contains(dest)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_worker_split_reassembles_identically(self, seed):
        """Computing arrivals per-node in any partition (what a parallel
        sweep does) reassembles to the same global batch."""
        proc = PoissonArrivals(0.5, seed=seed)
        whole = {
            node: proc.arrivals(MESH, node, 3) for node in MESH.nodes()
        }
        shards = [PoissonArrivals(0.5, seed=seed) for _ in range(4)]
        for i, node in enumerate(sorted(MESH.nodes(), reverse=True)):
            assert shards[i % 4].arrivals(MESH, node, 3) == whole[node]


class TestEdgeCases:
    def test_rate_zero_poisson_is_silent(self):
        proc = PoissonArrivals(0.0, seed=1)
        assert proc.mean_rate() == 0.0
        for node in MESH.nodes():
            assert proc.arrivals(MESH, node, 0) == ()

    def test_rate_zero_onoff_is_silent(self):
        proc = OnOffArrivals(0.0, 4.0, 4.0, seed=1)
        for t in range(50):
            assert proc.arrivals(MESH, (3, 3), t) == ()

    def test_burst_length_one_gives_alternating_windows(self):
        """Mean window length 1 is deterministic: on/off alternate every
        step, the single-step-burst edge case."""
        proc = OnOffArrivals(5.0, 1.0, 1.0, seed=7)
        states = [proc.is_on((2, 5), t) for t in range(10)]
        assert states == [True, False] * 5

    def test_hotspot_fraction_one_sends_everything_hot(self):
        model = HotspotDestinations(1.0, hotspot=(4, 4), seed=3)
        proc = PoissonArrivals(3.0, destinations=model, seed=3)
        seen = set()
        for node in MESH.nodes():
            for t in range(20):
                seen.update(proc.arrivals(MESH, node, t))
        # Only traffic *from* the hotspot may target other nodes.
        hot_sources = {
            d
            for t in range(20)
            for d in proc.arrivals(MESH, (4, 4), t)
        }
        assert seen - hot_sources == {(4, 4)}

    def test_hotspot_fraction_zero_is_uniform(self):
        hot = HotspotDestinations(0.0, hotspot=(4, 4), seed=3)
        uni = UniformDestinations(seed=3)
        for t in range(30):
            assert hot.draw(MESH, (1, 2), t, 0) == uni.draw(MESH, (1, 2), t, 0)

    def test_hotspot_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            HotspotDestinations(1.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(-0.1)
        with pytest.raises(ValueError, match="rate"):
            OnOffArrivals(-1.0, 4.0, 4.0)

    def test_short_windows_rejected(self):
        with pytest.raises(ValueError, match="burst_len"):
            OnOffArrivals(1.0, 0.5, 4.0)

    def test_onoff_mean_rate_discounts_gaps(self):
        proc = OnOffArrivals(1.0, 8.0, 8.0)
        assert proc.mean_rate() == pytest.approx(0.5)


class TestBuildProcess:
    def test_names_agree_with_spec_layer(self):
        """STREAMING_ARRIVALS is duplicated in the spec layer to keep it
        import-light; this is the promised agreement check."""
        assert STREAMING_ARRIVALS == PROCESS_NAMES

    def test_builds_every_name(self):
        for name in PROCESS_NAMES:
            proc = build_process(name, 0.3, seed=5)
            assert proc.arrivals(MESH, (0, 0), 0) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            build_process("fractal", 0.3)
