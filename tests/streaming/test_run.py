"""The continuous open-loop driver: determinism, backpressure, accounting."""

import pytest

from repro.mesh import Mesh
from repro.routing import (
    BoundedDimensionOrderRouter,
    DimensionOrderRouter,
    GreedyAdaptiveRouter,
)
from repro.streaming import PoissonArrivals, build_process, run_streaming
from repro.verify import VerificationError


def small_run(rate=0.1, algorithm=None, **kwargs):
    kwargs.setdefault("warmup", 8)
    kwargs.setdefault("measure", 32)
    kwargs.setdefault("drain", 128)
    return run_streaming(
        Mesh(8),
        algorithm or BoundedDimensionOrderRouter(2),
        build_process("poisson", rate, seed=3),
        **kwargs,
    )


class TestDeterminism:
    def test_repeat_runs_byte_identical(self):
        assert small_run().to_metrics() == small_run().to_metrics()

    def test_metrics_json_serializable(self):
        import json

        json.dumps(small_run().to_metrics())


class TestAccounting:
    def test_offered_splits_into_admitted_and_rejected(self):
        report = small_run(rate=0.6)
        assert report.admitted + report.rejected == report.offered
        assert report.rejected > 0  # far above saturation
        m = report.to_metrics()
        assert m["rejection_fraction"] > 0.0

    def test_low_rate_delivers_everything(self):
        report = small_run(rate=0.02)
        assert report.drained and not report.stalled
        assert report.rejected == 0
        assert report.delivered_measured == report.admitted_measured
        assert report.delivered_rate == pytest.approx(report.offered_rate)

    def test_simulator_conservation_includes_rejected(self):
        report = small_run(rate=0.6)
        sim_total = report.result.total_packets
        assert sim_total == report.offered
        # Everything is resolved after a successful drain: delivered +
        # rejected == total (nothing dropped, nothing pending).
        if report.drained:
            assert report.result.delivered + report.rejected == sim_total

    def test_latencies_only_from_measured_window(self):
        report = small_run(rate=0.05)
        assert len(report.latencies) == report.delivered_measured
        assert all(lat >= 1 for lat in report.latencies)

    def test_strict_oracles_clean_on_conforming_router(self):
        # strict mode raises on any violation; a clean run proves the
        # admission path keeps every invariant the oracles check.
        report = small_run(rate=0.3, oracle_mode="strict")
        assert report.ok


class TestStallDetection:
    def test_central_queue_router_wedges_under_overload(self):
        """The documented Section 2 exchange-deadlock, surfaced as data:
        a central-queue router at far-above-saturation load wedges, and
        the drain detects it instead of burning the whole budget."""
        report = small_run(rate=0.8, algorithm=DimensionOrderRouter(2), drain=5000)
        assert report.stalled and not report.drained
        assert report.result.steps < 8 + 32 + 5000  # stall cut the drain short
        assert report.to_metrics()["stalled"] is True

    def test_theorem15_router_does_not_wedge(self):
        report = small_run(rate=0.8, drain=2000)
        assert report.drained and not report.stalled


class TestValidation:
    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            small_run(warmup=-1)
        with pytest.raises(ValueError, match="measure"):
            small_run(measure=0)
        with pytest.raises(ValueError, match="drain"):
            small_run(drain=-1)


class TestHarnessIntegration:
    def test_streaming_trial_runs_and_caches_deterministically(self):
        from repro.harness.execute import execute_trial
        from repro.harness.specs import TrialSpec

        spec = TrialSpec(
            kind="streaming",
            n=8,
            k=2,
            algorithm="greedy-adaptive",
            rate=0.1,
            warmup=8,
            measure=32,
            drain=128,
        )
        spec.validate()
        assert execute_trial(spec) == execute_trial(spec)

    def test_streaming_spec_validates_fields(self):
        from repro.harness.specs import TrialSpec

        with pytest.raises(ValueError, match="arrival"):
            TrialSpec(
                kind="streaming", n=8, algorithm="dor", arrival="fractal"
            ).validate()
        with pytest.raises(ValueError, match="streaming algorithm"):
            TrialSpec(kind="streaming", n=8, algorithm="nope").validate()
        with pytest.raises(ValueError, match="rate"):
            TrialSpec(kind="streaming", n=8, algorithm="dor", rate=-1.0).validate()
