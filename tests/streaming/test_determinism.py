"""Byte-identical streaming sweeps across worker counts.

The acceptance property of the subsystem: a saturation sweep's stored
rows are byte-identical between ``--workers 1`` and ``--workers 4``,
because every arrival is a pure function of ``(seed, source, time)`` and
every run is single-simulator sequential.
"""

import pytest

from repro.harness import CampaignSpec, TrialSpec, run_campaign


def stream_spec(**overrides):
    fields = dict(
        kind="streaming",
        algorithm="bounded-dor",
        n=8,
        k=4,
        rate=0.1,
        warmup=8,
        measure=32,
        drain=128,
        seed=0,
    )
    fields.update(overrides)
    return TrialSpec(**fields)


class TestCampaignDeterminism:
    @pytest.fixture(autouse=True)
    def pinned_code_version(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "streaming-determinism-test")

    def test_rows_identical_across_worker_counts(self, tmp_path):
        campaign = CampaignSpec(
            name="stream_det",
            trials=[
                stream_spec(),
                stream_spec(rate=0.6),  # above the knee: rejections active
                stream_spec(algorithm="greedy-adaptive", rate=0.5),  # wedges
                stream_spec(arrival="onoff", rate=0.4, seed=2),
                stream_spec(arrival="hotspot", rate=0.2, seed=1),
            ],
        )
        serial = run_campaign(
            campaign, workers=1, base_dir=tmp_path / "serial", fresh=True
        )
        pooled = run_campaign(
            campaign, workers=4, base_dir=tmp_path / "pooled", fresh=True
        )
        assert serial.ok and pooled.ok
        assert [t.metrics for t in serial.results] == [
            t.metrics for t in pooled.results
        ]
        serial_rows = (tmp_path / "serial/stream_det/results.jsonl").read_bytes()
        pooled_rows = (tmp_path / "pooled/stream_det/results.jsonl").read_bytes()
        assert serial_rows == pooled_rows
