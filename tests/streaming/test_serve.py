"""The live injection service: state machine, socket round-trip, CLI.

No pytest-asyncio in the toolchain, so async tests drive their own event
loop via ``asyncio.run`` inside synchronous test functions.
"""

import asyncio
import json
import socket
import subprocess
import sys

from repro.mesh import Mesh
from repro.routing import BoundedDimensionOrderRouter
from repro.streaming import StreamingService, serve_forever


def make_service(n=8, k=4):
    return StreamingService(Mesh(n), BoundedDimensionOrderRouter(k))


class TestServiceStateMachine:
    def test_inject_step_snapshot_roundtrip(self):
        svc = make_service()
        resp = svc.handle({"cmd": "inject", "source": [0, 0], "dest": [7, 7], "count": 3})
        assert resp["ok"] and resp["admitted"] + resp["rejected"] == 3
        svc.handle({"cmd": "step", "steps": 40})
        snap = svc.handle({"cmd": "snapshot"})["metrics"]
        assert snap["delivered_packets"] == resp["admitted"]
        assert snap["latency_p50"] is not None

    def test_backpressure_rejects_when_source_queue_full(self):
        svc = make_service(k=2)
        resp = svc.handle({"cmd": "inject", "source": [0, 0], "dest": [7, 7], "count": 10})
        # Central queue of capacity 2: at most 2 admitted per step.
        assert resp["admitted"] == 2 and resp["rejected"] == 8
        svc.handle({"cmd": "step", "steps": 1})
        again = svc.handle({"cmd": "inject", "source": [0, 0], "dest": [7, 7], "count": 1})
        assert again["ok"]  # space accounting reset at the step boundary

    def test_drain_settles(self):
        svc = make_service()
        svc.handle({"cmd": "inject", "source": [1, 1], "dest": [6, 6], "count": 2})
        resp = svc.handle({"cmd": "drain", "max_steps": 200})
        assert resp["ok"] and resp["drained"] and not resp["stalled"]

    def test_errors_are_responses_not_crashes(self):
        svc = make_service()
        for bad in (
            {"cmd": "inject", "source": [0, 0], "dest": [0, 0]},  # same node
            {"cmd": "inject", "source": [0, 0], "dest": [9, 9]},  # off-mesh
            {"cmd": "inject", "source": "a", "dest": [1, 1]},  # malformed
            {"cmd": "inject", "source": [0, 0], "dest": [1, 1], "count": 0},
            {"cmd": "step", "steps": 10**9},  # over the clamp
            {"cmd": "warp"},
            ["not", "an", "object"],
        ):
            resp = svc.handle(bad)
            assert resp["ok"] is False and "error" in resp
        assert svc.handle_line(b"{nope")["ok"] is False
        # The service survives all of it:
        assert svc.handle({"cmd": "snapshot"})["ok"]

    def test_conservation_in_snapshot(self):
        svc = make_service(k=2)
        svc.handle({"cmd": "inject", "source": [0, 0], "dest": [7, 7], "count": 10})
        svc.handle({"cmd": "drain", "max_steps": 200})
        snap = svc.handle({"cmd": "snapshot"})["metrics"]
        assert (
            snap["delivered_packets"] + snap["rejected_packets"] + snap["in_flight"]
            == snap["offered_packets"]
        )
        assert snap["conservation_violations"] == 0


class TestSocketRoundTrip:
    def test_thousand_packets_over_the_wire(self):
        """The acceptance scenario: >= 1000 packets injected over the
        socket, stepped to settlement, latency percentiles in the final
        snapshot."""

        async def scenario():
            svc = make_service(n=8, k=4)
            ready = asyncio.Event()
            addr = {}

            def on_ready(host, port):
                addr["host"], addr["port"] = host, port
                ready.set()

            server = asyncio.create_task(serve_forever(svc, port=0, on_ready=on_ready))
            await ready.wait()
            reader, writer = await asyncio.open_connection(addr["host"], addr["port"])

            async def rpc(obj):
                writer.write((json.dumps(obj) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            admitted = 0
            pairs = [([x, y], [7 - x, 7 - y]) for x in range(8) for y in range(4)]
            while admitted < 1000:
                for source, dest in pairs:
                    resp = await rpc(
                        {"cmd": "inject", "source": source, "dest": dest, "count": 2}
                    )
                    assert resp["ok"]
                    admitted += resp["admitted"]
                await rpc({"cmd": "step", "steps": 4})
            drain = await rpc({"cmd": "drain", "max_steps": 2000})
            assert drain["drained"]
            snap = (await rpc({"cmd": "snapshot"}))["metrics"]
            bye = await rpc({"cmd": "shutdown"})
            assert bye["bye"]
            writer.close()
            await server
            return admitted, snap

        admitted, snap = asyncio.run(scenario())
        assert admitted >= 1000
        assert snap["delivered_packets"] == snap["admitted_packets"] == admitted
        assert snap["drained"] is True
        for q in ("latency_p50", "latency_p95", "latency_p99"):
            assert isinstance(snap[q], int)

    def test_shutdown_stops_server(self):
        async def scenario():
            svc = make_service()
            ready = asyncio.Event()
            addr = {}
            server = asyncio.create_task(
                serve_forever(
                    svc, port=0, on_ready=lambda h, p: (addr.update(p=p), ready.set())
                )
            )
            await ready.wait()
            reader, writer = await asyncio.open_connection("127.0.0.1", addr["p"])
            writer.write(b'{"cmd": "shutdown"}\n')
            await writer.drain()
            await reader.readline()
            writer.close()
            await asyncio.wait_for(server, timeout=5)

        asyncio.run(scenario())


class TestServeCli:
    def test_cli_subprocess_socket_smoke(self, tmp_path):
        """start -> inject -> snapshot -> shutdown against the real CLI
        process, parsing the announced ephemeral port."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--n", "8", "--k", "4", "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "repro serve listening on " in banner
            host, port = banner.strip().rsplit(" ", 1)[-1].split(":")
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                f = sock.makefile("rw")

                def rpc(obj):
                    f.write(json.dumps(obj) + "\n")
                    f.flush()
                    return json.loads(f.readline())

                resp = rpc({"cmd": "inject", "source": [0, 0], "dest": [7, 7], "count": 4})
                assert resp["ok"] and resp["admitted"] == 4
                rpc({"cmd": "drain", "max_steps": 200})
                snap = rpc({"cmd": "snapshot"})["metrics"]
                assert snap["delivered_packets"] == 4
                assert rpc({"cmd": "shutdown"})["bye"]
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
