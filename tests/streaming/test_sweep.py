"""Saturation-sweep shape: monotone rise below the knee, knee detection."""

from repro.mesh import Mesh
from repro.routing import BoundedDimensionOrderRouter
from repro.streaming import (
    SweepPoint,
    SweepResult,
    format_sweep_markdown,
    sweep_saturation,
)


def fake_point(rate, offered, delivered, stalled=False, drained=True):
    return SweepPoint(
        rate=rate,
        metrics={
            "offered_rate": offered,
            "delivered_rate": delivered,
            "rejection_fraction": 1.0 - (delivered / offered if offered else 1.0),
            "latency_p50": 5,
            "latency_p99": 12,
            "stalled": stalled,
            "drained": drained,
        },
    )


class TestKneeDetection:
    def test_knee_is_first_shortfall(self):
        result = SweepResult(algorithm="x", n=8, process="poisson")
        result.points = [
            fake_point(0.05, 0.05, 0.05),
            fake_point(0.2, 0.2, 0.19),
            fake_point(0.4, 0.4, 0.21),  # < 95% of offered: the knee
            fake_point(0.8, 0.8, 0.2),
        ]
        assert result.saturation_rate() == 0.4

    def test_no_knee_when_network_keeps_up(self):
        result = SweepResult(algorithm="x", n=8, process="poisson")
        result.points = [fake_point(0.05, 0.05, 0.05), fake_point(0.1, 0.1, 0.099)]
        assert result.saturation_rate() is None

    def test_zero_offered_rung_skipped(self):
        result = SweepResult(algorithm="x", n=8, process="poisson")
        result.points = [fake_point(0.0, 0.0, 0.0), fake_point(0.1, 0.1, 0.1)]
        assert result.saturation_rate() is None


class TestSweep:
    def test_small_sweep_monotone_then_knee(self):
        """Below the knee, delivered tracks offered; the run is cheap
        (n=8, three rungs) but exercises the full path."""
        result = sweep_saturation(
            Mesh(8),
            BoundedDimensionOrderRouter(4),
            algorithm_name="bounded-dor",
            rates=(0.05, 0.2, 0.8),
            warmup=8,
            measure=48,
            drain=256,
        )
        delivered = [p.metrics["delivered_rate"] for p in result.points]
        offered = [p.metrics["offered_rate"] for p in result.points]
        # Monotone rise below saturation...
        assert delivered[0] < delivered[1]
        assert delivered[0] == offered[0]
        # ...then a knee: the top rung cannot keep up with its offer.
        assert delivered[2] < 0.95 * offered[2]
        assert result.saturation_rate() == 0.8

    def test_sweep_deterministic(self):
        kwargs = dict(
            algorithm_name="bounded-dor",
            rates=(0.05, 0.4),
            warmup=8,
            measure=32,
            drain=128,
        )
        a = sweep_saturation(Mesh(8), BoundedDimensionOrderRouter(2), **kwargs)
        b = sweep_saturation(Mesh(8), BoundedDimensionOrderRouter(2), **kwargs)
        assert a.to_rows() == b.to_rows()


class TestMarkdown:
    def test_table_shape_and_outcomes(self):
        result = SweepResult(algorithm="x", n=8, process="poisson")
        result.points = [
            fake_point(0.05, 0.05, 0.05),
            fake_point(0.8, 0.8, 0.01, stalled=True, drained=False),
        ]
        table = format_sweep_markdown([result])
        lines = table.splitlines()
        assert lines[0].startswith("| algorithm ")
        assert len(lines) == 2 + 2  # header + rule + one row per rung
        assert "drained" in lines[2] and "wedged" in lines[3]
        assert all(line.count("|") == lines[0].count("|") for line in lines)
