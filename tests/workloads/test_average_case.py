"""Tests for the average-case (random destinations) workload."""

import pytest

from repro.mesh import Mesh, Simulator
from repro.routing import DimensionOrderRouter
from repro.workloads import random_destinations


class TestRandomDestinations:
    def test_one_packet_per_node_at_full_load(self):
        mesh = Mesh(8)
        packets = random_destinations(mesh, seed=0)
        assert len(packets) == 64
        assert len({p.source for p in packets}) == 64

    def test_destinations_may_repeat(self):
        mesh = Mesh(16)
        packets = random_destinations(mesh, seed=1)
        # 256 draws from 256 cells: collisions are essentially certain.
        assert len({p.dest for p in packets}) < len(packets)

    def test_load_thins_sources(self):
        mesh = Mesh(16)
        packets = random_destinations(mesh, load=0.25, seed=2)
        assert 20 <= len(packets) <= 110

    def test_load_validation(self):
        with pytest.raises(ValueError):
            random_destinations(Mesh(4), load=0.0)
        with pytest.raises(ValueError):
            random_destinations(Mesh(4), load=1.5)

    def test_reproducible(self):
        mesh = Mesh(8)
        a = random_destinations(mesh, seed=9)
        b = random_destinations(mesh, seed=9)
        assert [(p.source, p.dest) for p in a] == [(p.source, p.dest) for p in b]

    def test_average_case_routes_near_diameter_with_small_queues(self):
        """Section 1.1 (Leighton): ~2n steps, queues stay tiny."""
        mesh = Mesh(24)
        result = Simulator(
            mesh, DimensionOrderRouter(16), random_destinations(mesh, seed=3)
        ).run(10_000)
        assert result.completed
        assert result.steps <= 2 * 24 + 40
        assert result.max_queue_len <= 6
