"""Tests for h-h routing problem generators."""

from collections import Counter

import pytest

from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import dynamic_hh_problem, random_hh_problem


class TestRandomHH:
    def test_each_node_sends_and_receives_h(self):
        mesh = Mesh(6)
        h = 3
        packets = random_hh_problem(mesh, h, seed=0)
        assert len(packets) == h * mesh.num_nodes
        sends = Counter(p.source for p in packets)
        recvs = Counter(p.dest for p in packets)
        assert all(c == h for c in sends.values())
        assert all(c == h for c in recvs.values())

    def test_h_must_be_positive(self):
        with pytest.raises(ValueError):
            random_hh_problem(Mesh(4), 0)

    def test_static_hh_routable_when_h_le_k(self):
        mesh = Mesh(8)
        h = 2
        packets = random_hh_problem(mesh, h, seed=1)
        result = Simulator(mesh, BoundedDimensionOrderRouter(h), packets).run(50_000)
        assert result.completed


class TestDynamicHH:
    def test_rounds_staggered(self):
        mesh = Mesh(4)
        packets = dynamic_hh_problem(mesh, 3, spacing=5, seed=0)
        times = {p.injection_time for p in packets}
        assert times == {0, 5, 10}

    def test_dynamic_handles_h_greater_than_k(self):
        """The paper: with h > k, the dynamic setting is necessary -- and
        sufficient, since injection waits for queue space."""
        mesh = Mesh(6)
        h, k = 4, 1
        packets = dynamic_hh_problem(mesh, h, spacing=2, seed=2)
        result = Simulator(mesh, BoundedDimensionOrderRouter(k), packets).run(100_000)
        assert result.completed
        assert result.max_queue_len <= k
