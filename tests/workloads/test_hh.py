"""Tests for h-h routing problem generators."""

from collections import Counter

import pytest

from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import dynamic_hh_problem, random_hh_problem


class TestRandomHH:
    def test_each_node_sends_and_receives_h(self):
        mesh = Mesh(6)
        h = 3
        packets = random_hh_problem(mesh, h, seed=0)
        assert len(packets) == h * mesh.num_nodes
        sends = Counter(p.source for p in packets)
        recvs = Counter(p.dest for p in packets)
        assert all(c == h for c in sends.values())
        assert all(c == h for c in recvs.values())

    def test_h_must_be_positive(self):
        with pytest.raises(ValueError):
            random_hh_problem(Mesh(4), 0)

    def test_static_hh_routable_when_h_le_k(self):
        mesh = Mesh(8)
        h = 2
        packets = random_hh_problem(mesh, h, seed=1)
        result = Simulator(mesh, BoundedDimensionOrderRouter(h), packets).run(50_000)
        assert result.completed


class TestDynamicHH:
    def test_rounds_staggered(self):
        mesh = Mesh(4)
        packets = dynamic_hh_problem(mesh, 3, spacing=5, seed=0)
        times = {p.injection_time for p in packets}
        assert times == {0, 5, 10}

    def test_dynamic_handles_h_greater_than_k(self):
        """The paper: with h > k, the dynamic setting is necessary -- and
        sufficient, since injection waits for queue space."""
        mesh = Mesh(6)
        h, k = 4, 1
        packets = dynamic_hh_problem(mesh, h, spacing=2, seed=2)
        result = Simulator(mesh, BoundedDimensionOrderRouter(k), packets).run(100_000)
        assert result.completed
        assert result.max_queue_len <= k


class TestEdgeCases:
    def test_h1_is_a_permutation(self):
        """h=1 degenerates to a single random permutation."""
        mesh = Mesh(5)
        packets = random_hh_problem(mesh, 1, seed=4)
        assert len(packets) == mesh.num_nodes
        assert {p.source for p in packets} == set(mesh.nodes())
        assert {p.dest for p in packets} == set(mesh.nodes())
        assert all(p.injection_time == 0 for p in packets)

    def test_h1_dynamic_equals_static_times(self):
        mesh = Mesh(4)
        packets = dynamic_hh_problem(mesh, 1, spacing=7, seed=0)
        assert all(p.injection_time == 0 for p in packets)

    def test_h_equals_k_static_fits_and_routes(self):
        """h=k is the boundary: a static h-h problem exactly fills the
        source queues, and Theorem 15's router still drains it."""
        mesh = Mesh(5)
        h = k = 3
        packets = random_hh_problem(mesh, h, seed=6)
        result = Simulator(mesh, BoundedDimensionOrderRouter(k), packets).run(50_000)
        assert result.completed
        assert result.max_queue_len <= k

    def test_n2_smallest_mesh(self):
        """n=2: four nodes, all pairs at distance <= 2; both generators
        stay well-formed and the problem routes."""
        mesh = Mesh(2)
        packets = random_hh_problem(mesh, 2, seed=1)
        assert len(packets) == 8
        sends = Counter(p.source for p in packets)
        recvs = Counter(p.dest for p in packets)
        assert all(c == 2 for c in sends.values())
        assert all(c == 2 for c in recvs.values())
        result = Simulator(mesh, BoundedDimensionOrderRouter(2), packets).run(10_000)
        assert result.completed

    def test_n2_dynamic_spacing_zero_collapses_to_static(self):
        mesh = Mesh(2)
        packets = dynamic_hh_problem(mesh, 3, spacing=0, seed=2)
        assert {p.injection_time for p in packets} == {0}

    def test_round_structure_of_pids(self):
        """Round r owns pids [r*n^2, (r+1)*n^2) and injects at r*spacing."""
        mesh = Mesh(3)
        packets = dynamic_hh_problem(mesh, 4, spacing=3, seed=8)
        for p in packets:
            assert p.injection_time == (p.pid // mesh.num_nodes) * 3
