"""Tests for permutation workload generators."""

import numpy as np
import pytest

from repro.mesh import Mesh, Torus
from repro.workloads import (
    bit_reversal_permutation,
    identity_permutation,
    packets_from_mapping,
    random_partial_permutation,
    random_permutation,
    rotation_permutation,
    transpose_permutation,
)


def assert_partial_permutation(packets, topology):
    sources = [p.source for p in packets]
    dests = [p.dest for p in packets]
    assert len(set(sources)) == len(sources)
    assert len(set(dests)) == len(dests)
    for p in packets:
        assert topology.contains(p.source) and topology.contains(p.dest)


class TestGenerators:
    def test_random_permutation_is_full(self):
        mesh = Mesh(8)
        packets = random_permutation(mesh, seed=0)
        assert len(packets) == 64
        assert_partial_permutation(packets, mesh)
        assert {p.dest for p in packets} == set(mesh.nodes())

    def test_random_permutation_seeded_reproducible(self):
        mesh = Mesh(8)
        a = random_permutation(mesh, seed=42)
        b = random_permutation(mesh, seed=42)
        assert [(p.source, p.dest) for p in a] == [(p.source, p.dest) for p in b]

    def test_random_permutation_accepts_generator(self):
        mesh = Mesh(6)
        rng = np.random.default_rng(7)
        packets = random_permutation(mesh, rng)
        assert_partial_permutation(packets, mesh)

    def test_partial_permutation_fraction(self):
        mesh = Mesh(10)
        packets = random_partial_permutation(mesh, 0.25, seed=1)
        assert len(packets) == 25
        assert_partial_permutation(packets, mesh)

    def test_partial_fraction_bounds(self):
        with pytest.raises(ValueError):
            random_partial_permutation(Mesh(4), 1.5)

    def test_identity(self):
        mesh = Mesh(5)
        packets = identity_permutation(mesh)
        assert all(p.source == p.dest for p in packets)

    def test_transpose(self):
        mesh = Mesh(6)
        packets = transpose_permutation(mesh)
        assert_partial_permutation(packets, mesh)
        for p in packets:
            assert p.dest == (p.source[1], p.source[0])

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose_permutation(Mesh(4, 6))

    def test_bit_reversal(self):
        mesh = Mesh(8)
        packets = bit_reversal_permutation(mesh)
        assert_partial_permutation(packets, mesh)
        by_source = {p.source: p.dest for p in packets}
        assert by_source[(1, 0)] == (4, 0)  # 001 -> 100
        assert by_source[(3, 6)] == (6, 3)  # 011->110, 110->011

    def test_bit_reversal_needs_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reversal_permutation(Mesh(6))

    def test_rotation(self):
        mesh = Mesh(5)
        packets = rotation_permutation(mesh, 2, 1)
        assert_partial_permutation(packets, mesh)
        by_source = {p.source: p.dest for p in packets}
        assert by_source[(4, 4)] == (1, 0)

    def test_works_on_torus(self):
        torus = Torus(8)
        packets = random_permutation(torus, seed=3)
        assert_partial_permutation(packets, torus)


class TestPacketsFromMapping:
    def test_stable_ids_regardless_of_order(self):
        a = packets_from_mapping([((1, 0), (2, 2)), ((0, 0), (3, 3))])
        b = packets_from_mapping([((0, 0), (3, 3)), ((1, 0), (2, 2))])
        assert [(p.pid, p.source, p.dest) for p in a] == [
            (p.pid, p.source, p.dest) for p in b
        ]

    def test_rejects_duplicate_source(self):
        with pytest.raises(ValueError, match="source"):
            packets_from_mapping([((0, 0), (1, 1)), ((0, 0), (2, 2))])

    def test_rejects_duplicate_destination(self):
        with pytest.raises(ValueError, match="destination"):
            packets_from_mapping([((0, 0), (1, 1)), ((2, 2), (1, 1))])

    def test_check_can_be_disabled(self):
        packets = packets_from_mapping(
            [((0, 0), (1, 1)), ((2, 2), (1, 1))], check_permutation=False
        )
        assert len(packets) == 2
