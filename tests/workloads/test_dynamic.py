"""Tests for Bernoulli dynamic traffic (Section 5's online setting)."""

import numpy as np
import pytest

from repro.mesh import Mesh, Simulator, Torus
from repro.routing import GreedyAdaptiveRouter
from repro.workloads import bernoulli_traffic


class TestBernoulliTraffic:
    def test_deterministic_in_seed(self):
        mesh = Mesh(5)
        a = bernoulli_traffic(mesh, 0.2, 10, seed=7)
        b = bernoulli_traffic(mesh, 0.2, 10, seed=7)
        assert [(p.pid, p.source, p.dest, p.injection_time) for p in a] == [
            (p.pid, p.source, p.dest, p.injection_time) for p in b
        ]

    def test_injection_times_within_horizon_and_sorted(self):
        mesh = Mesh(6)
        packets = bernoulli_traffic(mesh, 0.3, 12, seed=0)
        assert packets, "rate 0.3 over 12 steps on 36 nodes must inject"
        assert all(0 <= p.injection_time < 12 for p in packets)
        times = [p.injection_time for p in packets]
        assert times == sorted(times)
        assert [p.pid for p in packets] == list(range(len(packets)))

    def test_endpoints_live_on_the_topology(self):
        torus = Torus(4)
        for p in bernoulli_traffic(torus, 0.5, 8, seed=1):
            assert torus.contains(p.source) and torus.contains(p.dest)

    def test_rate_one_injects_everywhere_every_step(self):
        mesh = Mesh(3)
        packets = bernoulli_traffic(mesh, 1.0, 4, seed=0)
        assert len(packets) == 4 * mesh.num_nodes

    def test_expected_count_roughly_rate_horizon_nodes(self):
        mesh = Mesh(8)
        rate, horizon = 0.25, 40
        packets = bernoulli_traffic(mesh, rate, horizon, seed=3)
        expected = rate * horizon * mesh.num_nodes
        assert 0.7 * expected < len(packets) < 1.3 * expected

    def test_generator_instance_accepted(self):
        mesh = Mesh(4)
        rng = np.random.default_rng(9)
        first = bernoulli_traffic(mesh, 0.4, 5, seed=rng)
        second = bernoulli_traffic(mesh, 0.4, 5, seed=rng)
        # Same generator advances: the two batches differ.
        assert [(p.source, p.dest) for p in first] != [
            (p.source, p.dest) for p in second
        ]

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            bernoulli_traffic(Mesh(4), rate, 10)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_traffic(Mesh(4), 0.5, 0)

    def test_n2_traffic_routes_to_completion(self):
        """Smallest legal mesh: the workload drains under a bounded router."""
        mesh = Mesh(2)
        packets = bernoulli_traffic(mesh, 0.5, 6, seed=5)
        result = Simulator(mesh, GreedyAdaptiveRouter(2, "incoming"), packets).run(
            10_000
        )
        assert result.completed
