"""Unit tests for March, Sort-and-Smooth, and Balancing on small tiles."""

import pytest

from repro.mesh.packet import Packet
from repro.tiling.axes import Axes
from repro.tiling.geometry import Tile
from repro.tiling.phases import (
    collect_actives,
    run_balancing,
    run_march,
    run_sort_and_smooth,
)
from repro.tiling.state import ClassState, Occupancy, Section6Violation

N = 27
TILE = Tile(0, 0, 27)  # strip height 1
V = Axes(vertical=True)


def make_state(packets):
    occ = Occupancy()
    for p in packets:
        occ.add(p.source)
    return ClassState(N, False, False, packets, occ)


class TestCollectActives:
    def test_three_strips_away_is_active(self):
        state = make_state([Packet(0, (5, 0), (5, 3))])
        actives = collect_actives(state, TILE, V)
        assert actives == {0: 4}  # dest strip 4 (1-based)

    def test_two_strips_away_is_inactive(self):
        state = make_state([Packet(0, (5, 1), (5, 3))])
        assert collect_actives(state, TILE, V) == {}

    def test_destination_outside_tile_is_inactive(self):
        tile = Tile(0, 0, 27)
        state = make_state([Packet(0, (5, 0), (5, 30))])
        # dest outside the mesh-sized tile -> no participation
        state27 = ClassState(31, False, False, [Packet(0, (5, 0), (5, 30))], Occupancy())
        assert collect_actives(state27, tile, V) == {}

    def test_horizontal_axis(self):
        state = make_state([Packet(0, (0, 5), (9, 5))])
        actives = collect_actives(state, TILE, Axes(vertical=False))
        assert actives == {0: 10}


class TestMarch:
    def test_single_packet_marches_to_stop_strip(self):
        state = make_state([Packet(0, (5, 0), (5, 10))])  # dest strip 11
        actives = collect_actives(state, TILE, V)
        steps = run_march(state, TILE, V, actives)
        # strip height 1: stop strip is row 7 (strip 8 = 11 - 3).
        assert state.pos[0] == (5, 7)
        assert steps == 7

    def test_column_pipeline(self):
        """Packets destined for the same strip pile at the strip front."""
        packets = [Packet(i, (3, i), (3, 20)) for i in range(5)]  # dest strip 21
        state = make_state(packets)
        actives = collect_actives(state, TILE, V)
        run_march(state, TILE, V, actives)
        # All five stack in strip 18 (row 17) up to q, which is >> 5, so all
        # sit at row 17.
        assert all(state.pos[i] == (3, 17) for i in range(5))

    def test_refusal_caps_node_at_q(self):
        packets = [Packet(i, (3, i), (3, 20)) for i in range(6)]
        state = make_state(packets)
        actives = collect_actives(state, TILE, V)
        run_march(state, TILE, V, actives, q=4)
        rows = sorted(state.pos[i][1] for i in range(6))
        # Four fit at row 17; the remaining two stop at row 16 (refused).
        assert rows == [16, 16, 17, 17, 17, 17]

    def test_march_does_not_touch_inactive(self):
        state = make_state(
            [Packet(0, (3, 0), (3, 20)), Packet(1, (3, 5), (3, 6))]
        )
        actives = collect_actives(state, TILE, V)
        assert 1 not in actives
        run_march(state, TILE, V, actives)
        assert state.pos[1] == (3, 5)

    def test_lemma29_time_bound(self):
        """March duration stays under q*d for a dense instance."""
        packets = [Packet(i, (3, i), (3, 26)) for i in range(17)]
        state = make_state(packets)
        actives = collect_actives(state, TILE, V)
        steps = run_march(state, TILE, V, actives)
        assert steps <= 408 * TILE.strip_height


class TestSortAndSmooth:
    def test_layered_fill_figure6(self):
        """The counting rule reproduces Figure 6's layered arrangement."""
        tile = Tile(0, 0, 108)  # strip height 4
        state = ClassState(108, False, False, [], Occupancy())
        # Eight class-20 packets (dest strip 20) pre-marched into strip 17
        # (rows 64..67), piled at the strip front, with distinct horizontal
        # distances 1..8.
        packets = []
        for j in range(8):
            p = Packet(j, (10, 67), (10 + j + 1, 78))  # dest strip 20
            packets.append(p)
        occ = Occupancy()
        for p in packets:
            occ.add(p.source)
        state = ClassState(108, False, False, packets, occ)
        actives = {p.pid: 20 for p in packets}
        run_sort_and_smooth(state, tile, Axes(True), actives, parity=0)
        # Strip 18 is rows 68..71; t-th node from the north (row 71) holds
        # every t-th arrival.  Arrivals come sorted descending by east-to-go
        # (packets 7,6,5,...), so layer 1 = pids 7,6,5,4 top-down and
        # layer 2 = pids 3,2,1,0.
        rows = {pid: state.pos[pid][1] for pid in range(8)}
        assert rows[7] == 71 and rows[3] == 71
        assert rows[6] == 70 and rows[2] == 70
        assert rows[5] == 69 and rows[1] == 69
        assert rows[4] == 68 and rows[0] == 68

    def test_parity_split(self):
        """Odd-destination classes do not move in the even substep."""
        state = make_state([Packet(0, (5, 0), (5, 10))])  # dest strip 11 (odd)
        actives = collect_actives(state, TILE, V)
        run_march(state, TILE, V, actives)
        before = dict(state.pos)
        run_sort_and_smooth(state, TILE, V, actives, parity=0)
        assert state.pos == before
        run_sort_and_smooth(state, TILE, V, actives, parity=1)
        assert state.pos[0] == (5, 8)  # moved from strip 8 to strip 9

    def test_ends_in_strip_i_minus_2(self):
        packets = [Packet(i, (3, i), (3, 20)) for i in range(5)]
        state = make_state(packets)
        actives = collect_actives(state, TILE, V)
        run_march(state, TILE, V, actives)
        run_sort_and_smooth(state, TILE, V, actives, parity=(21 % 2))
        # dest strip 21 -> strip 19 (row 18) with strip height 1; all five
        # papers pile at the single node of the strip in this degenerate
        # d=1 case... the top node holds every packet.
        assert all(state.pos[i][1] == 18 for i in range(5))


class TestBalancing:
    def test_two_rule_spreads_overfull_node(self):
        # Three actives at one node, all wanting to go east.
        packets = [Packet(i, (2, 5), (10 + i, 8)) for i in range(3)]
        state = make_state(packets)
        actives = {p.pid: 9 for p in packets}
        steps = run_balancing(state, TILE, V, actives)
        assert steps >= 1
        from collections import Counter

        load = Counter(state.pos.values())
        assert max(load.values()) <= 2

    def test_farthest_moves_first(self):
        packets = [Packet(i, (2, 5), (4 + 3 * i, 8)) for i in range(3)]
        state = make_state(packets)
        actives = {p.pid: 9 for p in packets}
        run_balancing(state, TILE, V, actives)
        # pid 2 had farthest east to go; it is the one that moved.
        assert state.pos[2] == (3, 5)
        assert state.pos[0] == (2, 5) and state.pos[1] == (2, 5)

    def test_no_move_when_at_most_two(self):
        packets = [Packet(i, (2, 5), (10, 8 + i)) for i in range(2)]
        state = make_state(packets)
        actives = {p.pid: 9 for p in packets}
        assert run_balancing(state, TILE, V, actives) == 0

    def test_overshoot_raises(self):
        """Three actives with zero cross-distance would force an overshoot
        (impossible under Lemma 16; we synthesize it to check enforcement)."""
        packets = [Packet(i, (2, 5), (2, 8 + i)) for i in range(3)]
        state = make_state(packets)
        actives = {p.pid: 9 + i for i, p in enumerate(packets)}
        with pytest.raises(Section6Violation, match="overshoot"):
            run_balancing(state, TILE, V, actives)
