"""Unit tests for the vertical/horizontal axis adapter."""

from repro.mesh.packet import Packet
from repro.tiling.axes import Axes
from repro.tiling.geometry import Tile
from repro.tiling.state import ClassState, Occupancy


def make_state(packets, n=27):
    occ = Occupancy()
    for p in packets:
        occ.add(p.source)
    return ClassState(n, False, False, packets, occ)


class TestAxes:
    def test_vertical_main_is_y(self):
        v = Axes(vertical=True)
        assert v.main((3, 7)) == 7
        assert v.cross((3, 7)) == 3
        assert v.node(7, 3) == (3, 7)

    def test_horizontal_main_is_x(self):
        h = Axes(vertical=False)
        assert h.main((3, 7)) == 3
        assert h.cross((3, 7)) == 7
        assert h.node(3, 7) == (3, 7)

    def test_step_directions(self):
        assert Axes(True).step_main((2, 2)) == (2, 3)   # north
        assert Axes(True).step_cross((2, 2)) == (3, 2)  # east
        assert Axes(False).step_main((2, 2)) == (3, 2)  # east
        assert Axes(False).step_cross((2, 2)) == (2, 3) # north

    def test_node_main_cross_roundtrip(self):
        for vertical in (True, False):
            ax = Axes(vertical)
            for node in [(0, 0), (5, 9), (26, 13)]:
                assert ax.node(ax.main(node), ax.cross(node)) == node

    def test_strip_dispatch(self):
        tile = Tile(0, 0, 27)
        assert Axes(True).strip(tile, (5, 9)) == 10   # row strip
        assert Axes(False).strip(tile, (5, 9)) == 6   # column strip
        assert Axes(True).strip_bounds(tile, 10) == (9, 9)
        assert Axes(False).strip_bounds(tile, 6) == (5, 5)

    def test_to_go_dispatch(self):
        state = make_state([Packet(0, (2, 3), (7, 11))])
        assert Axes(True).main_to_go(state, 0) == 8    # north distance
        assert Axes(True).cross_to_go(state, 0) == 5   # east distance
        assert Axes(False).main_to_go(state, 0) == 5
        assert Axes(False).cross_to_go(state, 0) == 8

    def test_tile_cross_range_clips_to_mesh(self):
        tile = Tile(-9, 0, 27)
        assert list(Axes(True).tile_cross_range(tile, 27)) == list(range(0, 18))
        tile2 = Tile(18, 0, 27)
        assert list(Axes(True).tile_cross_range(tile2, 27)) == list(range(18, 27))
