"""Tests for ClassState: mirroring, minimality enforcement, occupancy."""

import pytest

from repro.mesh.packet import Packet
from repro.tiling.state import ClassState, Occupancy, Section6Violation


def make_state(packets, mirror_x=False, mirror_y=False, n=27):
    occ = Occupancy()
    for p in packets:
        if p.source != p.dest:
            occ.add(p.source)
    return ClassState(n, mirror_x, mirror_y, packets, occ), occ


class TestMirroring:
    def test_identity_for_ne(self):
        state, _ = make_state([Packet(0, (1, 2), (5, 9))])
        assert state.pos[0] == (1, 2)
        assert state.dest[0] == (5, 9)

    def test_nw_mirrors_x(self):
        # NW packet: moving west physically -> east canonically.
        state, _ = make_state([Packet(0, (20, 2), (5, 9))], mirror_x=True)
        assert state.pos[0] == (6, 2)
        assert state.dest[0] == (21, 9)
        assert state.east_to_go(0) == 15
        assert state.north_to_go(0) == 7

    def test_sw_mirrors_both(self):
        state, _ = make_state(
            [Packet(0, (20, 22), (5, 9))], mirror_x=True, mirror_y=True
        )
        assert state.east_to_go(0) == 15
        assert state.north_to_go(0) == 13

    def test_mirror_involution(self):
        state, _ = make_state([Packet(0, (0, 0), (1, 1))], mirror_x=True, mirror_y=True)
        for node in [(0, 0), (13, 5), (26, 26)]:
            assert state.to_physical(state.to_canonical(node)) == node


class TestMovement:
    def test_move_decrements_distance(self):
        state, _ = make_state([Packet(0, (1, 1), (4, 4))])
        state.move(0, (2, 1))
        assert state.pos[0] == (2, 1)

    def test_nonminimal_move_raises(self):
        state, _ = make_state([Packet(0, (1, 1), (4, 4))])
        with pytest.raises(Section6Violation, match="nonminimal"):
            state.move(0, (0, 1))

    def test_two_hop_move_raises(self):
        state, _ = make_state([Packet(0, (1, 1), (4, 4))])
        with pytest.raises(Section6Violation):
            state.move(0, (3, 1))

    def test_delivery_removes_packet(self):
        state, occ = make_state([Packet(0, (3, 4), (4, 4))])
        state.move(0, (4, 4))
        assert 0 in state.delivered
        assert state.undelivered == 0
        assert occ.counts == {}

    def test_delivered_at_source_never_enters(self):
        state, _ = make_state([Packet(0, (3, 3), (3, 3))])
        assert 0 in state.delivered
        assert not state.pos


class TestOccupancy:
    def test_max_load_tracks_peak(self):
        occ = Occupancy()
        occ.add((0, 0))
        occ.add((0, 0))
        occ.add((0, 0))
        occ.remove((0, 0))
        assert occ.max_load == 3
        assert occ.counts[(0, 0)] == 2

    def test_move_updates_physical_occupancy_under_mirror(self):
        occ = Occupancy()
        occ.add((26, 0))
        state = ClassState(27, True, False, [Packet(0, (26, 0), (0, 5))], occ)
        assert state.pos[0] == (0, 0)  # canonical
        state.move(0, (1, 0))  # canonical east = physical west
        assert occ.counts == {(25, 0): 1}
