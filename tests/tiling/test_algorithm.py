"""Integration tests for the full Section 6 algorithm (Theorems 20, 34)."""

import pytest

from repro.mesh import Mesh
from repro.tiling import Section6Router
from repro.tiling.state import Section6Violation
from repro.workloads import (
    bit_reversal_permutation,
    random_partial_permutation,
    random_permutation,
    rotation_permutation,
    transpose_permutation,
)


class TestValidation:
    def test_rejects_non_power_of_three(self):
        for n in (26, 28, 54, 100):
            with pytest.raises(ValueError, match="power of 3"):
                Section6Router(n)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            Section6Router(9)

    def test_accepts_powers_of_three(self):
        for n in (27, 81, 243, 729):
            Section6Router(n)


class TestDelivery:
    @pytest.mark.parametrize("n", [27, 81])
    def test_random_permutations_delivered(self, n):
        mesh = Mesh(n)
        for seed in range(3):
            result = Section6Router(n).route(random_permutation(mesh, seed=seed))
            assert result.completed
            assert result.delivered == result.total_packets

    @pytest.mark.parametrize(
        "workload",
        [
            transpose_permutation,
            lambda m: rotation_permutation(m, m.width // 2, m.height // 3),
            lambda m: random_partial_permutation(m, 0.3, seed=5),
        ],
        ids=["transpose", "rotation", "partial"],
    )
    def test_structured_workloads(self, workload):
        mesh = Mesh(27)
        result = Section6Router(27).route(workload(mesh))
        assert result.completed

    def test_identity_trivial(self):
        mesh = Mesh(27)
        from repro.workloads import identity_permutation

        result = Section6Router(27).route(identity_permutation(mesh))
        assert result.completed
        assert result.actual_steps >= 0
        assert result.max_node_load == 0


class TestTheorem34Bounds:
    @pytest.mark.parametrize("n", [27, 81])
    def test_scheduled_time_within_972n(self, n):
        mesh = Mesh(n)
        result = Section6Router(n).route(random_permutation(mesh, seed=0))
        assert result.scheduled_steps <= 972 * n
        assert result.actual_steps <= result.scheduled_steps

    def test_improved_schedule_within_564n(self):
        mesh = Mesh(81)
        result = Section6Router(81, improved=True).route(
            random_permutation(mesh, seed=0)
        )
        assert result.scheduled_steps <= 564 * 81

    @pytest.mark.parametrize("n", [27, 81])
    def test_queue_bound_834(self, n):
        mesh = Mesh(n)
        worst = 0
        for workload in (
            random_permutation(mesh, seed=1),
            transpose_permutation(mesh),
        ):
            result = Section6Router(n).route(workload)
            worst = max(worst, result.max_node_load)
        assert worst <= 834  # Lemma 28 / Theorem 34

    def test_base_case_within_lemma32(self):
        mesh = Mesh(27)
        result = Section6Router(27).route(random_permutation(mesh, seed=2))
        for steps in result.base_case_steps.values():
            assert steps <= 14

    def test_actual_time_linear_shape(self):
        """actual(81)/actual(27) stays well under the quadratic ratio 9."""
        times = {}
        for n in (27, 81):
            mesh = Mesh(n)
            result = Section6Router(n).route(random_permutation(mesh, seed=3))
            times[n] = result.actual_steps
        assert times[81] / times[27] < 7.0


class TestMinimality:
    def test_minimality_is_structurally_enforced(self):
        """Theorem 20: every move is checked by ClassState.move; a completed
        run certifies the whole execution was minimal adaptive."""
        mesh = Mesh(27)
        result = Section6Router(27).route(random_permutation(mesh, seed=4))
        assert result.completed


class TestPhaseInstrumentation:
    def test_phase_stats_recorded(self):
        mesh = Mesh(27)
        result = Section6Router(27).route(random_permutation(mesh, seed=0))
        assert result.phases
        # n = 27: one iteration (side 27, single... side==n -> 1 tiling),
        # two orientations, four classes = 8 subphases.
        assert len(result.phases) == 8
        for ph in result.phases:
            assert ph.actual_steps <= ph.scheduled_steps

    def test_phase_stats_disableable(self):
        mesh = Mesh(27)
        result = Section6Router(27, record_phases=False).route(
            random_permutation(mesh, seed=0)
        )
        assert not result.phases

    def test_iteration_structure_at_81(self):
        mesh = Mesh(81)
        result = Section6Router(81).route(random_permutation(mesh, seed=0))
        # side 81: 1 tiling x 2 orientations; side 27: 3 tilings x 2.
        per_class = [ph for ph in result.phases if ph.direction == "NE"]
        assert len(per_class) == 2 + 6
        sides = sorted({ph.tile_side for ph in per_class}, reverse=True)
        assert sides == [81, 27]


class TestDirectionClasses:
    def test_all_four_classes_exercised(self):
        mesh = Mesh(27)
        result = Section6Router(27).route(rotation_permutation(mesh, 13, 14))
        assert set(result.base_case_steps) == {"NE", "NW", "SE", "SW"}

    def test_single_class_workload(self):
        """A pure northeast shift exercises only the NE machinery."""
        mesh = Mesh(27)
        from repro.workloads import packets_from_mapping

        packets = packets_from_mapping(
            {(x, y): (x + 9, y + 9) for x in range(18) for y in range(18)}
        )
        result = Section6Router(27).route(packets)
        assert result.completed
        active_dirs = {ph.direction for ph in result.phases if ph.active_packets}
        assert active_dirs <= {"NE"}
