"""Heavier Sort-and-Smooth checks: layering at strip height 3 and the
merge sortedness under piled (post-March) starting states."""

from repro.mesh.packet import Packet
from repro.tiling.axes import Axes
from repro.tiling.geometry import Tile
from repro.tiling.phases import collect_actives, run_march, run_sort_and_smooth
from repro.tiling.state import ClassState, Occupancy


def make_state(packets, n=81):
    occ = Occupancy()
    for p in packets:
        occ.add(p.source)
    return ClassState(n, False, False, packets, occ)


class TestSortSmoothAtStripHeight3:
    def test_march_then_smooth_layers_balanced(self):
        """d = 3: pack 18 packets of one class into a column, march, then
        verify strip i-2 ends with a balanced (layered) distribution."""
        tile = Tile(0, 0, 81)  # strips of height 3
        dest_strip = 20  # rows 57..59
        # 18 active packets in column 10, distinct east-to-go distances.
        packets = [
            Packet(j, (10, j), (11 + j, 57 + j % 3)) for j in range(18)
        ]
        state = make_state(packets)
        actives = collect_actives(state, tile, Axes(True))
        assert len(actives) == 18
        run_march(state, tile, Axes(True), actives)
        # All marched into strip 17 (rows 48..50).
        for pid in actives:
            assert 48 <= state.pos[pid][1] <= 50
        run_sort_and_smooth(state, tile, Axes(True), actives, parity=0)
        # All now in strip 18 (rows 51..53), 6 per node (18 / 3 rows).
        from collections import Counter

        rows = Counter(state.pos[pid][1] for pid in actives)
        assert rows == {51: 6, 52: 6, 53: 6}

    def test_layering_sorted_by_cross_distance(self):
        """Within the smoothed strip, each node's packets are a stride-d
        slice of the descending east-to-go order (Figure 6's layers)."""
        tile = Tile(0, 0, 81)
        packets = [Packet(j, (10, j), (12 + j, 57)) for j in range(12)]
        state = make_state(packets)
        actives = collect_actives(state, tile, Axes(True))
        run_march(state, tile, Axes(True), actives)
        run_sort_and_smooth(state, tile, Axes(True), actives, parity=0)
        by_row: dict[int, list[int]] = {}
        for pid in actives:
            by_row.setdefault(state.pos[pid][1], []).append(
                state.east_to_go(pid)
            )
        # Descending global order 13..2 dealt top-down in layers of 3:
        # top row (53) gets ranks 1,4,7,10; next 2,5,8,11; next 3,6,9,12.
        ordered = sorted(
            (eg for values in by_row.values() for eg in values), reverse=True
        )
        for row, values in by_row.items():
            t = 53 - row + 1  # 1-based offset from the strip front
            expected = ordered[t - 1 :: 3]
            assert sorted(values, reverse=True) == expected, (row, values)
