"""Tests for tiles, tilings (Lemma 19), and strips."""

import pytest

from repro.tiling.geometry import (
    BASE_THRESHOLD,
    STRIPS,
    Tile,
    covering_tile_exists,
    strip_of,
    tilings_for_side,
)


class TestTile:
    def test_strip_height(self):
        assert Tile(0, 0, 27).strip_height == 1
        assert Tile(0, 0, 81).strip_height == 3

    def test_contains(self):
        t = Tile(0, 0, 27)
        assert t.contains((0, 0)) and t.contains((26, 26))
        assert not t.contains((27, 0))

    def test_virtual_tile_contains_negative(self):
        t = Tile(-9, -9, 27)
        assert t.contains((0, 0))
        assert t.contains((-1, -1))  # virtual area
        assert not t.contains((18, 18))

    def test_strip_indexing(self):
        t = Tile(0, 0, 81)  # strip height 3
        assert t.strip_of_y(0) == 1
        assert t.strip_of_y(2) == 1
        assert t.strip_of_y(3) == 2
        assert t.strip_of_y(80) == STRIPS

    def test_strip_bounds_roundtrip(self):
        t = Tile(-27, 0, 81)
        for s in (1, 13, 27):
            lo, hi = t.strip_bounds_y(s)
            assert hi - lo + 1 == t.strip_height
            assert t.strip_of_y(lo) == s and t.strip_of_y(hi) == s

    def test_strip_of_helper(self):
        t = Tile(0, 0, 27)
        assert strip_of(t, (5, 9), vertical=True) == 10
        assert strip_of(t, (5, 9), vertical=False) == 6


class TestTilings:
    def test_single_tiling_at_full_size(self):
        tilings = tilings_for_side(81, 81)
        assert len(tilings) == 1
        assert tilings[0] == [Tile(0, 0, 81)]

    def test_three_tilings_below_full_size(self):
        tilings = tilings_for_side(81, 27)
        assert len(tilings) == 3

    def test_tilings_partition_mesh(self):
        n = 81
        for tiles in tilings_for_side(n, 27):
            covered = {}
            for tile in tiles:
                for x in range(max(tile.x0, 0), min(tile.x0 + tile.side, n)):
                    for y in range(max(tile.y0, 0), min(tile.y0 + tile.side, n)):
                        assert (x, y) not in covered, "tiles overlap"
                        covered[(x, y)] = tile
            assert len(covered) == n * n, "tiling does not cover the mesh"

    def test_lemma19_covering_property(self):
        """Any two nodes within side/3 in both dims share a tile somewhere."""
        n, side = 81, 27
        probes = [
            ((0, 0), (8, 8)),
            ((26, 26), (34, 34)),  # straddles tiling-0 boundary
            ((40, 13), (48, 21)),
            ((72, 72), (80, 80)),
            ((9, 53), (17, 61)),
        ]
        for a, b in probes:
            assert covering_tile_exists(n, side, a, b), (a, b)

    def test_displacements_are_thirds(self):
        tilings = tilings_for_side(243, 81)
        origins = [sorted({t.x0 for t in tiles})[:2] for tiles in tilings]
        assert origins[0][0] - origins[1][0] == 27
        assert origins[1][0] - origins[2][0] == 27

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            tilings_for_side(81, 26)
