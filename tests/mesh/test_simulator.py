"""Unit tests for the synchronous simulator's model semantics."""

import pytest

from repro.mesh import (
    Mesh,
    Packet,
    QueueSpec,
    Simulator,
)
from repro.mesh.directions import Direction
from repro.mesh.errors import (
    InvalidScheduleError,
    NonMinimalMoveError,
    QueueOverflowError,
    SimulationLimitError,
)
from repro.mesh.interfaces import RoutingAlgorithm
from repro.routing import BoundedDimensionOrderRouter, DimensionOrderRouter


class AcceptAllDOR(DimensionOrderRouter):
    """Dimension-order variant that accepts everything (overflow-prone)."""

    name = "accept-all"

    def inqueue(self, ctx, offers):
        return list(offers)


class NonMinimalRouter(RoutingAlgorithm):
    """Schedules every packet on an unprofitable link (to test enforcement)."""

    name = "perverse"
    minimal = True  # declared minimal, behaves nonminimally -> must be caught

    def __init__(self):
        super().__init__(QueueSpec(4))

    def outqueue(self, ctx):
        chosen = {}
        for view in ctx.packets:
            for d in ctx.out_directions:
                if d not in view.profitable and d not in chosen:
                    chosen[d] = view
                    break
        return chosen

    def inqueue(self, ctx, offers):
        return list(offers)


class TestBasics:
    def test_packet_at_destination_delivered_at_step_zero(self):
        mesh = Mesh(4)
        sim = Simulator(mesh, DimensionOrderRouter(2), [Packet(0, (1, 1), (1, 1))])
        assert sim.done
        assert sim.delivery_times[0] == 0

    def test_single_packet_takes_exactly_distance_steps(self):
        mesh = Mesh(8)
        p = Packet(0, (0, 0), (5, 3))
        sim = Simulator(mesh, DimensionOrderRouter(2), [p])
        result = sim.run(max_steps=100)
        assert result.completed
        assert result.steps == mesh.distance((0, 0), (5, 3)) == 8
        assert result.delivery_times[0] == 8

    def test_dimension_order_path_row_first(self):
        mesh = Mesh(8)
        p = Packet(0, (0, 0), (3, 2))
        sim = Simulator(mesh, DimensionOrderRouter(2), [p])
        trace = [p.pos]
        while not sim.done:
            sim.step()
            trace.append(p.pos)
        assert trace == [
            (0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2),
        ]

    def test_duplicate_pid_rejected(self):
        mesh = Mesh(4)
        with pytest.raises(ValueError, match="duplicate"):
            Simulator(
                mesh,
                DimensionOrderRouter(2),
                [Packet(0, (0, 0), (1, 1)), Packet(0, (1, 0), (2, 2))],
            )

    def test_endpoint_outside_topology_rejected(self):
        mesh = Mesh(4)
        with pytest.raises(ValueError, match="outside"):
            Simulator(mesh, DimensionOrderRouter(2), [Packet(0, (0, 0), (9, 9))])

    def test_total_moves_equals_sum_of_distances_when_uncontended(self):
        mesh = Mesh(8)
        packets = [Packet(0, (0, 0), (4, 4)), Packet(1, (7, 7), (3, 3))]
        result = Simulator(mesh, DimensionOrderRouter(2), packets).run(100)
        assert result.total_moves == 8 + 8


class TestModelEnforcement:
    def test_queue_overflow_raises(self):
        mesh = Mesh(8)
        # Four packets converge on (1,1)'s tiny queue; accept-all overflows.
        packets = [
            Packet(0, (0, 1), (7, 1)),
            Packet(1, (1, 0), (1, 7)),
            Packet(2, (2, 1), (0, 1)),
            Packet(3, (1, 2), (1, 0)),
        ]
        sim = Simulator(mesh, AcceptAllDOR(1), packets)
        with pytest.raises(QueueOverflowError):
            sim.run(max_steps=10)

    def test_nonminimal_move_raises(self):
        mesh = Mesh(6)
        sim = Simulator(mesh, NonMinimalRouter(), [Packet(0, (2, 2), (4, 2))])
        with pytest.raises(NonMinimalMoveError):
            sim.step()

    def test_scheduling_foreign_packet_raises(self):
        mesh = Mesh(6)

        class Thief(DimensionOrderRouter):
            def outqueue(self, ctx):
                chosen = dict(super().outqueue(ctx))
                # Re-schedule the same view on a second outlink.
                if chosen:
                    d, v = next(iter(chosen.items()))
                    for other in ctx.out_directions:
                        if other != d:
                            chosen[other] = v
                            break
                return chosen

        sim = Simulator(mesh, Thief(2), [Packet(0, (2, 2), (4, 4))])
        with pytest.raises(InvalidScheduleError):
            sim.step()

    def test_run_raise_on_limit(self):
        mesh = Mesh(8)
        sim = Simulator(mesh, DimensionOrderRouter(2), [Packet(0, (0, 0), (7, 7))])
        with pytest.raises(SimulationLimitError):
            sim.run(max_steps=3, raise_on_limit=True)


class TestInterceptor:
    def test_interceptor_sees_schedule_and_can_exchange(self):
        mesh = Mesh(8)
        a = Packet(0, (0, 0), (5, 5))
        b = Packet(1, (0, 2), (6, 6))
        seen = []

        def interceptor(sim, schedule):
            seen.append([(mv.packet.pid, mv.src, mv.direction) for mv in schedule])
            if sim.time == 1:
                a.exchange_destinations(b)

        sim = Simulator(
            mesh, DimensionOrderRouter(2), [a, b], interceptor=interceptor
        )
        result = sim.run(max_steps=100)
        assert result.completed
        assert seen[0]  # schedules were visible
        assert a.dest == (6, 6) and b.dest == (5, 5)

    def test_adversary_breaking_minimality_is_caught(self):
        mesh = Mesh(8)
        a = Packet(0, (3, 0), (7, 0))  # eastbound
        b = Packet(1, (0, 3), (0, 7))  # northbound

        def bad_adversary(sim, schedule):
            # Swapping these destinations makes the scheduled moves
            # unprofitable; the simulator must detect it.
            a.exchange_destinations(b)

        sim = Simulator(mesh, DimensionOrderRouter(2), [a, b], interceptor=bad_adversary)
        with pytest.raises(NonMinimalMoveError):
            sim.step()


class TestDynamicInjection:
    def test_injection_time_delays_entry(self):
        mesh = Mesh(8)
        p = Packet(0, (0, 0), (3, 0), injection_time=5)
        sim = Simulator(mesh, DimensionOrderRouter(2), [p])
        result = sim.run(max_steps=100)
        assert result.completed
        # Enters at step 5, then needs 3 moves.
        assert result.delivery_times[0] == 5 + 3

    def test_injection_waits_for_queue_space(self):
        mesh = Mesh(8)
        # Fill (0,0) with a packet that cannot move (its outlink target is
        # full too), then inject another at the same node.
        blocker = Packet(0, (0, 0), (2, 0))
        plug = Packet(1, (1, 0), (3, 0))
        late = Packet(2, (0, 0), (0, 3), injection_time=1)
        sim = Simulator(mesh, DimensionOrderRouter(1), [blocker, plug, late])
        result = sim.run(max_steps=100)
        assert result.completed
        # late could not enter at step 1 (node full), so it finishes later
        # than the unobstructed 1 + 3 steps.
        assert result.delivery_times[2] > 4


class TestConfigurationSnapshot:
    def test_snapshot_stable_across_identical_runs(self):
        mesh = Mesh(8)

        def build():
            return [
                Packet(0, (0, 0), (5, 5)),
                Packet(1, (1, 0), (5, 6)),
                Packet(2, (0, 1), (6, 5)),
            ]

        sims = [
            Simulator(mesh, BoundedDimensionOrderRouter(2), build()) for _ in range(2)
        ]
        for _ in range(6):
            for s in sims:
                s.step()
            assert sims[0].configuration() == sims[1].configuration()

    def test_snapshot_reflects_exchange(self):
        mesh = Mesh(8)
        a, b = Packet(0, (0, 0), (5, 5)), Packet(1, (0, 1), (6, 6))
        sim = Simulator(mesh, BoundedDimensionOrderRouter(2), [a, b])
        before = sim.configuration()
        a.exchange_destinations(b)
        assert sim.configuration() != before


class TestSeries:
    def test_series_recording(self):
        mesh = Mesh(8)
        p = Packet(0, (0, 0), (4, 0))
        sim = Simulator(mesh, DimensionOrderRouter(2), [p], record_series=True)
        result = sim.run(max_steps=100)
        assert len(result.series) == result.steps
        assert result.series[-1].delivered_total == 1
        assert result.series[0].in_flight == 1

    def test_max_node_load_tracked(self):
        mesh = Mesh(8)
        packets = [
            Packet(0, (0, 1), (7, 1)),
            Packet(1, (1, 0), (1, 7)),
        ]
        result = Simulator(mesh, DimensionOrderRouter(4), packets).run(100)
        assert result.max_node_load >= 1
        assert result.max_queue_len <= 4
