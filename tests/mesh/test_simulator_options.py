"""Tests for less-traveled simulator options and queue-spec hooks."""

from repro.mesh import Mesh, Packet, QueueSpec, Simulator
from repro.mesh.directions import Direction
from repro.mesh.queues import default_incoming_initial_key
from repro.routing import BoundedDimensionOrderRouter, GreedyAdaptiveRouter
from repro.workloads import random_permutation


class TestValidateOff:
    def test_validate_false_matches_validated_run(self):
        """Disabling validation (benchmark hot path) must not change
        behaviour, only skip the checks."""
        mesh = Mesh(12)
        results = []
        for validate in (True, False):
            sim = Simulator(
                mesh,
                BoundedDimensionOrderRouter(2),
                random_permutation(mesh, seed=6),
                validate=validate,
            )
            results.append(sim.run(10_000))
        assert results[0].delivery_times == results[1].delivery_times
        assert results[0].max_queue_len == results[1].max_queue_len


class TestCustomInitialKey:
    def test_custom_initial_key_is_used(self):
        """An algorithm may override where injected packets wait."""
        seen = []

        def initial_key(profitable):
            seen.append(profitable)
            return default_incoming_initial_key(profitable)

        class Custom(GreedyAdaptiveRouter):
            def __init__(self):
                super().__init__(2, "incoming")
                self.queue_spec = QueueSpec(2, "incoming", initial_key=initial_key)

        mesh = Mesh(8)
        result = Simulator(
            mesh, Custom(), [Packet(0, (0, 0), (5, 5))]
        ).run(1000)
        assert result.completed
        assert seen and seen[0] == frozenset({Direction.N, Direction.E})


class TestRecordSeries:
    def test_series_and_link_loads_together(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            random_permutation(mesh, seed=1),
            record_series=True,
            record_link_loads=True,
        )
        result = sim.run(10_000)
        assert result.completed
        assert len(result.series) == result.steps
        # The series' move counts sum to the link-load total.
        assert sum(rec.moves for rec in result.series) == sum(
            sim.link_loads.values()
        )

    def test_in_flight_monotone_for_static_instances(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            random_permutation(mesh, seed=2),
            record_series=True,
        )
        result = sim.run(10_000)
        flights = [rec.in_flight for rec in result.series]
        assert all(a >= b for a, b in zip(flights, flights[1:]))
