"""Unit tests for mesh and torus topologies."""

import pytest

from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh, Torus


class TestMesh:
    def test_node_count(self):
        assert Mesh(5).num_nodes == 25
        assert Mesh(3, 7).num_nodes == 21

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Mesh(0)

    def test_contains(self):
        m = Mesh(4)
        assert m.contains((0, 0)) and m.contains((3, 3))
        assert not m.contains((4, 0))
        assert not m.contains((0, -1))

    def test_interior_degree_four(self):
        m = Mesh(5)
        assert len(m.neighbors((2, 2))) == 4
        assert m.out_directions((2, 2)) == (
            Direction.N,
            Direction.E,
            Direction.S,
            Direction.W,
        )

    def test_corner_degree_two(self):
        m = Mesh(5)
        assert set(m.out_directions((0, 0))) == {Direction.N, Direction.E}
        assert set(m.out_directions((4, 4))) == {Direction.S, Direction.W}

    def test_boundary_neighbor_none(self):
        m = Mesh(4)
        assert m.neighbor((0, 0), Direction.W) is None
        assert m.neighbor((0, 0), Direction.S) is None
        assert m.neighbor((3, 3), Direction.E) is None

    def test_distance_is_manhattan(self):
        m = Mesh(10)
        assert m.distance((0, 0), (9, 9)) == 18
        assert m.distance((2, 5), (7, 1)) == 9
        assert m.distance((4, 4), (4, 4)) == 0

    def test_diameter(self):
        assert Mesh(8).diameter == 14
        assert Mesh(3, 5).diameter == 6

    def test_profitable_northeast(self):
        m = Mesh(8)
        assert m.profitable_directions((1, 1), (5, 6)) == frozenset(
            {Direction.N, Direction.E}
        )

    def test_profitable_single_axis(self):
        m = Mesh(8)
        assert m.profitable_directions((1, 1), (1, 6)) == frozenset({Direction.N})
        assert m.profitable_directions((5, 1), (1, 1)) == frozenset({Direction.W})

    def test_profitable_at_destination_empty(self):
        m = Mesh(8)
        assert m.profitable_directions((3, 3), (3, 3)) == frozenset()

    def test_profitable_moves_reduce_distance(self):
        m = Mesh(6)
        for src in m.nodes():
            for dst in [(0, 0), (5, 5), (2, 4)]:
                for d in m.profitable_directions(src, dst):
                    nb = m.neighbor(src, d)
                    assert nb is not None
                    assert m.distance(nb, dst) == m.distance(src, dst) - 1

    def test_displacement(self):
        m = Mesh(8)
        assert m.displacement((1, 1), (5, 6)) == (4, 5)
        assert m.displacement((5, 6), (1, 1)) == (-4, -5)


class TestTorus:
    def test_wraparound_links(self):
        t = Torus(5)
        assert t.neighbor((0, 0), Direction.W) == (4, 0)
        assert t.neighbor((4, 4), Direction.E) == (0, 4)
        assert t.neighbor((2, 4), Direction.N) == (2, 0)

    def test_every_node_degree_four(self):
        t = Torus(4)
        for node in t.nodes():
            assert len(t.neighbors(node)) == 4

    def test_distance_uses_shorter_way(self):
        t = Torus(8)
        assert t.distance((0, 0), (7, 0)) == 1
        assert t.distance((0, 0), (4, 0)) == 4
        assert t.distance((0, 0), (5, 0)) == 3
        assert t.distance((1, 1), (7, 7)) == 4

    def test_diameter(self):
        assert Torus(8).diameter == 8
        assert Torus(7).diameter == 6

    def test_profitable_wraps(self):
        t = Torus(8)
        # (7,0) -> (0,0): east through the wrap is the short way.
        assert t.profitable_directions((7, 0), (0, 0)) == frozenset({Direction.E})
        # (0,0) -> (6,0): west through the wrap.
        assert t.profitable_directions((0, 0), (6, 0)) == frozenset({Direction.W})

    def test_profitable_halfway_tie_includes_both(self):
        t = Torus(8)
        dirs = t.profitable_directions((0, 0), (4, 0))
        assert dirs == frozenset({Direction.E, Direction.W})

    def test_profitable_moves_reduce_distance(self):
        t = Torus(6)
        for src in t.nodes():
            for dst in [(0, 0), (5, 5), (2, 4)]:
                for d in t.profitable_directions(src, dst):
                    nb = t.neighbor(src, d)
                    assert t.distance(nb, dst) == t.distance(src, dst) - 1

    def test_displacement_halfway_positive(self):
        t = Torus(8)
        dx, dy = t.displacement((0, 0), (4, 0))
        assert (dx, dy) == (4, 0)

    def test_axis_delta_halfway_positive_every_even_size(self):
        """Regression for the halfway tie-break on even sizes.

        ``_axis_delta`` once special-cased ``delta == size // 2`` in a
        dead ``elif`` branch; the simplification must keep reporting the
        tie as +size/2 (never -size/2) for every even size and origin."""
        for size in (2, 4, 6, 8, 10):
            half = size // 2
            for src in range(size):
                delta = Torus._axis_delta(src, (src + half) % size, size)
                assert delta == half

    def test_axis_delta_range_and_inverse(self):
        for size in (4, 5, 8):
            for src in range(size):
                for dst in range(size):
                    delta = Torus._axis_delta(src, dst, size)
                    assert -size // 2 < delta <= size // 2
                    assert (src + delta) % size == dst

    def test_halfway_on_both_axes(self):
        t = Torus(8)
        assert t.displacement((3, 5), (7, 1)) == (4, 4)
        assert t.distance((3, 5), (7, 1)) == 8
        assert t.profitable_directions((3, 5), (7, 1)) == frozenset(
            {Direction.N, Direction.E, Direction.S, Direction.W}
        )

    def test_submesh_center_matches_mesh(self):
        # Inside a small central window, torus geometry agrees with the mesh.
        t, m = Torus(16), Mesh(16)
        pts = [(6, 6), (7, 9), (9, 7), (8, 8)]
        for a in pts:
            for b in pts:
                assert t.distance(a, b) == m.distance(a, b)
                assert t.profitable_directions(a, b) == m.profitable_directions(a, b)
