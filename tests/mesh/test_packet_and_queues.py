"""Unit tests for packets, destination exchange, and queue specs."""

import pytest

from repro.mesh.directions import DIRECTIONS, Direction
from repro.mesh.packet import Packet
from repro.mesh.queues import CENTRAL, QueueSpec, default_incoming_initial_key


class TestPacket:
    def test_exchange_swaps_only_destinations(self):
        a = Packet(1, (0, 0), (5, 5), state=("a",))
        b = Packet(2, (1, 1), (6, 6), state=("b",))
        a.exchange_destinations(b)
        assert a.dest == (6, 6) and b.dest == (5, 5)
        assert a.source == (0, 0) and b.source == (1, 1)
        assert a.state == ("a",) and b.state == ("b",)
        assert a.pid == 1 and b.pid == 2

    def test_exchange_twice_restores(self):
        a = Packet(1, (0, 0), (5, 5))
        b = Packet(2, (1, 1), (6, 6))
        a.exchange_destinations(b)
        a.exchange_destinations(b)
        assert a.dest == (5, 5) and b.dest == (6, 6)

    def test_copy_is_independent(self):
        a = Packet(1, (0, 0), (5, 5), state=(1, 2))
        c = a.copy()
        c.dest = (9, 9)
        c.state = (3,)
        assert a.dest == (5, 5) and a.state == (1, 2)

    def test_pos_starts_at_source(self):
        assert Packet(0, (2, 3), (4, 4)).pos == (2, 3)


class TestQueueSpec:
    def test_central_single_key(self):
        spec = QueueSpec(3)
        assert spec.keys == (CENTRAL,)
        assert spec.node_capacity == 3
        assert spec.arrival_key(Direction.N) == CENTRAL
        assert spec.initial_key(frozenset({Direction.E})) == CENTRAL

    def test_incoming_four_keys(self):
        spec = QueueSpec(2, kind="incoming")
        assert spec.keys == DIRECTIONS
        assert spec.node_capacity == 8
        for d in DIRECTIONS:
            assert spec.arrival_key(d) == d

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            QueueSpec(0)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            QueueSpec(1, kind="sideways")

    def test_default_initial_key_horizontal_first(self):
        # An east-bound packet waits in the West queue (as if arriving
        # mid-row), matching the Theorem 15 organization.
        assert default_incoming_initial_key(frozenset({Direction.E})) == Direction.W
        assert default_incoming_initial_key(
            frozenset({Direction.E, Direction.N})
        ) == Direction.W
        assert default_incoming_initial_key(frozenset({Direction.W})) == Direction.E
        assert default_incoming_initial_key(frozenset({Direction.N})) == Direction.S
        assert default_incoming_initial_key(frozenset({Direction.S})) == Direction.N
