"""Unit tests for the array-backend step engine: dispatch and guardrails.

The lockstep suites prove the array engine *computes* the same thing as
the reference engine; these tests pin the dispatch contract around it --
when ``Simulator(engine="array")`` engages, when it silently falls back,
and how the backend refuses features it does not model instead of
guessing at them.
"""

import pytest

from repro.mesh import Mesh, Packet, Simulator, Torus
from repro.mesh.array_engine import ArraySimulator, ported_router_types
from repro.routing import (
    AlternatingAdaptiveRouter,
    BoundedDimensionOrderRouter,
    CreditAdaptiveRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
)
from repro.workloads import random_permutation


def make(engine="array", algorithm=None, topology=None, **kwargs):
    topology = topology if topology is not None else Mesh(6)
    algorithm = algorithm or BoundedDimensionOrderRouter(2)
    packets = random_permutation(topology, seed=0)
    return Simulator(topology, algorithm, packets, engine=engine, **kwargs)


class TestDispatch:
    def test_array_engine_engages_for_ported_routers(self):
        for algorithm in (
            BoundedDimensionOrderRouter(2),
            DimensionOrderRouter(4),
            HotPotatoRouter(),
            GreedyAdaptiveRouter(2, "incoming"),
            GreedyAdaptiveRouter(4, "central"),
            FarthestFirstRouter(2),
            FarthestFirstRouter(2, "central"),
            CreditAdaptiveRouter(2),
        ):
            sim = make(algorithm=algorithm)
            assert isinstance(sim, ArraySimulator)
            assert sim.engine_name == "array"

    def test_reference_is_the_default(self):
        sim = Simulator(Mesh(6), BoundedDimensionOrderRouter(2), [])
        assert not isinstance(sim, ArraySimulator)
        assert sim.engine_name == "reference"

    def test_torus_supported(self):
        sim = make(topology=Torus(6))
        assert sim.engine_name == "array"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            make(engine="simd")

    def test_unported_router_falls_back(self):
        sim = make(algorithm=AlternatingAdaptiveRouter(2))
        assert sim.engine_name == "reference"

    def test_router_subclass_falls_back(self):
        """A subclass may override any policy hook; the kernel only models
        the exact base class, so subclasses must take the reference path."""

        class Tweaked(BoundedDimensionOrderRouter):
            pass

        sim = make(algorithm=Tweaked(2))
        assert sim.engine_name == "reference"

    def test_interceptor_falls_back(self):
        sim = make(interceptor=lambda s, moves: None)
        assert sim.engine_name == "reference"

    def test_link_load_recording_falls_back(self):
        sim = make(record_link_loads=True)
        assert sim.engine_name == "reference"

    def test_ported_types_match_public_list(self):
        from repro.verify import ARRAY_PORTED, REGISTRY

        ported = {type(REGISTRY[name].factory(2, 0)) for name in ARRAY_PORTED}
        assert ported == set(ported_router_types())


class TestGuardrails:
    def test_drop_packet_unsupported(self):
        sim = make()
        with pytest.raises(NotImplementedError, match="reference"):
            sim.drop_packet(Packet(999, (0, 0), (1, 1)))

    def test_drop_pending_unsupported(self):
        sim = make()
        with pytest.raises(NotImplementedError, match="reference"):
            sim.drop_pending(999)

    def test_arbitrary_link_filter_refused_at_assignment(self):
        """Fault plans go through attach_fault_plan (vectorized path);
        an arbitrary scalar closure cannot be vectorized, so assigning
        one must fail fast, not explode mid-run at step() time."""
        sim = make()
        with pytest.raises(NotImplementedError, match="link filters"):
            sim.link_filter = lambda src, direction, time: True

    def test_clearing_link_filter_is_allowed(self):
        sim = make()
        sim.link_filter = None
        assert sim.link_filter is None

    def test_resilience_manager_refused_at_construction(self):
        from repro.faults import BernoulliLinkPlan, ResilienceManager

        sim = make()
        with pytest.raises(NotImplementedError, match="reference"):
            ResilienceManager(sim, BernoulliLinkPlan(0.9), timeout=8)

    def test_duplicate_pid_rejected_at_load(self):
        with pytest.raises(ValueError, match="duplicate"):
            Simulator(
                Mesh(4),
                BoundedDimensionOrderRouter(2),
                [Packet(0, (0, 0), (1, 1)), Packet(0, (2, 2), (3, 3))],
                engine="array",
            )

    def test_duplicate_pid_rejected_at_injection(self):
        sim = make()
        with pytest.raises(ValueError, match="duplicate"):
            sim.inject_packet(Packet(0, (0, 0), (1, 1)))


class TestEngineAccessors:
    def test_queue_occupancy_agrees_with_materialized_queues(self):
        sim = make()
        reference = Simulator(
            Mesh(6), BoundedDimensionOrderRouter(2), random_permutation(Mesh(6), seed=0)
        )
        for _ in range(5):
            sim.step()
            reference.step()
        for node, queues in reference.queues.items():
            for key, queue in queues.items():
                assert sim.queue_occupancy(node, key) == len(queue)
                assert reference.queue_occupancy(node, key) == len(queue)

    def test_queue_occupancy_empty_queue_is_zero(self):
        sim = make()
        reference = Simulator(Mesh(6), BoundedDimensionOrderRouter(2), [])
        assert sim.queue_occupancy((5, 5), 0) >= 0
        assert reference.queue_occupancy((5, 5), 0) == 0

    def test_run_result_matches_reference(self):
        topology = Mesh(6)
        array = make()
        reference = Simulator(
            topology, BoundedDimensionOrderRouter(2), random_permutation(topology, seed=0)
        )
        ra = array.run(10_000)
        rr = reference.run(10_000)
        assert (ra.completed, ra.steps, ra.total_moves) == (
            rr.completed,
            rr.steps,
            rr.total_moves,
        )
        assert ra.delivery_times == rr.delivery_times
        assert ra.counters == rr.counters
