"""Tests for the packet path tracer."""

from repro.mesh import Mesh, Packet, PathTracer, Simulator
from repro.routing import DimensionOrderRouter, GreedyAdaptiveRouter


class TestPathTracer:
    def test_records_full_dimension_order_path(self):
        mesh = Mesh(8)
        p = Packet(0, (0, 0), (3, 2))
        tracer = PathTracer()
        sim = Simulator(mesh, DimensionOrderRouter(2), [p], interceptor=tracer)
        sim.run(100)
        tracer.finalize(sim)
        assert tracer.paths[0] == [
            (0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2),
        ]
        assert tracer.hops(0) == mesh.distance((0, 0), (3, 2))

    def test_filter_restricts_tracing(self):
        mesh = Mesh(8)
        packets = [Packet(0, (0, 0), (4, 0)), Packet(1, (0, 1), (4, 1))]
        tracer = PathTracer(pids=[1])
        sim = Simulator(mesh, DimensionOrderRouter(2), packets, interceptor=tracer)
        sim.run(100)
        assert 0 not in tracer.paths
        assert 1 in tracer.paths

    def test_paths_are_minimal_for_minimal_router(self):
        mesh = Mesh(10)
        from repro.workloads import random_partial_permutation

        packets = random_partial_permutation(mesh, 0.3, seed=4)
        tracer = PathTracer()
        sim = Simulator(
            mesh, GreedyAdaptiveRouter(2, "incoming"), packets, interceptor=tracer
        )
        result = sim.run(20_000)
        tracer.finalize(sim)
        assert result.completed
        dests = {p.pid: p.dest for p in packets}
        for pid, path in tracer.paths.items():
            assert tracer.hops(pid) == mesh.distance(path[0], dests[pid])
            for a, b in zip(path, path[1:]):
                assert mesh.distance(a, b) == 1
                assert mesh.distance(b, dests[pid]) == mesh.distance(a, dests[pid]) - 1

    def test_chain_observes_adversary_retargets(self):
        from repro.core import AdaptiveLowerBoundConstruction
        from repro.core.adversary import AdaptiveAdversary

        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        packets = con.build_packets()
        adversary = AdaptiveAdversary(con.constants, con.geometry)
        tracer = PathTracer(chain=adversary)
        sim = Simulator(Mesh(60), factory(), packets, interceptor=tracer)
        sim.run_steps(con.constants.bound_steps)
        # The adversary performed exchanges, and the tracer saw the
        # corresponding destination changes.
        assert adversary.exchange_count > 0
        total_retargets = sum(len(v) for v in tracer.retargets.values())
        assert total_retargets >= adversary.exchange_count
