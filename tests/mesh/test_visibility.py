"""Tests for the destination-exchangeability enforcement (Lemma 10 in code).

The central design claim: a destination-exchangeable policy receives views
that are *identical* for two packets whose destinations were exchanged, as
long as their profitable-outlink sets agree.  These tests pin that down.
"""

import pytest

from repro.mesh.directions import Direction
from repro.mesh.packet import Packet
from repro.mesh.topology import Mesh
from repro.mesh.visibility import FullPacketView, Offer, PacketView


def view_fingerprint(v: PacketView) -> tuple:
    """Everything a destination-exchangeable policy can observe of a view."""
    return (v.key, v.source, v.state, v.profitable)


class TestPacketView:
    def test_exposes_no_destination_attribute(self):
        p = Packet(1, (0, 0), (5, 5))
        v = PacketView(p, frozenset({Direction.N, Direction.E}))
        assert not hasattr(v, "dest")
        assert not hasattr(v, "destination")
        assert not hasattr(v, "displacement")

    def test_slots_prevent_leak_via_dict(self):
        p = Packet(1, (0, 0), (5, 5))
        v = PacketView(p, frozenset())
        assert not hasattr(v, "__dict__")

    def test_state_writes_through(self):
        p = Packet(1, (0, 0), (5, 5), state=(0,))
        v = PacketView(p, frozenset())
        v.state = (1, 2)
        assert p.state == (1, 2)

    def test_lemma10_indistinguishability(self):
        """Exchanging destinations of two NE-bound packets in the (i-1)-box
        leaves every observable of their views unchanged (Lemma 10)."""
        mesh = Mesh(16)
        # Both in the 1-box region with destinations to the NE of it.
        x = Packet(7, (2, 3), (10, 12), state=("s", 0))
        xp = Packet(9, (4, 1), (14, 9), state=("t", 1))

        def views():
            return (
                view_fingerprint(
                    PacketView(x, mesh.profitable_directions(x.pos, x.dest))
                ),
                view_fingerprint(
                    PacketView(xp, mesh.profitable_directions(xp.pos, xp.dest))
                ),
            )

        before = views()
        x.exchange_destinations(xp)
        after = views()
        assert before == after

    def test_exchange_visible_through_full_view(self):
        """A full view (non-destination-exchangeable algorithm) does see it."""
        mesh = Mesh(16)
        x = Packet(7, (2, 3), (10, 12))
        xp = Packet(9, (2, 3), (14, 9))

        def full(p):
            return FullPacketView(
                p,
                mesh.profitable_directions(p.pos, p.dest),
                mesh.displacement(p.pos, p.dest),
            )

        before = (full(x).dest, full(x).displacement)
        x.exchange_destinations(xp)
        after = (full(x).dest, full(x).displacement)
        assert before != after


class TestOffer:
    def test_offer_fields(self):
        p = Packet(3, (1, 1), (5, 1))
        v = PacketView(p, frozenset({Direction.E}))
        off = Offer(v, Direction.W, (1, 1))
        assert off.view is v
        assert off.came_from is Direction.W
        assert off.sender == (1, 1)
