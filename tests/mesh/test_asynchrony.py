"""Tests for the asynchronous-links extension."""

import pytest

from repro.mesh import Mesh, Simulator
from repro.mesh.asynchrony import (
    ConservativeBoundedDimensionOrderRouter,
    make_async,
)
from repro.mesh.errors import QueueOverflowError
from repro.routing import BoundedDimensionOrderRouter, GreedyAdaptiveRouter, HotPotatoRouter
from repro.workloads import random_permutation


class TestMakeAsync:
    def test_validation(self):
        mesh = Mesh(4)
        sim = Simulator(mesh, GreedyAdaptiveRouter(2), [])
        with pytest.raises(ValueError):
            make_async(sim, 0.0)
        with pytest.raises(ValueError):
            make_async(sim, 1.5)

    def test_full_availability_is_identity(self):
        mesh = Mesh(10)
        base = Simulator(
            mesh, GreedyAdaptiveRouter(2, "incoming"), random_permutation(mesh, seed=0)
        ).run(10_000)
        flaky = make_async(
            Simulator(
                mesh, GreedyAdaptiveRouter(2, "incoming"), random_permutation(mesh, seed=0)
            ),
            1.0,
        ).run(10_000)
        assert base.delivery_times == flaky.delivery_times

    def test_reproducible_given_seed(self):
        mesh = Mesh(10)
        runs = []
        for _ in range(2):
            sim = make_async(
                Simulator(
                    mesh,
                    GreedyAdaptiveRouter(2, "incoming"),
                    random_permutation(mesh, seed=3),
                ),
                0.8,
                seed=42,
            )
            runs.append(sim.run(20_000))
        assert runs[0].delivery_times == runs[1].delivery_times


class TestSynchronyAssumptions:
    def test_theorem15_overflows_under_asynchrony(self):
        """The always-accept N/S rule is sound only because the synchronous
        model guarantees ejection; flaky links void the guarantee."""
        mesh = Mesh(16)
        sim = make_async(
            Simulator(
                mesh, BoundedDimensionOrderRouter(1), random_permutation(mesh, seed=0)
            ),
            0.9,
            seed=1,
        )
        with pytest.raises(QueueOverflowError):
            sim.run(5_000)

    def test_conservative_variant_is_safe_and_completes(self):
        mesh = Mesh(16)
        for avail in (0.9, 0.7):
            sim = make_async(
                Simulator(
                    mesh,
                    ConservativeBoundedDimensionOrderRouter(1),
                    random_permutation(mesh, seed=0),
                ),
                avail,
                seed=1,
            )
            result = sim.run(50_000)
            assert result.completed
            assert result.max_queue_len <= 1

    def test_adaptive_incoming_is_robust(self):
        mesh = Mesh(16)
        sim = make_async(
            Simulator(
                mesh,
                GreedyAdaptiveRouter(2, "incoming"),
                random_permutation(mesh, seed=0),
            ),
            0.7,
            seed=2,
        )
        result = sim.run(50_000)
        assert result.completed

    def test_hot_potato_bufferless_guarantee_breaks(self):
        """Deflection routing *requires* draining every packet every step;
        down outlinks make that impossible and the node overflows."""
        mesh = Mesh(16)
        sim = make_async(
            Simulator(mesh, HotPotatoRouter(), random_permutation(mesh, seed=0)),
            0.6,
            seed=3,
        )
        with pytest.raises(QueueOverflowError):
            sim.run(5_000)

    def test_slowdown_grows_as_availability_drops(self):
        mesh = Mesh(12)
        steps = {}
        for avail in (1.0, 0.8, 0.6):
            sim = make_async(
                Simulator(
                    mesh,
                    GreedyAdaptiveRouter(2, "incoming"),
                    random_permutation(mesh, seed=5),
                ),
                avail,
                seed=4,
            )
            result = sim.run(50_000)
            assert result.completed
            steps[avail] = result.steps
        assert steps[0.6] > steps[1.0]
