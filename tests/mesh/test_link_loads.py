"""Tests for per-link load recording."""

from repro.mesh import Mesh, Packet, Simulator
from repro.mesh.directions import Direction
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation


class TestLinkLoads:
    def test_disabled_by_default(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(2), [Packet(0, (0, 0), (4, 0))]
        )
        sim.run(100)
        assert sim.link_loads == {}

    def test_single_packet_path_recorded(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            [Packet(0, (0, 0), (3, 2))],
            record_link_loads=True,
        )
        sim.run(100)
        assert sim.link_loads == {
            ((0, 0), Direction.E): 1,
            ((1, 0), Direction.E): 1,
            ((2, 0), Direction.E): 1,
            ((3, 0), Direction.N): 1,
            ((3, 1), Direction.N): 1,
        }

    def test_total_equals_total_moves(self):
        mesh = Mesh(10)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            random_permutation(mesh, seed=0),
            record_link_loads=True,
        )
        result = sim.run(10_000)
        assert result.completed
        assert sum(sim.link_loads.values()) == result.total_moves

    def test_utilization_bounded_by_steps(self):
        """No link carries more than one packet per step."""
        mesh = Mesh(10)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            random_permutation(mesh, seed=1),
            record_link_loads=True,
        )
        result = sim.run(10_000)
        assert max(sim.link_loads.values()) <= result.steps
