"""Cross-validation of topology geometry against networkx."""

import networkx as nx
import pytest

from repro.mesh.graph_export import bisection_width, to_networkx
from repro.mesh.topology import Mesh, Torus


class TestToNetworkx:
    def test_mesh_edge_count(self):
        g = to_networkx(Mesh(5))
        assert g.number_of_nodes() == 25
        assert g.number_of_edges() == 2 * 5 * 4  # 2 n (n-1)

    def test_torus_edge_count(self):
        g = to_networkx(Torus(5))
        assert g.number_of_edges() == 2 * 25  # 2 n^2

    @pytest.mark.parametrize("topo_cls", [Mesh, Torus])
    def test_distances_match_reference(self, topo_cls):
        """Our closed-form distance equals networkx shortest paths."""
        topo = topo_cls(6)
        g = to_networkx(topo)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for a in topo.nodes():
            for b in topo.nodes():
                assert topo.distance(a, b) == lengths[a][b], (a, b)

    @pytest.mark.parametrize("topo_cls,n", [(Mesh, 7), (Torus, 7), (Torus, 8)])
    def test_diameter_matches_reference(self, topo_cls, n):
        topo = topo_cls(n)
        g = to_networkx(topo)
        assert topo.diameter == nx.diameter(g)

    def test_mesh_connected(self):
        assert nx.is_connected(to_networkx(Mesh(4, 9)))


class TestBisection:
    def test_mesh_bisection(self):
        assert bisection_width(Mesh(8)) == 8

    def test_torus_bisection_doubles(self):
        assert bisection_width(Torus(8)) == 16

    def test_matches_min_cut_reference(self):
        """The midline crossing count is a valid (and for the mesh, the
        minimum) balanced cut -- cross-check the edge count via networkx."""
        topo = Mesh(6)
        g = to_networkx(topo)
        left = {(x, y) for x, y in topo.nodes() if x < 3}
        cut = nx.cut_size(g, left)
        assert cut == bisection_width(topo)
