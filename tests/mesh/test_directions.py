"""Unit tests for compass directions."""

from repro.mesh.directions import DIRECTIONS, HORIZONTAL, VERTICAL, Direction


def test_direction_vectors():
    assert (Direction.N.dx, Direction.N.dy) == (0, 1)
    assert (Direction.S.dx, Direction.S.dy) == (0, -1)
    assert (Direction.E.dx, Direction.E.dy) == (1, 0)
    assert (Direction.W.dx, Direction.W.dy) == (-1, 0)


def test_opposites_are_involutive():
    for d in DIRECTIONS:
        assert d.opposite.opposite is d
        assert d.opposite is not d


def test_opposite_pairs():
    assert Direction.N.opposite is Direction.S
    assert Direction.E.opposite is Direction.W


def test_horizontal_vertical_partition():
    assert set(HORIZONTAL) | set(VERTICAL) == set(DIRECTIONS)
    assert not set(HORIZONTAL) & set(VERTICAL)
    for d in HORIZONTAL:
        assert d.is_horizontal and not d.is_vertical
    for d in VERTICAL:
        assert d.is_vertical and not d.is_horizontal


def test_step_arithmetic():
    assert Direction.N.step((3, 4)) == (3, 5)
    assert Direction.W.step((3, 4)) == (2, 4)


def test_step_then_opposite_returns():
    node = (5, 7)
    for d in DIRECTIONS:
        assert d.opposite.step(d.step(node)) == node


def test_deterministic_sort_order():
    assert sorted(reversed(DIRECTIONS)) == [
        Direction.N,
        Direction.E,
        Direction.S,
        Direction.W,
    ]
