"""Tests for the campaign runner: pooling, caching, failure capture.

The determinism regression required by the paper-reproduction contract
lives here: the same ``TrialSpec`` executed serially, inline, and via the
worker pool must yield identical metrics, and the stored ``results.jsonl``
must be byte-identical regardless of worker count.
"""

import pytest

from repro.harness import (
    CampaignSpec,
    ProgressReporter,
    TrialSpec,
    execute_trial,
    run_campaign,
)
from repro.harness.runner import TrialTimeoutError, _alarm, _run_one


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    """Isolate cache keys from the live source hash."""
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-version")


def small_campaign(name="pool-demo"):
    return CampaignSpec(
        name=name,
        trials=[
            TrialSpec(kind="route", n=8, k=2, algorithm="bounded-dor", seed=0),
            TrialSpec(
                kind="route", n=8, k=2, algorithm="greedy-adaptive",
                queues="incoming", seed=1, max_steps=20000,
            ),
            TrialSpec(
                kind="route", n=8, k=2, algorithm="dor", workload="transpose",
                max_steps=2000,
            ),
            TrialSpec(kind="sort_route", n=6, seed=3),
        ],
    )


class TestDeterminism:
    def test_serial_and_pool_runs_agree(self, tmp_path):
        """Satellite: same TrialSpec serial vs pool -> identical results."""
        campaign = small_campaign()
        serial = run_campaign(
            campaign, workers=1, base_dir=tmp_path / "serial", progress=False
        )
        pooled = run_campaign(
            campaign, workers=3, base_dir=tmp_path / "pooled", progress=False
        )
        for a, b in zip(serial.results, pooled.results):
            assert a.status == b.status == "ok"
            assert a.metrics == b.metrics
            assert a.key == b.key
        # Direct inline execution agrees too.
        for trial, result in zip(campaign.trials, serial.results):
            assert execute_trial(trial) == result.metrics

    def test_results_file_byte_identical_across_worker_counts(self, tmp_path):
        campaign = small_campaign()
        serial = run_campaign(
            campaign, workers=1, base_dir=tmp_path / "serial", progress=False
        )
        pooled = run_campaign(
            campaign, workers=4, base_dir=tmp_path / "pooled", progress=False
        )
        assert serial.results_path.read_bytes() == pooled.results_path.read_bytes()


class TestCachingAndResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        campaign = small_campaign()
        first = run_campaign(campaign, base_dir=tmp_path, progress=False)
        assert first.cached == 0
        second = run_campaign(campaign, base_dir=tmp_path, progress=False)
        assert second.cached == len(campaign.trials)
        assert all(t["cached"] for t in second.manifest["trials"])
        assert [r.metrics for r in first.results] == [r.metrics for r in second.results]

    def test_fresh_ignores_cache(self, tmp_path):
        campaign = small_campaign()
        run_campaign(campaign, base_dir=tmp_path, progress=False)
        again = run_campaign(campaign, base_dir=tmp_path, progress=False, fresh=True)
        assert again.cached == 0

    def test_partial_cache_resumes(self, tmp_path):
        """An interrupted campaign re-runs only the missing trials."""
        campaign = small_campaign()
        full = run_campaign(campaign, base_dir=tmp_path, progress=False)
        from repro.harness import ResultStore

        ResultStore(tmp_path).evict(full.results[1].key)
        resumed = run_campaign(campaign, base_dir=tmp_path, progress=False)
        assert resumed.cached == len(campaign.trials) - 1
        assert [r.metrics for r in resumed.results] == [r.metrics for r in full.results]

    def test_code_version_change_invalidates_cache(self, tmp_path, monkeypatch):
        campaign = small_campaign()
        run_campaign(campaign, base_dir=tmp_path, progress=False)
        monkeypatch.setenv("REPRO_CODE_VERSION", "new-version")
        rerun = run_campaign(campaign, base_dir=tmp_path, progress=False)
        assert rerun.cached == 0


class TestFailureCapture:
    def test_crashing_trial_records_error_not_crash(self, tmp_path):
        # n=27 is not a power of two-ish constraint; Section6 needs a power
        # of 3 >= 27, so n=12 raises inside the worker.
        campaign = CampaignSpec(
            name="fail-demo",
            trials=[
                TrialSpec(kind="section6", n=12),
                TrialSpec(kind="route", n=8, algorithm="bounded-dor", k=2),
            ],
        )
        run = run_campaign(campaign, workers=2, base_dir=tmp_path, progress=False)
        assert run.failed == 1 and run.ok == 1
        failed = run.results[0]
        assert failed.status == "error"
        assert "ValueError" in failed.error
        assert failed.metrics is None
        # Failures are never cached: a re-run retries them.
        again = run_campaign(campaign, base_dir=tmp_path, progress=False)
        assert again.results[0].cached is False
        assert again.results[1].cached is True

    def test_timeout_records_timeout_status(self, tmp_path):
        # A full permutation at n=24 takes well over 5 ms of wall time.
        campaign = CampaignSpec(
            name="timeout-demo",
            trials=[TrialSpec(kind="lower_bound", n=120, construction="adaptive")],
            timeout_s=0.005,
        )
        run = run_campaign(campaign, base_dir=tmp_path, progress=False)
        assert run.results[0].status == "timeout"
        assert "exceeded" in run.results[0].error

    def test_alarm_context_raises_and_restores(self):
        with pytest.raises(TrialTimeoutError):
            with _alarm(0.01):
                while True:
                    pass

    def test_worker_entrypoint_reports_wall_time(self):
        spec = TrialSpec(kind="route", n=8, algorithm="bounded-dor", k=2)
        index, status, metrics, error, wall = _run_one((5, spec.canonical(), None))
        assert index == 5 and status == "ok" and error is None
        assert metrics["completed"] and wall >= 0


class TestTelemetry:
    def test_reporter_summary_counts(self, tmp_path):
        campaign = small_campaign()
        reporter = ProgressReporter(len(campaign.trials), enabled=False)
        run_campaign(campaign, base_dir=tmp_path, progress=False, reporter=reporter)
        summary = reporter.summary()
        assert summary["ok"] == len(campaign.trials)
        assert summary["cached"] == 0
        assert summary["max_queue_len"] >= 1
        assert run_campaign(
            campaign, base_dir=tmp_path, progress=False
        ).manifest["telemetry"]["cached"] == len(campaign.trials)

    def test_progress_lines_stream_to_given_stream(self, tmp_path):
        import io

        campaign = small_campaign()
        stream = io.StringIO()
        reporter = ProgressReporter(len(campaign.trials), stream=stream)
        run_campaign(campaign, base_dir=tmp_path, reporter=reporter)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == len(campaign.trials)
        assert lines[0].startswith("[1/4]") and lines[-1].startswith("[4/4]")

    def test_invalid_worker_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(small_campaign(), workers=0, base_dir=tmp_path)
