"""Tests for the content-addressed result store."""

import json

import pytest

from repro.harness import ResultStore


def record(key):
    return {"key": key, "spec": {"kind": "route"}, "metrics": {"steps": 7}}


class TestCache:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("abc", record("abc"))
        assert store.get("abc") == record("abc")

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("nope") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("abc", record("abc"))
        store.cache_path("abc").write_text("{truncated")
        assert store.get("abc") is None

    def test_mismatched_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("abc", record("OTHER"))
        assert store.get("abc") is None

    def test_evict(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("abc", record("abc"))
        store.evict("abc")
        assert store.get("abc") is None
        store.evict("abc")  # idempotent


class TestCampaignArtifacts:
    def test_results_round_trip_and_canonical_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        rows = [{"index": 0, "b": 2, "a": 1}, {"index": 1, "a": None}]
        path = store.write_results("demo", rows)
        assert store.read_results("demo") == rows
        # Canonical JSONL: sorted keys, compact separators, one row per line.
        assert path.read_text() == '{"a":1,"b":2,"index":0}\n{"a":null,"index":1}\n'

    def test_read_results_missing_campaign(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="run it first"):
            ResultStore(tmp_path).read_results("ghost")

    def test_manifest_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = {"name": "demo", "trials": []}
        path = store.write_manifest("demo", manifest)
        assert store.read_manifest("demo") == manifest
        assert json.loads(path.read_text()) == manifest

    def test_list_campaigns_skips_cache_dir(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("abc", record("abc"))
        store.write_manifest("beta", {"name": "beta"})
        store.write_manifest("alpha", {"name": "alpha"})
        (tmp_path / "stray").mkdir()
        assert store.list_campaigns() == ["alpha", "beta"]
