"""Tests for the declarative campaign spec layer."""

import json

import pytest

from repro.harness import CampaignSpec, TrialSpec, code_version, trial_key
from repro.harness.specs import expand_grid


class TestTrialSpec:
    def test_defaults_and_validation(self):
        spec = TrialSpec(kind="route", n=8, algorithm="bounded-dor")
        spec.validate()
        assert spec.k == 1 and spec.seed == 0 and spec.workload == "random"

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="telepathy", n=8),
            dict(kind="route", n=8, algorithm="psychic"),
            dict(kind="route", n=1, algorithm="dor"),
            dict(kind="route", n=8, algorithm="dor", workload="mystery"),
            dict(kind="route", n=8, algorithm="dor", queues="sideways"),
            dict(kind="route", n=8, algorithm="dor", availability=0.0),
            dict(kind="lower_bound", n=60, construction="vibes"),
            dict(kind="lower_bound", n=60, construction="dor", algorithm="greedy-adaptive"),
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            TrialSpec.from_dict(bad)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown TrialSpec fields"):
            TrialSpec.from_dict({"kind": "route", "n": 8, "algorithm": "dor", "spin": 1})

    def test_round_trip(self):
        spec = TrialSpec(kind="lower_bound", n=60, construction="adaptive", label="x")
        again = TrialSpec.from_dict(spec.to_dict())
        assert again == spec


class TestEngineField:
    def test_engine_defaults_to_reference(self):
        spec = TrialSpec(kind="route", n=8, algorithm="bounded-dor")
        spec.validate()
        assert spec.engine == "reference"

    def test_array_engine_accepted(self):
        spec = TrialSpec(kind="bench", n=8, algorithm="bounded-dor", engine="array")
        spec.validate()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            TrialSpec.from_dict(
                dict(kind="route", n=8, algorithm="dor", engine="simd")
            )

    def test_array_engine_accepts_degraded_links(self):
        # Fault plans run vectorized on the array backend now, so the old
        # array+availability rejection is gone.
        spec = TrialSpec.from_dict(
            dict(
                kind="route", n=8, algorithm="bounded-dor",
                engine="array", availability=0.9,
            )
        )
        spec.validate()

    def test_engine_affects_cache_key(self):
        reference = TrialSpec(kind="bench", n=8, algorithm="bounded-dor")
        array = TrialSpec(kind="bench", n=8, algorithm="bounded-dor", engine="array")
        assert trial_key(reference, "v") != trial_key(array, "v")


class TestFaultsSpec:
    def test_faults_kind_accepts_resilience_algorithms(self):
        for algorithm in ("conservative-bounded-dor", "fault-reroute", "bounded-dor"):
            TrialSpec(
                kind="faults", n=8, k=2, algorithm=algorithm, availability=0.8
            ).validate()

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="faults", n=8, algorithm="psychic"),
            dict(kind="faults", n=8, algorithm="bounded-dor", workload="mystery"),
            # The reroute adapter's excursion rectangle is undefined on a
            # wrapping topology.
            dict(kind="faults", n=8, algorithm="fault-reroute", torus=True),
            dict(kind="faults", n=8, algorithm="bounded-dor", retransmit_timeout=-1),
            dict(kind="faults", n=8, algorithm="bounded-dor", max_retransmits=-1),
            dict(kind="faults", n=8, algorithm="bounded-dor", mttf=-5, mttr=10),
            # mttf/mttr define one renewal process; one without the other
            # is a half-specified plan.
            dict(kind="faults", n=8, algorithm="bounded-dor", mttf=100),
            dict(kind="faults", n=8, algorithm="bounded-dor", mttr=10),
        ],
    )
    def test_invalid_faults_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            TrialSpec.from_dict(bad)

    def test_fault_fields_affect_key(self):
        base = TrialSpec(kind="faults", n=8, algorithm="bounded-dor")
        variants = [
            TrialSpec(kind="faults", n=8, algorithm="bounded-dor", retransmit_timeout=50),
            TrialSpec(kind="faults", n=8, algorithm="bounded-dor", mttf=100, mttr=10),
            TrialSpec(kind="faults", n=8, algorithm="bounded-dor", max_retransmits=5),
        ]
        keys = {trial_key(s) for s in [base, *variants]}
        assert len(keys) == len(variants) + 1


class TestTrialKey:
    def test_label_does_not_affect_key(self):
        a = TrialSpec(kind="route", n=8, algorithm="dor", label="one")
        b = TrialSpec(kind="route", n=8, algorithm="dor", label="two")
        assert trial_key(a) == trial_key(b)

    def test_parameters_affect_key(self):
        a = TrialSpec(kind="route", n=8, algorithm="dor", seed=0)
        b = TrialSpec(kind="route", n=8, algorithm="dor", seed=1)
        assert trial_key(a) != trial_key(b)

    def test_code_version_affects_key(self):
        spec = TrialSpec(kind="route", n=8, algorithm="dor")
        assert trial_key(spec, "v1") != trial_key(spec, "v2")

    def test_env_override_pins_version(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        assert code_version() == "pinned"


class TestGridExpansion:
    def test_cartesian_order_is_field_order(self):
        trials = expand_grid(
            {"kind": "route", "algorithm": "dor", "n": [8, 12], "k": [1, 2]}
        )
        assert [(t.n, t.k) for t in trials] == [(8, 1), (8, 2), (12, 1), (12, 2)]

    def test_seeds_shorthand(self):
        trials = expand_grid({"kind": "route", "algorithm": "dor", "n": 8, "seeds": 3})
        assert [t.seed for t in trials] == [0, 1, 2]

    def test_seed_and_seeds_conflict(self):
        with pytest.raises(ValueError, match="both 'seed' and 'seeds'"):
            expand_grid({"kind": "route", "algorithm": "dor", "n": 8, "seed": 1, "seeds": 2})


class TestCampaignSpec:
    def test_from_file_expands_sweep(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(
            json.dumps(
                {
                    "name": "demo",
                    "trials": [{"kind": "route", "algorithm": "dor", "n": 8}],
                    "sweep": [{"kind": "route", "algorithm": "bounded-dor", "n": [8, 12]}],
                }
            )
        )
        campaign = CampaignSpec.from_file(path)
        assert [t.algorithm for t in campaign.trials] == ["dor", "bounded-dor", "bounded-dor"]
        assert len(campaign.keys()) == 3

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="malformed campaign spec"):
            CampaignSpec.from_file(path)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="no trials"):
            CampaignSpec.from_dict({"name": "empty"})

    def test_unsafe_name_rejected(self):
        with pytest.raises(ValueError, match="filesystem-safe"):
            CampaignSpec.from_dict(
                {"name": "../oops", "trials": [{"kind": "route", "algorithm": "dor", "n": 8}]}
            )

    def test_checked_in_specs_load(self):
        import pathlib

        specs_dir = pathlib.Path(__file__).parents[2] / "benchmarks" / "specs"
        for path in sorted(specs_dir.glob("*.json")):
            campaign = CampaignSpec.from_file(path)
            assert campaign.trials, path
