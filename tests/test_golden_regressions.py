"""Golden regression tests: pinned end-to-end numbers.

Every algorithm here is deterministic, so exact step counts and bound
values are stable release artifacts.  If a refactor changes any of these
numbers, that is a *behavioural* change and must be deliberate (update the
pin in the same change that explains why).
"""

from repro.core import AdaptiveLowerBoundConstruction, replay_constructed_permutation
from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
)
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.mesh import Mesh, Simulator
from repro.routing import (
    BoundedDimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
)
from repro.tiling import Section6Router
from repro.workloads import random_permutation, transpose_permutation


class TestGoldenConstants:
    def test_adaptive_constants_n216_k1(self):
        c = AdaptiveConstants.choose(216, 1)
        assert (c.cn, c.dn, c.p, c.l_floor, c.bound_steps) == (36, 86, 170, 3, 258)

    def test_adaptive_constants_n120_k1(self):
        c = AdaptiveConstants.choose(120, 1)
        assert (c.cn, c.dn, c.p, c.l_floor, c.bound_steps) == (20, 48, 94, 2, 96)

    def test_dor_constants_n60_k4(self):
        c = DimensionOrderConstants.choose(60, 4)
        assert (c.cn, c.dn, c.p, c.l_floor) == (5, 24, 49, 5)

    def test_ff_constants_n60_k1(self):
        c = FarthestFirstConstants.choose(60, 1)
        assert (c.cn, c.dn, c.p, c.l_floor) == (7, 24, 45, 9)


class TestGoldenRuns:
    def test_bounded_dor_transpose_16(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, BoundedDimensionOrderRouter(1), transpose_permutation(mesh)
        ).run(10_000)
        assert (result.completed, result.steps) == (True, 44)

    def test_farthest_first_random_16(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, FarthestFirstRouter(2), random_permutation(mesh, seed=0)
        ).run(10_000)
        assert (result.completed, result.steps) == (True, 28)

    def test_hot_potato_random_16(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, HotPotatoRouter(), random_permutation(mesh, seed=1)
        ).run(10_000)
        assert result.completed
        assert result.steps == 27

    def test_section6_random_27(self):
        mesh = Mesh(27)
        result = Section6Router(27).route(random_permutation(mesh, seed=0))
        assert (result.completed, result.actual_steps, result.scheduled_steps) == (
            True,
            244,
            10456,
        )
        assert result.max_node_load == 6

    def test_adaptive_construction_n60(self):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        result = con.run()
        assert result.bound_steps == 24
        assert result.exchange_count == 15
        assert result.undelivered_at_bound == 84
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=100_000
        )
        assert report.configuration_matches
        assert report.total_steps == 209

    def test_dor_construction_n60(self):
        factory = lambda: BoundedDimensionOrderRouter(1)
        con = DorLowerBoundConstruction(60, factory)
        result = con.run()
        assert result.bound_steps == 120
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=200_000
        )
        assert report.configuration_matches
        assert report.total_steps == 212
