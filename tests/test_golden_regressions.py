"""Golden regression tests: pinned end-to-end numbers.

Every algorithm here is deterministic, so exact step counts and bound
values are stable release artifacts.  If a refactor changes any of these
numbers, that is a *behavioural* change and must be deliberate (update the
pin in the same change that explains why).
"""

import pytest

from repro.core import AdaptiveLowerBoundConstruction, replay_constructed_permutation
from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
)
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.mesh import Mesh, Simulator
from repro.routing import (
    BoundedDimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
)
from repro.streaming import run_streaming
from repro.streaming.arrivals import build_process
from repro.tiling import Section6Router
from repro.verify import ARRAY_PORTED, REGISTRY
from repro.workloads import (
    bit_reversal_permutation,
    random_permutation,
    transpose_permutation,
)


class TestGoldenConstants:
    def test_adaptive_constants_n216_k1(self):
        c = AdaptiveConstants.choose(216, 1)
        assert (c.cn, c.dn, c.p, c.l_floor, c.bound_steps) == (36, 86, 170, 3, 258)

    def test_adaptive_constants_n120_k1(self):
        c = AdaptiveConstants.choose(120, 1)
        assert (c.cn, c.dn, c.p, c.l_floor, c.bound_steps) == (20, 48, 94, 2, 96)

    def test_dor_constants_n60_k4(self):
        c = DimensionOrderConstants.choose(60, 4)
        assert (c.cn, c.dn, c.p, c.l_floor) == (5, 24, 49, 5)

    def test_ff_constants_n60_k1(self):
        c = FarthestFirstConstants.choose(60, 1)
        assert (c.cn, c.dn, c.p, c.l_floor) == (7, 24, 45, 9)


class TestGoldenRuns:
    def test_bounded_dor_transpose_16(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, BoundedDimensionOrderRouter(1), transpose_permutation(mesh)
        ).run(10_000)
        assert (result.completed, result.steps) == (True, 44)

    def test_farthest_first_random_16(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, FarthestFirstRouter(2), random_permutation(mesh, seed=0)
        ).run(10_000)
        assert (result.completed, result.steps) == (True, 28)

    def test_hot_potato_random_16(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, HotPotatoRouter(), random_permutation(mesh, seed=1)
        ).run(10_000)
        assert result.completed
        assert result.steps == 27

    def test_section6_random_27(self):
        mesh = Mesh(27)
        result = Section6Router(27).route(random_permutation(mesh, seed=0))
        assert (result.completed, result.actual_steps, result.scheduled_steps) == (
            True,
            244,
            10456,
        )
        assert result.max_node_load == 6

    def test_adaptive_construction_n60(self):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        result = con.run()
        assert result.bound_steps == 24
        assert result.exchange_count == 15
        assert result.undelivered_at_bound == 84
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=100_000
        )
        assert report.configuration_matches
        assert report.total_steps == 209

    def test_dor_construction_n60(self):
        factory = lambda: BoundedDimensionOrderRouter(1)
        con = DorLowerBoundConstruction(60, factory)
        result = con.run()
        assert result.bound_steps == 120
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=200_000
        )
        assert report.configuration_matches
        assert report.total_steps == 212


#: Pinned step counts for every registered router on the two classic
#: structured permutations.  Routers are built by the repro.verify registry
#: at k=1, which applies the capacity floors each algorithm needs to route
#: permutations at all (dor gets a central queue of 4; the adaptive family
#: gets incoming queues of 2; bounded-dor/farthest-first run at the true
#: k=1; randomized-adaptive is seeded with 0).  Interesting structure: on
#: bit-reversal all eight agree exactly (traffic is so spread out nothing
#: ever queues), while transpose separates the diagonal-crossing behaviours
#: into three groups.
GOLDEN_STEPS = {
    ("transpose", 8): {
        "dor": 14,
        "bounded-dor": 20,
        "farthest-first": 20,
        "greedy-adaptive": 14,
        "alternating-adaptive": 14,
        "hot-potato": 14,
        "randomized-adaptive": 15,
        "bounded-excursion": 14,
        "credit-adaptive": 20,
    },
    ("transpose", 16): {
        "dor": 30,
        "bounded-dor": 44,
        "farthest-first": 44,
        "greedy-adaptive": 30,
        "alternating-adaptive": 30,
        "hot-potato": 30,
        "randomized-adaptive": 30,
        "bounded-excursion": 30,
        "credit-adaptive": 44,
    },
    ("bit-reversal", 8): {name: 6 for name in (
        "dor", "bounded-dor", "farthest-first", "greedy-adaptive",
        "alternating-adaptive", "hot-potato", "randomized-adaptive",
        "bounded-excursion", "credit-adaptive",
    )},
    ("bit-reversal", 16): {name: 18 for name in (
        "dor", "bounded-dor", "farthest-first", "greedy-adaptive",
        "alternating-adaptive", "hot-potato", "randomized-adaptive",
        "bounded-excursion", "credit-adaptive",
    )},
}

_WORKLOAD_GENERATORS = {
    "transpose": transpose_permutation,
    "bit-reversal": bit_reversal_permutation,
}


class TestGoldenStepTables:
    @pytest.mark.parametrize(
        "workload,n", sorted(GOLDEN_STEPS), ids=lambda v: str(v)
    )
    def test_all_routers_pinned(self, workload, n):
        table = GOLDEN_STEPS[(workload, n)]
        assert set(table) == set(REGISTRY), "table must cover every router"
        mesh = Mesh(n)
        packets_source = _WORKLOAD_GENERATORS[workload]
        actual = {}
        for name, entry in REGISTRY.items():
            sim = Simulator(mesh, entry.factory(1, 0), packets_source(mesh))
            result = sim.run(100_000)
            assert result.completed, f"{name} stalled on {workload} n={n}"
            actual[name] = result.steps
        assert actual == table


#: Pinned n=64 outcomes for the routers the array backend has ported,
#: as (step budget, completed, steps, delivered, total_moves,
#: max_queue_len).  Both engines must reproduce each row exactly -- this
#: is the golden half of the engine-equivalence gate at a size where a
#: vectorization bug has thousands of packets to show up in.  Central
#: dimension order wedges (exchange-deadlock) on bit-reversal at this
#: size, so its row pins the wedged state over a capped window; no move
#: happens after the cap, which is itself part of the pin.
GOLDEN_N64 = {
    ("transpose", "dor"): (1000, True, 126, 4096, 174720, 2),
    ("transpose", "bounded-dor"): (1000, True, 188, 4096, 174720, 1),
    ("transpose", "hot-potato"): (1000, True, 126, 4096, 174720, 2),
    ("transpose", "greedy-adaptive"): (1000, True, 126, 4096, 174720, 1),
    ("transpose", "farthest-first"): (1000, True, 188, 4096, 174720, 1),
    ("transpose", "credit-adaptive"): (1000, True, 188, 4096, 174720, 1),
    ("bit-reversal", "dor"): (300, False, 300, 3735, 152050, 4),
    ("bit-reversal", "bounded-dor"): (1000, True, 104, 4096, 159744, 1),
    ("bit-reversal", "hot-potato"): (1000, True, 98, 4096, 161664, 4),
    ("bit-reversal", "greedy-adaptive"): (1000, True, 101, 4096, 159744, 2),
    ("bit-reversal", "farthest-first"): (1000, True, 104, 4096, 159744, 1),
    ("bit-reversal", "credit-adaptive"): (1000, True, 104, 4096, 159744, 1),
}

#: Pinned open-loop streaming trace per ported router: Mesh(8), poisson
#: arrivals at rate 0.05 seed 0, warmup 16 / measure 64 / drain 256,
#: k=2 registry capacities.  Streaming exercises the engine paths the
#: closed tables cannot: mid-run injection, admission-time occupancy
#: reads, and rejection accounting.
GOLDEN_STREAMING = {
    "dor": {
        "steps": 87, "offered_packets": 216, "admitted_packets": 216,
        "rejected_packets": 0, "delivered_measured": 174,
        "total_moves": 1206, "max_queue_len": 4,
        "latency_p50": 6, "latency_p99": 12, "drained": True,
    },
    "bounded-dor": {
        "steps": 87, "offered_packets": 216, "admitted_packets": 216,
        "rejected_packets": 0, "delivered_measured": 174,
        "total_moves": 1206, "max_queue_len": 2,
        "latency_p50": 6, "latency_p99": 12, "drained": True,
    },
    "hot-potato": {
        "steps": 87, "offered_packets": 216, "admitted_packets": 216,
        "rejected_packets": 0, "delivered_measured": 174,
        "total_moves": 1236, "max_queue_len": 3,
        "latency_p50": 6, "latency_p99": 12, "drained": True,
    },
    "greedy-adaptive": {
        "steps": 87, "offered_packets": 216, "admitted_packets": 216,
        "rejected_packets": 0, "delivered_measured": 174,
        "total_moves": 1206, "max_queue_len": 2,
        "latency_p50": 5, "latency_p99": 12, "drained": True,
    },
    "farthest-first": {
        "steps": 87, "offered_packets": 216, "admitted_packets": 216,
        "rejected_packets": 0, "delivered_measured": 174,
        "total_moves": 1206, "max_queue_len": 2,
        "latency_p50": 6, "latency_p99": 12, "drained": True,
    },
    "credit-adaptive": {
        "steps": 87, "offered_packets": 216, "admitted_packets": 216,
        "rejected_packets": 0, "delivered_measured": 174,
        "total_moves": 1206, "max_queue_len": 2,
        "latency_p50": 6, "latency_p99": 12, "drained": True,
    },
}


class TestGoldenArrayEngineTables:
    def test_tables_cover_exactly_the_ported_routers(self):
        assert {r for _, r in GOLDEN_N64} == set(ARRAY_PORTED)
        assert set(GOLDEN_STREAMING) == set(ARRAY_PORTED)

    @pytest.mark.parametrize("engine", ["reference", "array"])
    @pytest.mark.parametrize(
        "workload,router", sorted(GOLDEN_N64), ids=lambda v: str(v)
    )
    def test_n64_pinned(self, workload, router, engine):
        budget, *pinned = GOLDEN_N64[(workload, router)]
        mesh = Mesh(64)
        sim = Simulator(
            mesh,
            REGISTRY[router].factory(1, 0),
            _WORKLOAD_GENERATORS[workload](mesh),
            engine=engine,
        )
        assert sim.engine_name == engine, "ported router must not fall back"
        result = sim.run(budget)
        actual = (
            result.completed,
            result.steps,
            result.delivered,
            result.total_moves,
            result.max_queue_len,
        )
        assert actual == tuple(pinned)

    @pytest.mark.parametrize("engine", ["reference", "array"])
    @pytest.mark.parametrize("router", sorted(GOLDEN_STREAMING))
    def test_streaming_trace_pinned(self, router, engine):
        report = run_streaming(
            Mesh(8),
            REGISTRY[router].factory(2, 0),
            build_process("poisson", 0.05, seed=0),
            warmup=16,
            measure=64,
            drain=256,
            engine=engine,
        )
        metrics = report.to_metrics()
        pinned = GOLDEN_STREAMING[router]
        assert {key: metrics[key] for key in pinned} == pinned
