"""Tests for i-box geometry and packet classification."""

import pytest

from repro.core.constants import AdaptiveConstants
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry


@pytest.fixture
def geo() -> BoxGeometry:
    return BoxGeometry.from_constants(AdaptiveConstants.choose(216, 1))


class TestLandmarks:
    def test_n1_column_is_east_edge_of_submesh(self, geo):
        # Paper: N_1-column is the cn-th column (1-indexed) = cn-1 (0-indexed).
        assert geo.n_column(1) == geo.cn - 1
        assert geo.e_row(1) == geo.cn - 1

    def test_boxes_nest(self, geo):
        for i in range(1, geo.levels):
            assert geo.n_column(i) < geo.n_column(i + 1)

    def test_zero_box_strictly_inside_one_box(self, geo):
        assert geo.in_box((geo.cn - 2, geo.cn - 2), 0)
        assert not geo.in_box((geo.cn - 1, 0), 0)
        assert geo.in_box((geo.cn - 1, 0), 1)

    def test_one_box_equals_submesh(self, geo):
        for node in [(0, 0), (geo.cn - 1, geo.cn - 1), (geo.cn - 1, 0)]:
            assert geo.in_box(node, 1) == geo.in_one_box_submesh(node)
        assert not geo.in_one_box_submesh((geo.cn, 0))

    def test_corner(self, geo):
        assert geo.corner(2) == (geo.n_column(2), geo.e_row(2))

    def test_region_predicates_exclude_corner(self, geo):
        corner = geo.corner(3)
        assert not geo.on_n_column_south(corner, 3)
        assert not geo.on_e_row_west(corner, 3)
        assert geo.on_n_column_south((corner[0], corner[1] - 1), 3)
        assert geo.on_e_row_west((corner[0] - 1, corner[1]), 3)


class TestClassification:
    def test_classify_inverts_n_destination(self, geo):
        for i in (1, geo.levels):
            for j in (0, geo.p - 1):
                assert geo.classify(geo.n_destination(i, j)) == (N_CLASS, i)

    def test_classify_inverts_e_destination(self, geo):
        for i in (1, geo.levels):
            for j in (0, geo.p - 1):
                assert geo.classify(geo.e_destination(i, j)) == (E_CLASS, i)

    def test_family_destinations_unique(self, geo):
        dests = set()
        for i in range(1, geo.levels + 1):
            for j in range(geo.p):
                dests.add(geo.n_destination(i, j))
                dests.add(geo.e_destination(i, j))
        assert len(dests) == 2 * geo.levels * geo.p

    def test_family_destinations_outside_own_box(self, geo):
        for i in range(1, geo.levels + 1):
            assert not geo.in_box(geo.n_destination(i, 0), i)
            assert not geo.in_box(geo.e_destination(i, 0), i)

    def test_nonfamily_destinations_classless(self, geo):
        assert geo.classify((0, 0)) is None
        assert geo.classify((geo.n - 1, geo.n - 1)) is None
        # Just beyond the family index range in the N_1-column:
        beyond = (geo.n_column(1), geo.e_row(1) + 1 + geo.p)
        assert geo.classify(beyond) is None
        # On the column but below the E_1-row:
        assert geo.classify((geo.n_column(1), 0)) is None

    def test_n_destinations_in_column_north_of_row(self, geo):
        for i in (1, 2):
            d = geo.n_destination(i, 5)
            assert d[0] == geo.n_column(i)
            assert d[1] > geo.e_row(i)

    def test_destinations_inside_mesh(self, geo):
        for i in range(1, geo.levels + 1):
            for j in (0, geo.p - 1):
                for d in (geo.n_destination(i, j), geo.e_destination(i, j)):
                    assert 0 <= d[0] < geo.n and 0 <= d[1] < geo.n
