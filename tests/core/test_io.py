"""Tests for instance/construction serialization."""

import json

import pytest

from repro.core import AdaptiveLowerBoundConstruction
from repro.io import (
    load_construction_instance,
    load_instance,
    packets_from_json,
    packets_to_json,
    save_construction,
    save_instance,
)
from repro.mesh import Mesh, Packet, Simulator
from repro.routing import GreedyAdaptiveRouter
from repro.workloads import dynamic_hh_problem, random_permutation


class TestInstanceRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        mesh = Mesh(8)
        packets = random_permutation(mesh, seed=0)
        path = tmp_path / "instance.json"
        save_instance(packets, path)
        loaded = load_instance(path)
        assert [(p.pid, p.source, p.dest, p.injection_time) for p in loaded] == [
            (p.pid, p.source, p.dest, p.injection_time) for p in packets
        ]

    def test_injection_times_survive(self, tmp_path):
        mesh = Mesh(6)
        packets = dynamic_hh_problem(mesh, 2, spacing=3, seed=1)
        path = tmp_path / "dyn.json"
        save_instance(packets, path)
        loaded = load_instance(path)
        assert {p.injection_time for p in loaded} == {0, 3}

    def test_version_check(self):
        with pytest.raises(ValueError, match="unsupported"):
            packets_from_json({"version": 99, "packets": []})

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "x.json"
        save_instance([Packet(0, (0, 0), (1, 1))], path)
        data = json.loads(path.read_text())
        assert data["packets"][0]["dest"] == [1, 1]

    def test_json_level_round_trip_equality(self):
        mesh = Mesh(6)
        packets = random_permutation(mesh, seed=3)
        rebuilt = packets_from_json(packets_to_json(packets))
        assert [(p.pid, p.source, p.dest, p.injection_time) for p in rebuilt] == [
            (p.pid, p.source, p.dest, p.injection_time) for p in packets
        ]
        # Serializing again yields the identical document.
        assert packets_to_json(rebuilt) == packets_to_json(packets)


class TestMalformedFiles:
    def test_instance_malformed_json_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        with pytest.raises(ValueError, match="malformed JSON"):
            load_instance(path)

    def test_instance_missing_packets_key(self):
        with pytest.raises(ValueError, match="missing 'packets'"):
            packets_from_json({"version": 1})

    def test_instance_not_an_object(self):
        with pytest.raises(ValueError, match="expected an object"):
            packets_from_json([1, 2, 3])

    def test_instance_bad_packet_entry(self):
        with pytest.raises(ValueError, match="bad packet entry"):
            packets_from_json({"version": 1, "packets": [{"pid": 0}]})

    def test_construction_malformed_json_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="malformed JSON"):
            load_construction_instance(path)

    def test_construction_version_mismatch(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "packet_table": []}))
        with pytest.raises(ValueError, match="unsupported construction format"):
            load_construction_instance(path)

    def test_construction_missing_fields(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"version": 1, "packet_table": [[0, [0, 0], [1, 1]]]}))
        with pytest.raises(ValueError, match="malformed construction file"):
            load_construction_instance(path)


class TestConstructionRoundTrip:
    def test_saved_construction_replays_identically(self, tmp_path):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        result = con.run()
        path = tmp_path / "hard.json"
        save_construction(result, path)

        meta, packets = load_construction_instance(path)
        assert meta["bound_steps"] == result.bound_steps
        assert meta["n"] == 60
        sim = Simulator(Mesh(meta["n"]), factory(), packets)
        sim.run_steps(meta["bound_steps"])
        # Theorem 13 still certified from the loaded instance...
        assert sim.in_flight >= 1
        # ...and the full configuration matches the original construction.
        assert sim.configuration() == result.final_configuration
