"""Tests for the Section 5 constructions: dimension-order, farthest-first,
torus, and h-h."""

import pytest

from repro.core.dor_adversary import DimensionOrderAdversary, DorGeometry, DorLowerBoundConstruction
from repro.core.extensions import (
    HhConstants,
    HhLowerBoundConstruction,
    TorusLowerBoundConstruction,
)
from repro.core.ff_adversary import FfGeometry, FfLowerBoundConstruction
from repro.core.replay import replay_constructed_permutation
from repro.core import bounds
from repro.routing import (
    BoundedDimensionOrderRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
)


class TestDorConstruction:
    @pytest.mark.parametrize(
        "factory",
        [lambda: DimensionOrderRouter(1), lambda: BoundedDimensionOrderRouter(1)],
        ids=["central", "bounded"],
    )
    def test_invariants_and_replay(self, factory):
        con = DorLowerBoundConstruction(60, factory, check_invariants=True)
        result = con.run()
        assert result.undelivered_at_bound >= 1
        report = replay_constructed_permutation(result, factory)
        assert report.configuration_matches
        assert report.delivery_times_match
        assert report.undelivered_at_bound >= 1

    def test_bound_superlinear_even_at_n60(self):
        """Omega(n^2/k) beats the diameter at small n already."""
        con = DorLowerBoundConstruction(60, lambda: DimensionOrderRouter(1))
        assert con.constants.bound_steps > bounds.diameter_bound(60)

    def test_replay_time_exceeds_certified_bound(self):
        factory = lambda: BoundedDimensionOrderRouter(1)
        con = DorLowerBoundConstruction(60, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=200_000
        )
        assert report.completed
        assert report.total_steps >= result.bound_steps

    def test_rejects_adaptive_victim(self):
        with pytest.raises(TypeError, match="dimension-order"):
            DorLowerBoundConstruction(60, lambda: GreedyAdaptiveRouter(1))

    def test_rejects_full_view_victim(self):
        with pytest.raises(TypeError, match="destination-"):
            DorLowerBoundConstruction(60, lambda: FarthestFirstRouter(1))

    def test_instance_is_permutation(self):
        con = DorLowerBoundConstruction(60, lambda: DimensionOrderRouter(1))
        packets = con.build_packets()
        assert len({p.source for p in packets}) == len(packets)
        assert len({p.dest for p in packets}) == len(packets)

    def test_adversary_trigger_unit(self):
        """A class-2 packet scheduled into the N_1-column must be exchanged."""
        from repro.mesh import Mesh, Packet, Simulator
        from repro.core.constants import DimensionOrderConstants

        consts = DimensionOrderConstants.choose(60, 1)
        geo = DorGeometry(n=60, cn=consts.cn, levels=consts.l_floor)
        adv = DimensionOrderAdversary(consts, geo, log=True)
        col1 = geo.column(1)
        # One class-2 packet right next to the N_1-column; one eligible
        # class-1 partner deep in the 0-box.
        intruder = Packet(0, (col1 - 1, 0), geo.destination(2, 0))
        partner = Packet(1, (0, 0), geo.destination(1, 0))
        sim = Simulator(
            Mesh(60), DimensionOrderRouter(1), [intruder, partner], interceptor=adv
        )
        sim.step()
        assert adv.exchange_count == 1
        assert geo.classify(intruder.dest) == 1  # became the N_1-packet
        assert geo.classify(partner.dest) == 2


class TestFfConstruction:
    def test_invariants_and_replay(self):
        factory = lambda: FarthestFirstRouter(1, "central")
        con = FfLowerBoundConstruction(60, factory, check_invariants=True)
        result = con.run()
        assert result.undelivered_at_bound >= 1
        report = replay_constructed_permutation(result, factory)
        assert report.configuration_matches

    def test_incoming_queue_victim(self):
        factory = lambda: FarthestFirstRouter(1)
        con = FfLowerBoundConstruction(60, factory, check_invariants=True)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=200_000
        )
        assert report.completed
        assert report.total_steps >= result.bound_steps

    def test_initial_arrangement_invariants(self):
        con = FfLowerBoundConstruction(60, lambda: FarthestFirstRouter(1))
        geo = con.geometry
        packets = con.build_packets()
        # No packet starts in its own column (classes >= 2).
        for p in packets:
            j = geo.classify(p.dest)
            assert j is not None
            if j >= 2:
                assert p.source[0] != geo.column(j)
        # Per-row classes non-increasing eastward.
        rows: dict[int, list[tuple[int, int]]] = {}
        for p in packets:
            rows.setdefault(p.source[1], []).append(
                (p.source[0], geo.classify(p.dest))
            )
        for entries in rows.values():
            entries.sort()
            for (x1, j1), (x2, j2) in zip(entries, entries[1:]):
                assert j1 >= j2

    def test_adversary_trigger_unit(self):
        """A class-2 packet about to turn into its own column early gets its
        destination pushed one column east."""
        from repro.mesh import Mesh, Packet, Simulator
        from repro.core.constants import FarthestFirstConstants
        from repro.core.ff_adversary import FarthestFirstAdversary

        consts = FarthestFirstConstants.choose(60, 1)
        geo = FfGeometry(n=60, cn=consts.cn, levels=consts.l_floor, num_classes=10)
        adv = FarthestFirstAdversary(consts, geo, log=True)
        turner = Packet(0, (geo.column(2) - 1, 0), geo.destination(2, 0))
        partner = Packet(1, (0, 0), geo.destination(1, 0))
        sim = Simulator(
            Mesh(60),
            FarthestFirstRouter(1, "central"),
            [turner, partner],
            interceptor=adv,
        )
        sim.step()
        assert adv.exchange_count == 1
        assert geo.classify(turner.dest) == 1
        assert geo.classify(partner.dest) == 2


class TestTorusConstruction:
    def test_construction_and_replay_on_torus(self):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = TorusLowerBoundConstruction(120, factory, check_invariants=True)
        result = con.run()
        assert result.undelivered_at_bound >= 1
        report = replay_constructed_permutation(
            result, factory, topology=con.topology, run_to_completion=True,
            max_steps=200_000,
        )
        assert report.configuration_matches
        assert report.completed

    def test_requires_even_n(self):
        with pytest.raises(ValueError, match="even"):
            TorusLowerBoundConstruction(121, lambda: GreedyAdaptiveRouter(1))

    def test_paths_never_wrap(self):
        """All construction traffic stays inside the m x m submesh."""
        factory = lambda: GreedyAdaptiveRouter(1)
        con = TorusLowerBoundConstruction(120, factory)
        m = con.constants.n
        from repro.mesh import Simulator
        from repro.core.adversary import AdaptiveAdversary

        packets = con.build_packets()
        adv = AdaptiveAdversary(con.constants, con.geometry)
        sim = Simulator(con.topology, factory(), packets, interceptor=adv)
        for _ in range(con.constants.bound_steps):
            sim.step()
            for p in sim.iter_packets():
                assert p.pos[0] < m and p.pos[1] < m


class TestHhConstruction:
    def test_static_requires_h_le_k(self):
        from repro.core.constants import InfeasibleConstructionError

        with pytest.raises(InfeasibleConstructionError, match="h <= k"):
            HhConstants.choose(60, 1, 2)

    def test_construction_and_replay(self):
        factory = lambda: GreedyAdaptiveRouter(2)
        con = HhLowerBoundConstruction(60, 2, factory, check_invariants=True)
        result = con.run()
        assert result.undelivered_at_bound >= 1
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=200_000
        )
        assert report.configuration_matches
        assert report.delivery_times_match
        assert report.completed

    def test_placement_h_per_node(self):
        from collections import Counter

        con = HhLowerBoundConstruction(60, 2, lambda: GreedyAdaptiveRouter(2))
        packets = con.build_packets()
        per_node = Counter(p.source for p in packets)
        assert max(per_node.values()) <= 2
        per_dest = Counter(p.dest for p in packets)
        assert max(per_dest.values()) <= 2

    def test_hh_bound_grows_with_h(self):
        b1 = HhConstants.choose(240, 4, 2).bound_steps
        b2 = HhConstants.choose(240, 4, 4).bound_steps
        assert b2 > b1
        # Omega(h^3/(k+h)^2): h 2 -> 4 with k=4 should grow ~ 8 * (7/9)^2 ~ 4.8x.
        assert 2.0 <= b2 / b1 <= 8.0


class TestBoundFormulas:
    def test_nonminimal_decreases_with_delta(self):
        n, k = 24 * 9, 1
        b0 = bounds.nonminimal_lower_bound(n, k, 0)
        b1 = bounds.nonminimal_lower_bound(n, k, 1)
        b2 = bounds.nonminimal_lower_bound(n, k, 3)
        assert b0 > b1 > b2
        assert b0 == bounds.theorem14_closed_form(n, k)

    def test_nonminimal_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            bounds.nonminimal_lower_bound(216, 1, -1)

    def test_torus_bound_matches_submesh(self):
        assert bounds.torus_lower_bound(120, 1) == bounds.adaptive_lower_bound(60, 1)

    def test_hh_closed_form_h_cubed(self):
        n, k = 10_000, 8
        b1 = bounds.hh_lower_bound_closed_form(n, k, 2)
        b2 = bounds.hh_lower_bound_closed_form(n, k, 4)
        # Omega(h^3 n^2/(k+h)^2): quadrupling-ish growth when h doubles.
        assert 3.0 <= b2 / b1 <= 16.0

    def test_section6_bounds(self):
        assert bounds.section6_queue_bound() == 834
        assert bounds.section6_queue_bound(102) == 222
        assert bounds.section6_time_bound(81) == 972 * 81
        assert bounds.section6_march_bound(408, 3) == 1223
        assert bounds.section6_balancing_bound(27) == 77
        assert bounds.section6_base_case_bound() == 14

    def test_theorem15_upper_dominates_dor_lower(self):
        """Sanity: the Thm 15 upper bound sits above the Omega(n^2/k) lower
        bound for matching parameters (they differ by constants only)."""
        for n in (60, 120, 216):
            assert bounds.theorem15_upper_bound(n, 1) >= bounds.dimension_order_lower_bound(n, 1)
