"""Failure injection: prove the verification machinery is not vacuous.

Every safety net in the reproduction -- the invariant checker, the
adversary's eligibility error, the simulator's model enforcement -- is
exercised here with deliberately broken components to confirm it actually
fires.
"""

import pytest

from repro.core import AdaptiveLowerBoundConstruction
from repro.core.adversary import AdaptiveAdversary
from repro.core.construction import InvariantViolation, _InvariantChecker
from repro.core.geometry import BoxGeometry
from repro.mesh import Mesh, Packet, Simulator
from repro.mesh.errors import AdversaryError
from repro.routing import GreedyAdaptiveRouter


class SabotagedAdversary(AdaptiveAdversary):
    """Performs EX-rule lookups but swaps with an *ineligible* partner
    (one scheduled into the guarded column), violating the rules."""

    def _find_partner(self, sim, exclude, partner_class, i, scheduled_target):
        partner = super()._find_partner(
            sim, exclude, partner_class, i, scheduled_target
        )
        if partner is None:
            return None
        # Lie about eligibility half the time by returning a packet of the
        # wrong class when one exists.
        for p in sim.iter_packets():
            cls = self.geometry.classify(p.dest)
            if cls is not None and cls != (partner_class, i) and p.pid != exclude.pid:
                return p
        return partner


class NullAdversary:
    """Does nothing -- the boxes will leak."""

    def __call__(self, sim, schedule):
        return None


class TestInvariantCheckerFires:
    def test_checker_catches_unprotected_run(self):
        """With the adversary disabled, Lemma 5/7-style confinement breaks
        and the checker reports it (on a construction instance the lemmas
        only hold *because* of the exchanges)."""
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        packets = con.build_packets()
        checker = _InvariantChecker(con.constants, con.geometry, packets)
        sim = Simulator(Mesh(60), factory(), packets, interceptor=NullAdversary())
        with pytest.raises(InvariantViolation):
            for _ in range(con.constants.bound_steps):
                checker.before_step(sim)
                sim.step()
                checker.after_step(sim)

    def test_checker_catches_sabotaged_adversary(self):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        packets = con.build_packets()
        adversary = SabotagedAdversary(con.constants, con.geometry)
        checker = _InvariantChecker(con.constants, con.geometry, packets)
        sim = Simulator(Mesh(60), factory(), packets, interceptor=adversary)
        # Either safety net may fire first: wrong-class swaps re-trigger the
        # rules (no fixpoint -> AdversaryError) or leak a protected class
        # (InvariantViolation).
        with pytest.raises((InvariantViolation, AdversaryError)):
            for _ in range(con.constants.bound_steps):
                checker.before_step(sim)
                sim.step()
                checker.after_step(sim)


class TestAdversaryErrorFires:
    def test_no_eligible_partner_raises(self):
        """A hand-built scenario with a triggering move but no eligible
        partner anywhere must raise AdversaryError (if this ever happened
        on a real construction instance, Lemma 3 would be falsified)."""
        from repro.core.constants import AdaptiveConstants

        consts = AdaptiveConstants.choose(60, 1)
        geo = BoxGeometry.from_constants(consts)
        adversary = AdaptiveAdversary(consts, geo)
        # A class-(N, levels) packet about to enter the N_1 column... but
        # with levels=1 use an E_1 packet entering the N_1-column (EX3) and
        # provide no N_1 partner at all.
        intruder = Packet(0, (geo.n_column(1) - 1, 0), geo.e_destination(1, 0))
        sim = Simulator(
            Mesh(60), GreedyAdaptiveRouter(1), [intruder], interceptor=adversary
        )
        with pytest.raises(AdversaryError, match="no eligible"):
            # Step until the packet's eastward move targets the N_1 column.
            for _ in range(5):
                sim.step()

    def test_real_construction_never_raises(self):
        """The paper's Lemmas 3/4 in action: on a genuine instance the
        partner always exists."""
        con = AdaptiveLowerBoundConstruction(60, lambda: GreedyAdaptiveRouter(1))
        con.run()  # must not raise AdversaryError


class TestTamperedReplayDetected:
    def test_modified_permutation_breaks_equality(self):
        """Perturbing one destination in the constructed permutation is
        detected by the configuration comparison."""
        from repro.core.replay import replay_constructed_permutation

        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        result = con.run()
        # Swap two destinations that the adversary did NOT pair.
        table = list(result.packet_table)
        (p0, s0, d0), (p1, s1, d1) = table[0], table[-1]
        table[0], table[-1] = (p0, s0, d1), (p1, s1, d0)
        result.packet_table = table
        report = replay_constructed_permutation(result, factory)
        assert not report.configuration_matches