"""Unit tests for the closed-form bound formulas."""

import pytest

from repro.core import bounds


class TestLowerBoundFormulas:
    def test_adaptive_lower_bound_matches_constants(self):
        from repro.core.constants import AdaptiveConstants

        for n, k in ((60, 1), (216, 2)):
            assert bounds.adaptive_lower_bound(n, k) == AdaptiveConstants.choose(
                n, k
            ).bound_steps

    def test_theorem14_cases(self):
        # Case 1: asymptotic regime.
        n, k = 24 * 9, 1
        assert bounds.theorem14_closed_form(n, k) == (n // (12 * 9) - 1) * n // 3
        # Case 2: small n falls back to the diameter.
        assert bounds.theorem14_closed_form(50, 1) == 98

    def test_theorem14_nonnegative(self):
        for n in range(24, 4000, 37):
            for k in (1, 2, 3):
                assert bounds.theorem14_closed_form(n, k) >= 0

    def test_diameter(self):
        assert bounds.diameter_bound(32) == 62

    def test_torus_matches_half_mesh(self):
        assert bounds.torus_lower_bound(240, 1) == bounds.adaptive_lower_bound(120, 1)
        with pytest.raises(ValueError):
            bounds.torus_lower_bound(241, 1)

    def test_hh_reduces_to_permutation_scale(self):
        """h = 1 gives the same order as the adaptive closed form."""
        n, k = 20_000, 1
        hh1 = bounds.hh_lower_bound_closed_form(n, k, 1)
        adaptive = bounds.theorem14_closed_form(n, k)
        assert 0.05 <= hh1 / adaptive <= 20

    def test_dimension_order_closed_form_values(self):
        # floor(3*60/(8*3)) * floor(2*60/5) = 7 * 24
        assert bounds.dimension_order_closed_form(60, 1) == 7 * 24

    def test_farthest_first_closed_form_values(self):
        # floor(2*60/(9*2)) * 24 = 6 * 24
        assert bounds.farthest_first_closed_form(60, 1) == 6 * 24

    def test_hh_dimension_order_growth(self):
        n, k = 10_000, 4
        b2 = bounds.hh_dimension_order_closed_form(n, k, 2)
        b4 = bounds.hh_dimension_order_closed_form(n, k, 4)
        # Omega(h^2 n^2/(k+h)): h doubling roughly triples-to-quadruples it.
        assert 2.0 <= b4 / b2 <= 6.0


class TestUpperBoundFormulas:
    def test_theorem15_budget_shape(self):
        assert bounds.theorem15_upper_bound(100, 1) == 8 * (10_000 + 100)
        assert bounds.theorem15_upper_bound(100, 4) == 8 * (2_500 + 100)
        assert bounds.theorem15_upper_bound(100, 1, constant=3) == 3 * 10_100

    def test_section6_phase_budgets(self):
        assert bounds.section6_march_bound(408, 1) == 407
        assert bounds.section6_sort_smooth_bound(408, 3) == 2 * (2 + 1224)
        assert bounds.section6_balancing_bound(81) == 239
        assert bounds.section6_base_case_bound() == 14

    def test_section6_headline_numbers(self):
        assert bounds.section6_time_bound(243) == 972 * 243
        assert bounds.section6_improved_time_bound(243) == 564 * 243
        assert bounds.section6_queue_bound() == 834
        assert bounds.section6_queue_bound(102) == 222

    def test_hierarchy_at_moderate_n(self):
        """diameter <= Thm13 certified << dim-order lower <= Thm15 budget."""
        n, k = 2000, 1
        assert bounds.diameter_bound(n) < bounds.adaptive_lower_bound(n, k)
        assert bounds.adaptive_lower_bound(n, k) < bounds.dimension_order_lower_bound(n, k)
        assert bounds.dimension_order_lower_bound(n, k) <= bounds.theorem15_upper_bound(n, k)
