"""Tests for the Section 4.3 / Section 5 constants."""

from fractions import Fraction

import pytest

from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
    InfeasibleConstructionError,
)


class TestAdaptiveConstants:
    def test_paper_regime_always_feasible(self):
        """Section 4.3 proves feasibility for n >= 24 (k+2)^2."""
        for k in (1, 2, 3):
            n = 24 * (k + 2) ** 2
            consts = AdaptiveConstants.choose(n, k)
            assert consts.l_floor >= 1
            assert consts.bound_steps >= 1

    def test_c_and_d_within_paper_ranges(self):
        """For n >= 24 (k+2)^2: 2/(5(k+2)) <= c <= 1/(2(k+2)), 1/3 <= d <= 2/5."""
        for k in (1, 2):
            n = 24 * (k + 2) ** 2
            consts = AdaptiveConstants.choose(n, k)
            assert Fraction(2, 5 * (k + 2)) <= consts.c <= Fraction(1, 2 * (k + 2))
            assert Fraction(1, 3) <= consts.d <= Fraction(2, 5)

    def test_p_formula(self):
        consts = AdaptiveConstants.choose(216, 1)
        c = consts.c
        expected = int((consts.k + 1) * (consts.cn + c * c * 216) + consts.dn)
        assert consts.p == expected

    def test_l_formula(self):
        consts = AdaptiveConstants.choose(216, 1)
        assert consts.l == Fraction(consts.cn**2, 2 * consts.p)
        assert consts.l_floor == int(consts.l)

    def test_bound_grows_quadratically_in_n(self):
        """bound(2n) / bound(n) -> ~4 for fixed k (the Omega(n^2) shape)."""
        b1 = AdaptiveConstants.choose(500, 1).bound_steps
        b2 = AdaptiveConstants.choose(1000, 1).bound_steps
        assert 3.0 <= b2 / b1 <= 5.0

    def test_bound_shrinks_with_k(self):
        n = 2000
        bounds = [AdaptiveConstants.choose(n, k).bound_steps for k in (1, 2, 4)]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_bound_k_scaling_roughly_inverse_square(self):
        """Theorem 14: bound ~ n^2 / k^2; doubling k shrinks it ~4x."""
        n = 20000
        b1 = AdaptiveConstants.choose(n, 2).bound_steps
        b2 = AdaptiveConstants.choose(n, 4).bound_steps
        assert 2.0 <= b1 / b2 <= 6.0

    def test_infeasible_small_n(self):
        with pytest.raises(InfeasibleConstructionError):
            AdaptiveConstants.choose(10, 1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            AdaptiveConstants.choose(216, 0)

    def test_minimum_feasible_n(self):
        n = AdaptiveConstants.minimum_feasible_n(1)
        AdaptiveConstants.choose(n, 1)  # must not raise
        with pytest.raises(InfeasibleConstructionError):
            AdaptiveConstants.choose(n - 1, 1)

    def test_total_packets_fit_one_box(self):
        for n, k in [(60, 1), (120, 1), (216, 2)]:
            consts = AdaptiveConstants.choose(n, k)
            assert consts.total_construction_packets <= consts.cn**2

    def test_theorem14_closed_form_is_lower_bound(self):
        """The Theorem 14 Case 1 closed form never exceeds bound_steps."""
        for k in (1, 2):
            n = 24 * (k + 2) ** 2
            consts = AdaptiveConstants.choose(n, k)
            closed = (n // (12 * (k + 2) ** 2) - 1) * n // 3
            assert consts.bound_steps >= closed


class TestDimensionOrderConstants:
    def test_feasible_moderate_n(self):
        consts = DimensionOrderConstants.choose(60, 1)
        assert consts.bound_steps >= 1

    def test_levels_fit_destination_columns(self):
        for n in (60, 120, 216):
            consts = DimensionOrderConstants.choose(n, 1)
            assert consts.l_floor <= consts.cn

    def test_bound_linear_in_inverse_k(self):
        """Omega(n^2/k): doubling k roughly halves the bound."""
        n = 20000
        b1 = DimensionOrderConstants.choose(n, 2).bound_steps
        b2 = DimensionOrderConstants.choose(n, 4).bound_steps
        assert 1.5 <= b1 / b2 <= 3.0

    def test_bound_exceeds_diameter_at_moderate_n(self):
        """Unlike the adaptive bound, Omega(n^2/k) beats 2n-2 early."""
        consts = DimensionOrderConstants.choose(216, 1)
        assert consts.bound_steps > 2 * 216 - 2

    def test_paper_closed_form(self):
        """Paper: l dn >= floor(3n/(8(k+2))) * (2n/5)."""
        for k in (1, 2):
            n = 40 * (k + 2)
            consts = DimensionOrderConstants.choose(n, k)
            closed = (3 * n // (8 * (k + 2))) * (2 * n // 5)
            assert consts.bound_steps >= closed // 2  # same order


class TestFarthestFirstConstants:
    def test_feasible(self):
        consts = FarthestFirstConstants.choose(60, 1)
        assert consts.bound_steps >= 1

    def test_quadratic_in_n(self):
        b1 = FarthestFirstConstants.choose(500, 1).bound_steps
        b2 = FarthestFirstConstants.choose(1000, 1).bound_steps
        assert 3.0 <= b2 / b1 <= 5.0

    def test_paper_closed_form(self):
        """Paper: l dn >= floor(2n/(9(k+1))) * (2n/5)."""
        for k in (1, 2):
            n = 45 * (k + 1)
            consts = FarthestFirstConstants.choose(n, k)
            closed = (2 * n // (9 * (k + 1))) * (2 * n // 5)
            assert consts.bound_steps >= closed // 2
