"""Integration tests: the full adversary construction and its replay.

These are executable versions of the paper's main results:
Lemmas 1-8 (invariant checking during the construction), Corollary 9
(undelivered packets at the horizon), Lemma 12 (replay configuration
equality), and Theorem 13 (the certified lower bound).
"""

import pytest

from repro.core import (
    AdaptiveLowerBoundConstruction,
    replay_constructed_permutation,
)
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.core.replay import packets_from_permutation
from repro.mesh import Mesh, Simulator
from repro.routing import (
    AlternatingAdaptiveRouter,
    DimensionOrderRouter,
    GreedyAdaptiveRouter,
)

# (name, n, factory): n is the smallest comfortable feasible mesh for the
# victim's node capacity (k=2 needs n >= 104).
VICTIMS = [
    ("greedy-adaptive-k1", 60, lambda: GreedyAdaptiveRouter(1)),
    ("alternating-adaptive-k1", 60, lambda: AlternatingAdaptiveRouter(1)),
    ("dimension-order-k1", 60, lambda: DimensionOrderRouter(1)),
    ("greedy-adaptive-k2", 104, lambda: GreedyAdaptiveRouter(2)),
]


@pytest.mark.parametrize("name,n,factory", VICTIMS, ids=[v[0] for v in VICTIMS])
class TestConstructionAgainstVictims:

    def test_lemmas_hold_throughout(self, name, n, factory):
        """check_invariants verifies Lemmas 1-2 and 5-8 after every step."""
        con = AdaptiveLowerBoundConstruction(
            n, factory, check_invariants=True
        )
        result = con.run()  # raises InvariantViolation on any lemma failure
        assert result.bound_steps == con.constants.bound_steps

    def test_corollary9_undelivered_at_horizon(self, name, n, factory):
        con = AdaptiveLowerBoundConstruction(n, factory)
        result = con.run()
        assert result.undelivered_at_bound >= 1
        # Quantitative form: p - dn packets of each top-level class remain.
        consts = con.constants
        expected_remaining = consts.p - consts.dn
        if expected_remaining > 0:
            assert result.undelivered_at_bound >= 2 * expected_remaining

    def test_lemma12_replay_configuration_equality(self, name, n, factory):
        con = AdaptiveLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(result, factory)
        assert report.configuration_matches
        assert report.delivery_times_match

    def test_theorem13_certified_bound(self, name, n, factory):
        con = AdaptiveLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(result, factory)
        assert report.undelivered_at_bound >= 1  # Theorem 13


class TestConstructionDetails:
    def test_constructed_permutation_is_partial_permutation(self):
        con = AdaptiveLowerBoundConstruction(60, lambda: GreedyAdaptiveRouter(1))
        result = con.run()
        sources = [s for s, _ in result.permutation]
        dests = [d for _, d in result.permutation]
        assert len(set(sources)) == len(sources)
        assert len(set(dests)) == len(dests)

    def test_exchanges_preserve_destination_multiset(self):
        con = AdaptiveLowerBoundConstruction(60, lambda: GreedyAdaptiveRouter(1))
        initial = con.build_packets()
        result = con.run()
        assert sorted(d for _, d in result.permutation) == sorted(
            p.dest for p in initial
        )

    def test_exchange_log(self):
        con = AdaptiveLowerBoundConstruction(
            60, lambda: GreedyAdaptiveRouter(1), log_exchanges=True
        )
        result = con.run()
        assert len(result.records) == result.exchange_count
        for rec in result.records:
            assert rec.rule in ("EX1", "EX2", "EX3", "EX4")
            assert 1 <= rec.level <= con.constants.l_floor
            assert 1 <= rec.time <= rec.level * con.constants.dn

    def test_top_level_classes_remain_in_top_box(self):
        """Corollary 9's geometry: the surviving packets sit in the l-box."""
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        result = con.run()
        geo = con.geometry
        top = geo.levels
        # Re-run the replay to inspect live packet positions at the horizon.
        sim = Simulator(
            Mesh(con.constants.n),
            factory(),
            packets_from_permutation(result.permutation),
        )
        sim.run_steps(result.bound_steps)
        in_box = {(N_CLASS, top): 0, (E_CLASS, top): 0}
        escaped = {(N_CLASS, top): 0, (E_CLASS, top): 0}
        for p in sim.iter_packets():
            cls = geo.classify(p.dest)
            if cls in in_box:
                if geo.in_box(p.pos, top):
                    in_box[cls] += 1
                else:
                    escaped[cls] += 1
        # Lemma 2: at most one escape per step during the dn-step window of
        # the top level, so at least p - dn of each class are still penned.
        expected = con.constants.p - con.constants.dn
        assert in_box[(N_CLASS, top)] >= max(expected, 1)
        assert in_box[(E_CLASS, top)] >= max(expected, 1)
        assert escaped[(N_CLASS, top)] <= con.constants.dn
        assert escaped[(E_CLASS, top)] <= con.constants.dn

    def test_rejects_non_destination_exchangeable_victim(self):
        from repro.routing import FarthestFirstRouter

        with pytest.raises(TypeError, match="destination-exchangeable"):
            AdaptiveLowerBoundConstruction(60, lambda: FarthestFirstRouter(1))

    def test_full_fill_construction_runs(self):
        con = AdaptiveLowerBoundConstruction(
            60, lambda: GreedyAdaptiveRouter(1), fill="full", check_invariants=True
        )
        result = con.run()
        assert result.undelivered_at_bound >= 1
        assert len(result.permutation) == 3600

    def test_replay_to_completion_exceeds_bound(self):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = AdaptiveLowerBoundConstruction(60, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=100_000
        )
        assert report.completed
        assert report.total_steps > result.bound_steps
