"""Tests for the construction's initial arrangement (Section 3, step 1)."""

from collections import Counter

import pytest

from repro.core.constants import AdaptiveConstants
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.core.placement import build_construction_packets


@pytest.fixture(params=[(60, 1), (120, 1), (216, 2)])
def setup(request):
    n, k = request.param
    consts = AdaptiveConstants.choose(n, k)
    geo = BoxGeometry.from_constants(consts)
    packets = build_construction_packets(consts, geo)
    return consts, geo, packets


class TestPlacement:
    def test_is_partial_permutation(self, setup):
        _, _, packets = setup
        sources = [p.source for p in packets]
        dests = [p.dest for p in packets]
        assert len(set(sources)) == len(sources)
        assert len(set(dests)) == len(dests)

    def test_packet_count(self, setup):
        consts, _, packets = setup
        assert len(packets) == consts.total_construction_packets

    def test_one_packet_per_node(self, setup):
        _, _, packets = setup
        assert max(Counter(p.source for p in packets).values()) == 1

    def test_all_sources_in_one_box(self, setup):
        _, geo, packets = setup
        assert all(geo.in_one_box_submesh(p.source) for p in packets)

    def test_class_counts(self, setup):
        consts, geo, packets = setup
        counts = Counter(geo.classify(p.dest) for p in packets)
        for i in range(1, consts.l_floor + 1):
            assert counts[(N_CLASS, i)] == consts.p
            assert counts[(E_CLASS, i)] == consts.p
        assert counts.get(None, 0) == 0

    def test_n1_column_holds_only_n1_packets(self, setup):
        consts, geo, packets = setup
        for p in packets:
            if p.source[0] == geo.n_column(1) and p.source[1] <= geo.e_row(1):
                assert geo.classify(p.dest) == (N_CLASS, 1)

    def test_e1_row_west_holds_only_e1_packets(self, setup):
        consts, geo, packets = setup
        for p in packets:
            if p.source[1] == geo.e_row(1) and p.source[0] < geo.n_column(1):
                assert geo.classify(p.dest) == (E_CLASS, 1)

    def test_n1_and_e1_present_in_zero_box(self, setup):
        """Paper note: 'there must be N_1- and E_1-packets in the 0-box'."""
        _, geo, packets = setup
        classes_in_zero_box = {
            geo.classify(p.dest) for p in packets if geo.in_box(p.source, 0)
        }
        assert (N_CLASS, 1) in classes_in_zero_box
        assert (E_CLASS, 1) in classes_in_zero_box

    def test_higher_levels_confined_to_zero_box(self, setup):
        """Initial arrangement satisfies Lemmas 5/6 at t=0."""
        consts, geo, packets = setup
        for p in packets:
            tag, i = geo.classify(p.dest)
            if i >= 2:
                assert geo.in_box(p.source, 0)

    def test_all_packets_northeast_bound(self, setup):
        _, _, packets = setup
        for p in packets:
            assert p.dest[0] >= p.source[0]
            assert p.dest[1] >= p.source[1]


class TestFullFill:
    def test_full_fill_is_full_permutation(self):
        consts = AdaptiveConstants.choose(60, 1)
        packets = build_construction_packets(consts, fill="full")
        assert len(packets) == 60 * 60
        assert len({p.source for p in packets}) == 3600
        assert len({p.dest for p in packets}) == 3600

    def test_fillers_are_classless(self):
        consts = AdaptiveConstants.choose(60, 1)
        geo = BoxGeometry.from_constants(consts)
        partial = {p.source for p in build_construction_packets(consts, geo)}
        full = build_construction_packets(consts, geo, fill="full")
        for p in full:
            if p.source not in partial:
                assert geo.classify(p.dest) is None

    def test_bad_fill_value(self):
        consts = AdaptiveConstants.choose(60, 1)
        with pytest.raises(ValueError):
            build_construction_packets(consts, fill="half")
