"""Property-based tests for routing algorithms and the simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh, Packet, Simulator
from repro.routing import (
    BoundedDimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
)
from repro.workloads import random_permutation


@st.composite
def partial_permutation(draw, max_side=12, max_packets=20):
    import numpy as np

    n = draw(st.integers(4, max_side))
    count = draw(st.integers(1, min(max_packets, n * n)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    cells = [(x, y) for x in range(n) for y in range(n)]
    src_idx = rng.choice(len(cells), size=count, replace=False)
    dst_idx = rng.choice(len(cells), size=count, replace=False)
    return n, [
        Packet(i, cells[s], cells[d])
        for i, (s, d) in enumerate(zip(src_idx, dst_idx))
    ]


@given(partial_permutation(), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_bounded_dor_always_delivers(case, k):
    n, packets = case
    result = Simulator(Mesh(n), BoundedDimensionOrderRouter(k), packets).run(
        max_steps=50_000
    )
    assert result.completed
    assert result.max_queue_len <= k


@given(partial_permutation(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_farthest_first_always_delivers(case, k):
    n, packets = case
    result = Simulator(Mesh(n), FarthestFirstRouter(k), packets).run(
        max_steps=50_000
    )
    assert result.completed
    assert result.max_queue_len <= k


@given(partial_permutation())
@settings(max_examples=40, deadline=None)
def test_conservation_every_step(case):
    """delivered + in-flight is invariant across steps."""
    n, packets = case
    sim = Simulator(Mesh(n), BoundedDimensionOrderRouter(2), packets)
    total = sim.total_packets
    while not sim.done and sim.time < 10_000:
        assert len(sim.delivery_times) + sim.in_flight == total
        sim.step()
    assert sim.done


@given(partial_permutation())
@settings(max_examples=30, deadline=None)
def test_delivery_time_at_least_distance(case):
    """No packet beats its shortest-path distance (minimality)."""
    n, packets = case
    mesh = Mesh(n)
    distances = {p.pid: mesh.distance(p.source, p.dest) for p in packets}
    result = Simulator(mesh, GreedyAdaptiveRouter(3, "incoming"), packets).run(
        max_steps=50_000
    )
    assert result.completed
    for pid, t in result.delivery_times.items():
        assert t >= distances[pid]


@given(partial_permutation())
@settings(max_examples=30, deadline=None)
def test_total_moves_equal_distances_for_minimal_routers(case):
    """A minimal router's total link transmissions equal the sum of
    shortest-path distances: every move makes progress."""
    n, packets = case
    mesh = Mesh(n)
    expected = sum(mesh.distance(p.source, p.dest) for p in packets)
    result = Simulator(mesh, BoundedDimensionOrderRouter(2), packets).run(
        max_steps=50_000
    )
    assert result.completed
    assert result.total_moves == expected


@given(st.integers(0, 10_000), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_determinism_across_runs(seed, k):
    mesh = Mesh(8)
    results = [
        Simulator(
            mesh, BoundedDimensionOrderRouter(k), random_permutation(mesh, seed=seed)
        ).run(max_steps=20_000)
        for _ in range(2)
    ]
    assert results[0].delivery_times == results[1].delivery_times
    assert results[0].max_queue_len == results[1].max_queue_len
