"""Seeded-fuzz properties of the packet-view layer (Section 2 visibility).

Each test draws hundreds of random (topology, packet) cases from fixed
seeds and asserts the structural guarantees the lower bound relies on:
destination-exchangeable views never leak the destination, and exchanging
the destinations of two packets with equal profitable sets produces
indistinguishable views (Lemma 10, as code).
"""

import random

import pytest

from repro.mesh import Mesh, Packet, Torus
from repro.mesh.directions import DIRECTIONS, Direction
from repro.mesh.visibility import FullPacketView, Offer, PacketView

CASES = 250


def random_topology(rng):
    cls = rng.choice([Mesh, Torus])
    return cls(rng.randint(2, 7), rng.randint(2, 7))


def random_node(rng, topology):
    return (rng.randrange(topology.width), rng.randrange(topology.height))


def random_case(rng):
    """One (topology, packet-at-node, profitable-set) sample."""
    topology = random_topology(rng)
    node = random_node(rng, topology)
    dest = random_node(rng, topology)
    packet = Packet(rng.randrange(10_000), node, dest)
    profitable = topology.profitable_directions(node, dest)
    return topology, node, packet, profitable


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_view_never_exposes_destination(seed):
    rng = random.Random(seed)
    for _ in range(CASES):
        _, _, packet, profitable = random_case(rng)
        view = PacketView(packet, frozenset(profitable))
        assert not hasattr(view, "dest")
        assert not hasattr(view, "displacement")
        # __slots__ everywhere: no writable __dict__ to smuggle state through.
        assert not hasattr(view, "__dict__")
        assert view.key == packet.pid
        assert view.source == packet.source


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_profitable_set_matches_topology(seed):
    rng = random.Random(seed)
    for _ in range(CASES):
        topology, node, packet, profitable = random_case(rng)
        view = PacketView(packet, frozenset(profitable))
        # Every profitable direction strictly decreases distance.
        d0 = topology.distance(node, packet.dest)
        for direction in view.profitable:
            nxt = topology.neighbor(node, direction)
            assert nxt is not None
            assert topology.distance(nxt, packet.dest) == d0 - 1
        # And every distance-decreasing outlink is profitable.
        for direction in topology.out_directions(node):
            nxt = topology.neighbor(node, direction)
            if topology.distance(nxt, packet.dest) == d0 - 1:
                assert direction in view.profitable


@pytest.mark.parametrize("seed", [6, 7, 8])
def test_exchanged_destinations_yield_identical_views(seed):
    """Lemma 10: swap dests of two co-located packets with equal profitable
    sets; the destination-exchangeable views are indistinguishable."""
    rng = random.Random(seed)
    found = 0
    while found < CASES:
        topology, node, p1, prof1 = random_case(rng)
        dest2 = random_node(rng, topology)
        p2 = Packet(p1.pid, node, dest2)
        if topology.profitable_directions(node, dest2) != prof1:
            continue
        found += 1
        before = (PacketView(p1, frozenset(prof1)).key,
                  PacketView(p1, frozenset(prof1)).source,
                  PacketView(p1, frozenset(prof1)).profitable)
        p1.exchange_destinations(p2)
        after_view = PacketView(p1, frozenset(
            topology.profitable_directions(node, p1.dest)))
        assert (after_view.key, after_view.source, after_view.profitable) == before


@pytest.mark.parametrize("seed", [9, 10])
def test_full_view_exposes_consistent_displacement(seed):
    rng = random.Random(seed)
    for _ in range(CASES):
        topology, node, packet, profitable = random_case(rng)
        disp = topology.displacement(node, packet.dest)
        view = FullPacketView(packet, frozenset(profitable), disp)
        assert view.dest == packet.dest
        assert abs(disp[0]) + abs(disp[1]) == topology.distance(node, packet.dest)
        # Sign of the displacement agrees with the profitable directions.
        if disp[0] > 0:
            assert Direction.E in view.profitable
        if disp[0] < 0:
            assert Direction.W in view.profitable
        if disp[1] > 0:
            assert Direction.N in view.profitable
        if disp[1] < 0:
            assert Direction.S in view.profitable


@pytest.mark.parametrize("seed", [11, 12])
def test_state_writes_reach_the_packet(seed):
    rng = random.Random(seed)
    for i in range(CASES):
        _, _, packet, profitable = random_case(rng)
        view = PacketView(packet, frozenset(profitable))
        view.state = ("turn", i)
        assert packet.state == ("turn", i)
        assert PacketView(packet, frozenset(profitable)).state == ("turn", i)


@pytest.mark.parametrize("seed", [13, 14])
def test_offer_measures_profitable_from_sender(seed):
    rng = random.Random(seed)
    cases = 0
    while cases < CASES:
        topology, node, packet, _ = random_case(rng)
        came_from = rng.choice(DIRECTIONS)
        sender = topology.neighbor(node, came_from)
        if sender is None:
            continue
        cases += 1
        prof = frozenset(topology.profitable_directions(sender, packet.dest))
        offer = Offer(PacketView(packet, prof), came_from, sender)
        assert offer.sender == sender
        assert offer.came_from == came_from
        assert offer.view.profitable == prof
