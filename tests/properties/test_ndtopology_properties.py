"""Property-based tests (hypothesis) for the d-dimensional topology layer.

The 2D suite (``test_topology_properties.py``) pins the compass behaviour
of :class:`Mesh`/:class:`Torus`; this suite checks the same invariants on
the data-driven :class:`NdTopology` family for d in 1..4, plus the
encoding laws of :func:`ports` and an exhaustive BFS cross-check of the
irregular :class:`SparsePillarMesh` distance closed form.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.directions import DIRECTIONS
from repro.mesh.ndtopology import MeshND, SparsePillarMesh, TorusND, ports


@st.composite
def nd_case(draw):
    dims = draw(st.integers(1, 4))
    shape = tuple(draw(st.integers(2, 5)) for _ in range(dims))
    wrap = draw(st.booleans())
    topo = TorusND(shape) if wrap else MeshND(shape)
    a = tuple(draw(st.integers(0, s - 1)) for s in shape)
    b = tuple(draw(st.integers(0, s - 1)) for s in shape)
    return topo, a, b


@given(nd_case())
@settings(max_examples=200)
def test_neighbor_symmetry(case):
    """Every link is bidirectional: going out p and back p.opposite is home."""
    topo, a, _ = case
    for p in topo.directions:
        nb = topo.neighbor(a, p)
        if nb is not None:
            assert topo.neighbor(nb, p.opposite) == a


@given(nd_case())
@settings(max_examples=200)
def test_distance_matches_closed_form(case):
    """Mesh distance is L1; torus distance is per-axis ring distance."""
    topo, a, b = case
    expected = 0
    for axis, side in enumerate(topo.shape):
        d = abs(a[axis] - b[axis])
        expected += min(d, side - d) if topo.wrap[axis] else d
    assert topo.distance(a, b) == expected
    assert topo.distance(a, b) == topo.distance(b, a)
    assert topo.distance(a, b) <= topo.diameter


@given(nd_case())
@settings(max_examples=200)
def test_profitable_moves_reduce_distance_by_one(case):
    topo, a, b = case
    profitable = topo.profitable_directions(a, b)
    assert bool(profitable) == (a != b)
    for p in topo.directions:
        nb = topo.neighbor(a, p)
        if nb is None:
            continue
        if p in profitable:
            assert topo.distance(nb, b) == topo.distance(a, b) - 1
        else:
            assert topo.distance(nb, b) >= topo.distance(a, b)


@given(nd_case())
@settings(max_examples=200)
def test_wrap_tie_has_both_directions_profitable(case):
    """Even-side half-circumference ties admit both ports; otherwise the
    profitable set holds at most one port per axis."""
    topo, a, b = case
    profitable = topo.profitable_directions(a, b)
    for axis, side in enumerate(topo.shape):
        on_axis = [p for p in profitable if p.axis == axis]
        d = abs(a[axis] - b[axis])
        tie = topo.wrap[axis] and side % 2 == 0 and d == side // 2
        assert len(on_axis) == (2 if tie else (0 if d == 0 else 1))


@given(nd_case())
@settings(max_examples=100)
def test_node_index_is_a_bijection(case):
    topo, _, _ = case
    indices = [topo.node_index(node) for node in topo.nodes()]
    assert indices == list(range(topo.num_nodes))


def test_ports_encoding_laws():
    for dims in range(1, 5):
        ps = ports(dims)
        assert len(ps) == 2 * dims
        assert [int(p) for p in ps] == list(range(2 * dims))
        for p in ps:
            assert p.opposite.opposite is p
            assert p.opposite.axis == p.axis
            assert p.opposite.sign == -p.sign
        assert sorted({(p.axis, p.sign) for p in ps}) == [
            (axis, sign) for axis in range(dims) for sign in (-1, 1)
        ]


def test_ports_at_d2_coincide_with_compass_directions():
    """Port 0..3 must be N, E, S, W numerically *and* geometrically."""
    for port, direction in zip(ports(2), DIRECTIONS):
        assert int(port) == int(direction)
        assert port.axis == direction.axis
        assert port.sign == direction.sign
        assert int(port.opposite) == int(direction.opposite)


def _bfs_distances(topo, source):
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for p in topo.out_directions(node):
            nb = topo.neighbor(node, p)
            if nb is not None and nb not in dist:
                dist[nb] = dist[node] + 1
                frontier.append(nb)
    return dist


def test_pillar_distance_matches_bfs_exhaustively():
    topo = SparsePillarMesh(4, layers=3)
    nodes = list(topo.nodes())
    for src in nodes:
        bfs = _bfs_distances(topo, src)
        assert len(bfs) == topo.num_nodes  # connected despite missing z-links
        for dst in nodes:
            assert topo.distance(src, dst) == bfs[dst]


def test_pillar_profitable_moves_reduce_bfs_distance():
    topo = SparsePillarMesh(4, layers=3)
    a, b = (1, 3, 0), (3, 1, 2)
    profitable = topo.profitable_directions(a, b)
    assert profitable  # some minimal outlink exists even off-pillar
    for p in profitable:
        assert topo.distance(topo.neighbor(a, p), b) == topo.distance(a, b) - 1
