"""Property-based lockstep equivalence: array engine vs reference engine.

The fixed lockstep matrix (``repro verify --engines``) and the golden
tables cover curated cells; this suite lets hypothesis roam the input
space -- any ported router on any small mesh/torus with any seed and
workload shape must produce the *same configuration after every step*,
not merely the same final result.  Step-by-step comparison is the point:
a kernel bug that transposes two same-step moves can cancel out in the
aggregate counters but cannot survive a per-step configuration check.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh, Simulator, Torus
from repro.verify import ARRAY_PORTED, REGISTRY
from repro.verify.differential import fresh_copies, step_budget
from repro.verify.engine_equivalence import LockstepReport, lockstep
from repro.workloads import (
    bernoulli_traffic,
    random_partial_permutation,
    random_permutation,
)


def build_workload(name, topology, n, seed):
    """One of the shapes the lockstep property roams over."""
    if name == "permutation":
        return random_permutation(topology, seed=seed)
    if name == "partial":
        return random_partial_permutation(topology, 0.5, seed=seed)
    # Timed injections exercise the array engine's pending-packet path.
    return bernoulli_traffic(topology, 0.1, 2 * n, seed=seed)


@st.composite
def lockstep_case(draw):
    router = draw(st.sampled_from(ARRAY_PORTED))
    n = draw(st.integers(4, 10))
    k = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31 - 1))
    torus = draw(st.booleans())
    workload = draw(st.sampled_from(["permutation", "partial", "dynamic"]))
    return router, n, k, seed, torus, workload


@st.composite
def faulted_lockstep_case(draw):
    router = draw(st.sampled_from(ARRAY_PORTED))
    n = draw(st.integers(4, 8))
    k = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31 - 1))
    torus = draw(st.booleans())
    availability = draw(st.sampled_from([0.5, 0.8, 0.95]))
    fault_seed = draw(st.integers(0, 2**16))
    return router, n, k, seed, torus, availability, fault_seed


@given(faulted_lockstep_case())
@settings(max_examples=25, deadline=None)
def test_engines_agree_step_by_step_under_link_faults(case):
    """Per-step equality must survive a Bernoulli link plan: both engines
    evaluate the same pure counter-hash draws (scalar closure vs
    vectorized mask), so the filtered traces are byte-identical too."""
    from repro.faults import BernoulliLinkPlan

    router, n, k, seed, torus, availability, fault_seed = case
    topology = Torus(n) if torus else Mesh(n)
    packets = random_permutation(topology, seed=seed)
    entry = REGISTRY[router]

    # validate=False: flaky links void the synchrony assumption behind
    # e.g. bounded-dor's always-accept vertical queues, so overflow is a
    # legitimate outcome here -- the engines must agree about it, not die.
    reference = Simulator(
        topology, entry.factory(k, seed), fresh_copies(packets), validate=False
    )
    array = Simulator(
        topology,
        entry.factory(k, seed),
        fresh_copies(packets),
        engine="array",
        validate=False,
    )
    assert array.engine_name == "array", "ported router must not fall back"
    BernoulliLinkPlan(availability, seed=fault_seed).attach(reference)
    BernoulliLinkPlan(availability, seed=fault_seed).attach(array)

    report = LockstepReport(
        router=router, family="faulted", n=n, k=k, seed=seed, engaged=True
    )
    # Degraded links can stall any router indefinitely; compare over a
    # bounded window rather than a completion budget.
    budget = min(step_budget(n, k), 40 * n)
    lockstep(reference, array, budget, report)
    assert report.ok, report.findings


@given(lockstep_case())
@settings(max_examples=40, deadline=None)
def test_engines_agree_step_by_step(case):
    """Every step's configuration (and the final result) must be equal."""
    router, n, k, seed, torus, workload = case
    topology = Torus(n) if torus else Mesh(n)
    packets = build_workload(workload, topology, n, seed)
    entry = REGISTRY[router]

    reference = Simulator(topology, entry.factory(k, seed), fresh_copies(packets))
    array = Simulator(
        topology, entry.factory(k, seed), fresh_copies(packets), engine="array"
    )
    assert array.engine_name == "array", "ported router must not fall back"

    report = LockstepReport(
        router=router, family=workload, n=n, k=k, seed=seed, engaged=True
    )
    # Central-queue dor can legitimately exchange-deadlock (e.g. dynamic
    # traffic); the engines must then agree while wedged, compared over a
    # bounded window instead of the full completion budget.
    budget = min(step_budget(n, k), 60 * n)
    lockstep(reference, array, budget, report)
    assert report.ok, report.findings
