"""Property-based tests for hot-potato (deflection) routing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh, Packet, Simulator, Torus
from repro.routing import HotPotatoRouter


@st.composite
def light_instance(draw, max_side=10):
    n = draw(st.integers(4, max_side))
    seed = draw(st.integers(0, 2**31 - 1))
    count = draw(st.integers(1, n * n // 2))
    rng = np.random.default_rng(seed)
    cells = [(x, y) for x in range(n) for y in range(n)]
    src = rng.choice(len(cells), size=count, replace=False)
    dst = rng.choice(len(cells), size=count, replace=False)
    return n, [Packet(i, cells[s], cells[d]) for i, (s, d) in enumerate(zip(src, dst))]


@given(light_instance())
@settings(max_examples=40, deadline=None)
def test_hot_potato_delivers_light_loads(case):
    n, packets = case
    result = Simulator(Mesh(n), HotPotatoRouter(), packets).run(max_steps=50 * n)
    assert result.completed


@given(light_instance())
@settings(max_examples=30, deadline=None)
def test_bufferless_invariant(case):
    """Node load never exceeds the inlink count (no buffering)."""
    n, packets = case
    sim = Simulator(Mesh(n), HotPotatoRouter(), packets)
    while not sim.done and sim.time < 50 * n:
        sim.step()
        for node, queues in sim.queues.items():
            load = sum(len(q) for q in queues.values())
            degree = len(sim.topology.out_directions(node))
            assert load <= degree, (node, load)
    assert sim.done


@given(light_instance())
@settings(max_examples=30, deadline=None)
def test_ages_increase_monotonically(case):
    """Every undelivered packet's age grows by one per step."""
    n, packets = case
    sim = Simulator(Mesh(n), HotPotatoRouter(), packets)
    for expected_age in range(1, 12):
        if sim.done:
            break
        sim.step()
        for p in sim.iter_packets():
            assert p.state == expected_age


@given(st.integers(4, 8), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_torus_light_loads(n, seed):
    torus = Torus(n)
    rng = np.random.default_rng(seed)
    cells = [(x, y) for x in range(n) for y in range(n)]
    idx = rng.choice(len(cells), size=max(1, n), replace=False)
    packets = [
        Packet(i, cells[s], cells[int(rng.integers(len(cells)))])
        for i, s in enumerate(idx)
    ]
    result = Simulator(torus, HotPotatoRouter(), packets).run(max_steps=100 * n)
    assert result.completed
