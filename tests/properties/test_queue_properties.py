"""Seeded-fuzz properties of the queue models (Section 2 / Section 5).

Random capacities, kinds, and profitable-outlink sets; fixed seeds.  The
invariants: key spaces are exactly what the model names, arrival/initial
keys always land inside the key space, node capacity is capacity x queues,
and the default incoming-queue injection rule depends only on the
profitable set (so it is legal for destination-exchangeable algorithms).
"""

import random

import pytest

from repro.mesh.directions import DIRECTIONS, Direction
from repro.mesh.queues import (
    CENTRAL,
    KIND_CENTRAL,
    KIND_INCOMING,
    QueueSpec,
    default_incoming_initial_key,
)

CASES = 250


def random_profitable(rng):
    """A profitable set as a real mesh produces: at most one per axis."""
    dirs = set()
    if rng.random() < 0.8:
        dirs.add(rng.choice([Direction.E, Direction.W]))
    if rng.random() < 0.8:
        dirs.add(rng.choice([Direction.N, Direction.S]))
    return frozenset(dirs)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_key_space_and_node_capacity(seed):
    rng = random.Random(seed)
    for _ in range(CASES):
        capacity = rng.randint(1, 9)
        kind = rng.choice([KIND_CENTRAL, KIND_INCOMING])
        spec = QueueSpec(capacity, kind)
        if kind == KIND_CENTRAL:
            assert spec.keys == (CENTRAL,)
            assert spec.node_capacity == capacity
        else:
            assert spec.keys == DIRECTIONS
            assert spec.node_capacity == 4 * capacity


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_arrival_and_initial_keys_stay_in_key_space(seed):
    rng = random.Random(seed)
    for _ in range(CASES):
        spec = QueueSpec(rng.randint(1, 9), rng.choice([KIND_CENTRAL, KIND_INCOMING]))
        came_from = rng.choice(DIRECTIONS)
        assert spec.arrival_key(came_from) in spec.keys
        assert spec.initial_key(random_profitable(rng)) in spec.keys


@pytest.mark.parametrize("seed", [6, 7])
def test_incoming_arrival_key_is_the_inlink(seed):
    rng = random.Random(seed)
    spec = QueueSpec(1, KIND_INCOMING)
    for _ in range(CASES):
        came_from = rng.choice(DIRECTIONS)
        assert spec.arrival_key(came_from) == came_from


@pytest.mark.parametrize("seed", [8, 9])
def test_default_injection_rule_is_a_function_of_profitable_set(seed):
    """Equal profitable sets -> equal injection queue, across many draws.
    This is what makes the rule legal for destination-exchangeable
    algorithms: it cannot depend on anything but the profitable set."""
    rng = random.Random(seed)
    seen = {}
    for _ in range(CASES):
        profitable = random_profitable(rng)
        key = default_incoming_initial_key(profitable)
        assert key in DIRECTIONS
        if profitable in seen:
            assert seen[profitable] == key
        seen[profitable] = key
    # All four horizontal/vertical priorities exercised at least once.
    assert len(seen) >= 4


@pytest.mark.parametrize("seed", [10, 11])
def test_default_injection_rule_opposes_travel(seed):
    """The injected packet sits in the queue of the inlink it would have
    arrived on: the chosen queue is the opposite of a profitable outlink,
    with the horizontal axis taking priority (dimension-order idiom)."""
    rng = random.Random(seed)
    for _ in range(CASES):
        profitable = random_profitable(rng)
        key = default_incoming_initial_key(profitable)
        horizontal = {d for d in profitable if d.is_horizontal}
        if horizontal:
            assert key == next(iter(horizontal)).opposite
        elif profitable:
            assert key == next(iter(profitable)).opposite
        else:
            assert key == Direction.S  # delivered-at-source sentinel


def test_spec_rejects_bad_parameters():
    with pytest.raises(ValueError):
        QueueSpec(0)
    with pytest.raises(ValueError):
        QueueSpec(-3, KIND_INCOMING)
    with pytest.raises(ValueError):
        QueueSpec(1, "sideways")


def test_custom_initial_key_is_used_for_incoming_only():
    spec = QueueSpec(2, KIND_INCOMING, initial_key=lambda prof: Direction.N)
    assert spec.initial_key(frozenset()) == Direction.N
    central = QueueSpec(2, KIND_CENTRAL, initial_key=lambda prof: Direction.N)
    assert central.initial_key(frozenset()) == CENTRAL
