"""Property-based tests for the Section 6 algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh, Packet
from repro.tiling import Section6Router
from repro.tiling.geometry import covering_tile_exists, tilings_for_side


@st.composite
def partial_permutation_27(draw, max_packets=40):
    import numpy as np

    seed = draw(st.integers(0, 2**31 - 1))
    count = draw(st.integers(1, max_packets))
    rng = np.random.default_rng(seed)
    cells = [(x, y) for x in range(27) for y in range(27)]
    src_idx = rng.choice(len(cells), size=count, replace=False)
    dst_idx = rng.choice(len(cells), size=count, replace=False)
    return [
        Packet(i, cells[s], cells[d])
        for i, (s, d) in enumerate(zip(src_idx, dst_idx))
    ]


@given(partial_permutation_27())
@settings(max_examples=40, deadline=None)
def test_section6_delivers_any_partial_permutation(packets):
    result = Section6Router(27).route(packets)
    assert result.completed
    assert result.delivered == result.total_packets
    assert result.scheduled_steps <= 972 * 27
    assert result.max_node_load <= 834


@given(partial_permutation_27())
@settings(max_examples=20, deadline=None)
def test_section6_improved_schedule(packets):
    result = Section6Router(27, improved=True).route(packets)
    assert result.completed
    assert result.scheduled_steps <= 564 * 27


@given(
    st.integers(0, 80),
    st.integers(0, 80),
    st.integers(-9, 9),
    st.integers(-9, 9),
)
@settings(max_examples=200)
def test_lemma19_covering_property(x, y, dx, dy):
    """Any two nodes within side/3 of each other in both dimensions share a
    tile in at least one of the three tilings (Lemma 19)."""
    n, side = 81, 27
    a = (x, y)
    b = (min(max(x + dx, 0), n - 1), min(max(y + dy, 0), n - 1))
    if abs(b[0] - a[0]) <= side // 3 and abs(b[1] - a[1]) <= side // 3:
        assert covering_tile_exists(n, side, a, b)


@given(st.sampled_from([27, 81]))
@settings(max_examples=10, deadline=None)
def test_tilings_partition(n):
    for side in (27,) if n == 27 else (81, 27):
        for tiles in tilings_for_side(n, side):
            seen = set()
            for tile in tiles:
                for xx in range(max(tile.x0, 0), min(tile.x0 + tile.side, n)):
                    for yy in range(max(tile.y0, 0), min(tile.y0 + tile.side, n)):
                        assert (xx, yy) not in seen
                        seen.add((xx, yy))
            assert len(seen) == n * n
