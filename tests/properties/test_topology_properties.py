"""Property-based tests (hypothesis) for topology invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.directions import DIRECTIONS
from repro.mesh.topology import Mesh, Torus

sides = st.integers(min_value=2, max_value=24)


@st.composite
def mesh_and_two_nodes(draw):
    n = draw(sides)
    m = draw(sides)
    topo_cls = draw(st.sampled_from([Mesh, Torus]))
    topo = topo_cls(n, m)
    a = (draw(st.integers(0, n - 1)), draw(st.integers(0, m - 1)))
    b = (draw(st.integers(0, n - 1)), draw(st.integers(0, m - 1)))
    return topo, a, b


@given(mesh_and_two_nodes())
@settings(max_examples=200)
def test_profitable_moves_reduce_distance_by_one(case):
    topo, a, b = case
    for d in topo.profitable_directions(a, b):
        nb = topo.neighbor(a, d)
        assert nb is not None
        assert topo.distance(nb, b) == topo.distance(a, b) - 1


@given(mesh_and_two_nodes())
@settings(max_examples=200)
def test_unprofitable_moves_do_not_reduce_distance(case):
    topo, a, b = case
    profitable = topo.profitable_directions(a, b)
    for d in DIRECTIONS:
        if d in profitable:
            continue
        nb = topo.neighbor(a, d)
        if nb is not None:
            assert topo.distance(nb, b) >= topo.distance(a, b)


@given(mesh_and_two_nodes())
@settings(max_examples=200)
def test_distance_symmetric_and_triangle(case):
    topo, a, b = case
    assert topo.distance(a, b) == topo.distance(b, a)
    assert topo.distance(a, b) <= topo.diameter
    assert (topo.distance(a, b) == 0) == (a == b)


@given(mesh_and_two_nodes())
@settings(max_examples=200)
def test_profitable_empty_iff_at_destination(case):
    topo, a, b = case
    assert (not topo.profitable_directions(a, b)) == (a == b)


@given(mesh_and_two_nodes())
@settings(max_examples=200)
def test_displacement_consistent_with_distance(case):
    topo, a, b = case
    dx, dy = topo.displacement(a, b)
    assert abs(dx) + abs(dy) == topo.distance(a, b)


@given(mesh_and_two_nodes())
@settings(max_examples=100)
def test_greedy_profitable_walk_reaches_destination(case):
    """Following any profitable direction repeatedly always arrives."""
    topo, a, b = case
    pos = a
    for _ in range(topo.distance(a, b)):
        dirs = sorted(topo.profitable_directions(pos, b))
        assert dirs
        pos = topo.neighbor(pos, dirs[0])
    assert pos == b
