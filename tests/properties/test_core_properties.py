"""Property-based tests for the lower-bound machinery."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    InfeasibleConstructionError,
)
from repro.core.geometry import BoxGeometry
from repro.mesh.packet import Packet
from repro.mesh.topology import Mesh
from repro.mesh.visibility import PacketView


@given(st.integers(40, 2000), st.integers(1, 4))
@settings(max_examples=150, deadline=None)
def test_constants_feasible_or_explicit(n, k):
    """choose() either returns verified constants or raises the typed error."""
    try:
        consts = AdaptiveConstants.choose(n, k)
    except InfeasibleConstructionError:
        return
    assert consts.cn >= 1 and consts.dn >= 1 and consts.l_floor >= 1
    assert consts.c <= Fraction(1, 2 * (k + 2))
    assert consts.d <= Fraction(2, 5)
    # Constraint 1 verified exactly.
    assert consts.p + consts.l <= (1 - consts.c) * n
    # The placement always fits the 1-box.
    assert consts.total_construction_packets <= consts.cn**2


@given(st.integers(40, 2000), st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_dor_constants_levels_fit(n, k):
    try:
        consts = DimensionOrderConstants.choose(n, k)
    except InfeasibleConstructionError:
        return
    assert 1 <= consts.l_floor <= consts.cn
    assert consts.p <= n - consts.cn


@st.composite
def geometry_and_dest(draw):
    n = draw(st.sampled_from([60, 120, 216]))
    k = draw(st.integers(1, 2))
    try:
        consts = AdaptiveConstants.choose(n, k)
    except InfeasibleConstructionError:
        consts = AdaptiveConstants.choose(216, k)
    geo = BoxGeometry.from_constants(consts)
    i = draw(st.integers(1, geo.levels))
    j = draw(st.integers(0, geo.p - 1))
    tag = draw(st.sampled_from(["N", "E"]))
    return geo, tag, i, j


@given(geometry_and_dest())
@settings(max_examples=150)
def test_classify_inverts_destinations(case):
    geo, tag, i, j = case
    dest = geo.n_destination(i, j) if tag == "N" else geo.e_destination(i, j)
    assert geo.classify(dest) == (tag, i)


@given(geometry_and_dest(), st.integers(0, 59), st.integers(0, 59))
@settings(max_examples=150)
def test_lemma10_view_equality_under_exchange(case, ax, ay):
    """For any two packets in the (i-1)-box with destinations northeast of
    the i-box, exchanging destinations leaves their destination-exchangeable
    views identical (Lemma 10 as a property)."""
    geo, tag, i, j = case
    mesh = Mesh(geo.n)
    limit = geo.n_column(i - 1)
    pa = (ax % (limit + 1), ay % (limit + 1))
    pb = ((ax * 7 + 3) % (limit + 1), (ay * 5 + 1) % (limit + 1))
    x = Packet(1, pa, geo.n_destination(i, j))
    xp = Packet(2, pb, geo.e_destination(i, j))
    x.pos, xp.pos = pa, pb

    def fingerprints():
        out = []
        for p in (x, xp):
            view = PacketView(p, mesh.profitable_directions(p.pos, p.dest))
            out.append((view.key, view.source, view.state, view.profitable))
        return out

    before = fingerprints()
    x.exchange_destinations(xp)
    assert fingerprints() == before


@given(st.lists(st.integers(0, 1000), min_size=2, max_size=8, unique=True))
@settings(max_examples=100)
def test_exchange_sequence_involution(pids):
    """Applying any exchange sequence twice restores all destinations."""
    packets = [Packet(pid, (0, pid % 7), (pid % 13, pid % 11)) for pid in pids]
    import itertools

    seq = list(itertools.combinations(range(len(packets)), 2))[:6]
    original = [p.dest for p in packets]
    for a, b in seq + seq[::-1]:
        packets[a].exchange_destinations(packets[b])
    # seq followed by reversed seq undoes every swap.
    assert [p.dest for p in packets] == original
