"""The optimized fast paths must be invisible in results.

``BoundedDimensionOrderRouter`` opts into the context-free phase (a)
protocol (``fast_outqueue`` / ``outqueue_from_views``).  These tests pin
bit-identical behaviour against the reference path: the same router with
the fast path disabled, whose ``outqueue`` drives the identical policy
logic through a full ``NodeContext``.
"""

import pytest

from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation, transpose_permutation


class ContextPathRouter(BoundedDimensionOrderRouter):
    """The same policy forced through the NodeContext (reference) path."""

    fast_outqueue = False


def run(router, n, workload, *, validate, seed=0):
    mesh = Mesh(n)
    packets = (
        random_permutation(mesh, seed=seed)
        if workload == "random"
        else transpose_permutation(mesh)
    )
    sim = Simulator(mesh, router, packets, validate=validate)
    return sim.run(max_steps=50_000)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("validate", [False, True])
def test_runresult_identical_on_random_permutations(seed, validate):
    fast = run(BoundedDimensionOrderRouter(2), 12, "random",
               validate=validate, seed=seed)
    reference = run(ContextPathRouter(2), 12, "random",
                    validate=validate, seed=seed)
    assert fast == reference  # dataclass equality: every field, bit for bit
    assert fast.completed


def test_runresult_identical_on_transpose():
    fast = run(BoundedDimensionOrderRouter(2), 16, "transpose", validate=True)
    reference = run(ContextPathRouter(2), 16, "transpose", validate=True)
    assert fast == reference


def test_lockstep_configurations_identical():
    """Step-for-step: the full network configuration never diverges."""
    mesh_a, mesh_b = Mesh(10), Mesh(10)
    sim_fast = Simulator(
        mesh_a, BoundedDimensionOrderRouter(2),
        random_permutation(mesh_a, seed=3), validate=True,
    )
    sim_ref = Simulator(
        mesh_b, ContextPathRouter(2),
        random_permutation(mesh_b, seed=3), validate=True,
    )
    for step in range(500):
        if not sim_fast.queues and not sim_ref.queues:
            break
        sim_fast.step()
        sim_ref.step()
        assert sim_fast.configuration() == sim_ref.configuration(), (
            f"configurations diverged at step {step}"
        )
    else:
        pytest.fail("instance did not drain within 500 steps")


def test_fast_outqueue_flag_is_declared():
    assert BoundedDimensionOrderRouter.fast_outqueue is True
    assert ContextPathRouter.fast_outqueue is False
