"""Bench trials through the campaign harness: deterministic where promised.

The ``bench`` trial kind splits its metrics into deterministic top-level
fields (functions of the spec alone) and a nondeterministic ``timing``
block.  The deterministic part must agree across worker counts and across
repeated fresh runs; the split itself must be exact — no wall-clock key
may leak into the top level.
"""

import pytest

from repro.harness import CampaignSpec, TrialSpec, run_campaign


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-version")


def bench_campaign():
    return CampaignSpec(
        name="bench-determinism",
        trials=[
            TrialSpec(kind="bench", n=8, k=2, algorithm="bounded-dor", seed=0),
            TrialSpec(kind="bench", n=8, k=1, algorithm="hot-potato", seed=0),
        ],
    )


def deterministic_part(metrics):
    return {key: value for key, value in metrics.items() if key != "timing"}


def test_deterministic_metrics_agree_across_worker_counts(tmp_path):
    campaign = bench_campaign()
    serial = run_campaign(
        campaign, workers=1, base_dir=tmp_path / "serial",
        fresh=True, progress=False,
    )
    pooled = run_campaign(
        campaign, workers=4, base_dir=tmp_path / "pooled",
        fresh=True, progress=False,
    )
    for a, b in zip(serial.results, pooled.results):
        assert a.status == b.status == "ok"
        assert deterministic_part(a.metrics) == deterministic_part(b.metrics)


def test_timing_block_isolates_all_wall_clock_keys(tmp_path):
    run = run_campaign(
        bench_campaign(), workers=1, base_dir=tmp_path,
        fresh=True, progress=False,
    )
    for trial in run.results:
        timing = trial.metrics["timing"]
        assert timing["wall_s"] > 0.0
        assert timing["steps_per_s"] > 0.0
        for phase in "abcde":
            assert timing[f"phase_{phase}_s"] >= 0.0
        # No wall-clock field at the top level.
        for key in ("wall_s", "steps_per_s", "hooks_s"):
            assert key not in trial.metrics


def test_bench_metrics_match_route_trial_shape(tmp_path):
    """The deterministic fields agree with a plain route trial's account."""
    spec = TrialSpec(kind="bench", n=8, k=2, algorithm="bounded-dor", seed=0)
    route = TrialSpec(kind="route", n=8, k=2, algorithm="bounded-dor", seed=0)
    run = run_campaign(
        CampaignSpec(name="bench-vs-route", trials=[spec, route]),
        workers=1, base_dir=tmp_path, fresh=True, progress=False,
    )
    bench_metrics, route_metrics = (r.metrics for r in run.results)
    for key in ("completed", "steps", "delivered", "total_moves"):
        assert bench_metrics[key] == route_metrics[key]
