"""Tests for the per-phase wall-time probe and its simulator integration."""

from repro.mesh import Mesh, Simulator
from repro.perf import StepInstrumentation
from repro.perf.instrumentation import PHASES
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation


def run_instrumented(n=8, seed=0):
    mesh = Mesh(n)
    sim = Simulator(
        mesh, BoundedDimensionOrderRouter(2), random_permutation(mesh, seed=seed)
    )
    probe = StepInstrumentation()
    sim.instrument = probe
    return sim.run(max_steps=10_000), probe


class TestProbe:
    def test_marks_accumulate_and_partition_the_step(self):
        probe = StepInstrumentation()
        probe.begin_step()
        for phase in PHASES:
            probe.mark(phase)
        probe.end_step()
        assert probe.steps == 1
        assert all(probe.phase_s[p] >= 0.0 for p in PHASES)
        # The marks partition [t0, last-mark], which end_step's wall
        # measurement contains.
        assert sum(probe.phase_s.values()) <= probe.wall_s

    def test_repeated_mark_accumulates_into_one_bucket(self):
        probe = StepInstrumentation()
        probe.begin_step()
        probe.mark("hooks")
        probe.mark("a")
        probe.mark("hooks")  # post-step hook block reuses the bucket
        probe.end_step()
        assert set(probe.phase_s) == set(PHASES)

    def test_snapshot_keys(self):
        probe = StepInstrumentation()
        expected = {"wall_s", "steps_per_s", "hooks_s"} | {
            f"phase_{p}_s" for p in "abcde"
        }
        assert set(probe.snapshot()) == expected

    def test_snapshot_throughput_zero_before_any_step(self):
        assert StepInstrumentation().snapshot()["steps_per_s"] == 0.0


class TestSimulatorIntegration:
    def test_probe_counts_every_step(self):
        result, probe = run_instrumented()
        assert result.completed
        assert probe.steps == result.steps

    def test_phase_times_nonnegative_and_bounded_by_wall(self):
        _result, probe = run_instrumented()
        assert probe.wall_s > 0.0
        assert all(seconds >= 0.0 for seconds in probe.phase_s.values())
        assert sum(probe.phase_s.values()) <= probe.wall_s + 1e-9

    def test_counters_merge_probe_snapshot(self):
        result, probe = run_instrumented()
        for key in ("scheduled_moves", "accepted_moves", "refused_moves",
                    "injected_packets", "wall_s", "phase_a_s"):
            assert key in result.counters
        assert result.counters["wall_s"] == probe.wall_s
        assert result.counters["accepted_moves"] == result.total_moves

    def test_detached_run_has_only_deterministic_counters(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(2), random_permutation(mesh, seed=0)
        )
        result = sim.run(max_steps=10_000)
        assert set(result.counters) == {
            "scheduled_moves",
            "accepted_moves",
            "refused_moves",
            "injected_packets",
        }

    def test_scheduling_counters_unaffected_by_probe(self):
        instrumented, _probe = run_instrumented()
        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(2), random_permutation(mesh, seed=0)
        )
        bare = sim.run(max_steps=10_000)
        for key in bare.counters:
            assert instrumented.counters[key] == bare.counters[key]
        assert instrumented.steps == bare.steps
