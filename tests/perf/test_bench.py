"""Unit tests for the bench baseline: keys, comparison, merge-on-write."""

import json
from types import SimpleNamespace

import pytest

from repro.harness.runner import TrialResult
from repro.harness.specs import TrialSpec
from repro.perf.bench import (
    DEFAULT_TOLERANCE,
    BenchComparison,
    bench_key,
    compare_and_merge,
    load_baseline,
)


def bench_spec(**overrides):
    fields = dict(kind="bench", n=16, k=2, algorithm="bounded-dor", seed=0)
    fields.update(overrides)
    return TrialSpec(**fields)


def trial(spec, steps_per_s, *, status="ok", engine=None):
    metrics = None
    if status == "ok":
        metrics = {
            "engine": engine if engine is not None else spec.engine,
            "steps": 40,
            "completed": True,
            "total_moves": 1000,
            "scheduled_moves": 1100,
            "refused_moves": 100,
            "repeats": 3,
            "timing": {"steps_per_s": steps_per_s, "wall_s": 40 / steps_per_s},
        }
    return TrialResult(
        index=0, key="x", spec=spec, status=status,
        metrics=metrics, error=None, wall_s=0.0, cached=False,
    )


def fake_run(*trials):
    return SimpleNamespace(results=list(trials))


class TestBenchKey:
    def test_key_shape(self):
        assert bench_key(bench_spec()) == "reference/bounded-dor/random/n16/k2/s0"

    def test_key_distinguishes_every_axis(self):
        specs = [
            bench_spec(),
            bench_spec(n=32),
            bench_spec(k=1, algorithm="hot-potato"),
            bench_spec(seed=7),
            bench_spec(engine="array"),
        ]
        assert len({bench_key(s) for s in specs}) == len(specs)

    def test_engine_leads_the_key(self):
        """Array and reference entries must never ratchet each other."""
        assert bench_key(bench_spec(engine="array")).startswith("array/")
        assert bench_key(bench_spec()).startswith("reference/")


class TestComparison:
    def test_new_cell_has_no_change_and_never_regresses(self):
        c = BenchComparison(
            key="k", steps_per_s=100.0, baseline_steps_per_s=None,
            tolerance=DEFAULT_TOLERANCE,
        )
        assert c.change is None and not c.regressed

    def test_drop_within_tolerance_passes(self):
        c = BenchComparison(
            key="k", steps_per_s=85.0, baseline_steps_per_s=100.0, tolerance=0.2
        )
        assert c.change == pytest.approx(-0.15) and not c.regressed

    def test_drop_beyond_tolerance_regresses(self):
        c = BenchComparison(
            key="k", steps_per_s=70.0, baseline_steps_per_s=100.0, tolerance=0.2
        )
        assert c.regressed

    def test_speedup_never_regresses(self):
        c = BenchComparison(
            key="k", steps_per_s=300.0, baseline_steps_per_s=100.0, tolerance=0.2
        )
        assert c.change == pytest.approx(2.0) and not c.regressed


class TestCompareAndMerge:
    def test_first_run_seeds_the_baseline(self, tmp_path):
        path = tmp_path / "bench.json"
        report = compare_and_merge(
            fake_run(trial(bench_spec(), 100.0)), path, tolerance=0.2
        )
        assert report.ok
        stored = json.loads(path.read_text())
        assert stored["format"] == "repro-bench-v1"
        entry = stored["entries"]["reference/bounded-dor/random/n16/k2/s0"]
        assert entry["steps_per_s"] == 100.0
        assert entry["repeats"] == 3

    def test_regression_detected_against_stored_entry(self, tmp_path):
        path = tmp_path / "bench.json"
        compare_and_merge(fake_run(trial(bench_spec(), 100.0)), path, tolerance=0.2)
        report = compare_and_merge(
            fake_run(trial(bench_spec(), 50.0)), path, tolerance=0.2
        )
        assert not report.ok
        (regression,) = report.regressions
        assert regression.change == pytest.approx(-0.5)
        assert "!" in report.table()

    def test_merge_preserves_cells_not_run_this_time(self, tmp_path):
        """A smoke run must never clobber the full matrix."""
        path = tmp_path / "bench.json"
        compare_and_merge(
            fake_run(trial(bench_spec(), 100.0), trial(bench_spec(n=32), 25.0)),
            path, tolerance=0.2,
        )
        compare_and_merge(fake_run(trial(bench_spec(), 110.0)), path, tolerance=0.2)
        stored = json.loads(path.read_text())["entries"]
        assert stored["reference/bounded-dor/random/n16/k2/s0"]["steps_per_s"] == 110.0
        assert stored["reference/bounded-dor/random/n32/k2/s0"]["steps_per_s"] == 25.0

    def test_update_false_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "bench.json"
        compare_and_merge(fake_run(trial(bench_spec(), 100.0)), path, tolerance=0.2)
        before = path.read_text()
        report = compare_and_merge(
            fake_run(trial(bench_spec(), 50.0)), path, tolerance=0.2, update=False
        )
        assert not report.ok
        assert path.read_text() == before

    def test_failed_trial_reported_and_file_never_written(self, tmp_path):
        path = tmp_path / "bench.json"
        report = compare_and_merge(
            fake_run(trial(bench_spec(), 0.0, status="error")), path, tolerance=0.2
        )
        assert not report.ok
        assert report.failed_trials == ["reference/bounded-dor/random/n16/k2/s0"]
        assert not path.exists()  # a not-ok report must not touch the file
        assert "FAILED" in report.table()

    def test_regressed_cell_keeps_its_baseline_entry(self, tmp_path):
        """The headline ratchet fix: a regression must keep firing.

        Before the fix, a regressed cell overwrote its own baseline entry
        under ``update=True``, so the regression fired once and the
        slowdown silently became the new normal.
        """
        path = tmp_path / "bench.json"
        compare_and_merge(fake_run(trial(bench_spec(), 100.0)), path, tolerance=0.2)
        before = path.read_text()
        report = compare_and_merge(
            fake_run(trial(bench_spec(), 50.0)), path, tolerance=0.2
        )
        assert not report.ok
        assert path.read_text() == before  # entry (and file) unchanged
        # The identical rerun is still a regression against the same entry.
        again = compare_and_merge(
            fake_run(trial(bench_spec(), 50.0)), path, tolerance=0.2
        )
        assert not again.ok
        (regression,) = again.regressions
        assert regression.baseline_steps_per_s == 100.0

    def test_mixed_report_with_regression_writes_nothing(self, tmp_path):
        """One regressed cell blocks the whole write, even for ok cells."""
        path = tmp_path / "bench.json"
        compare_and_merge(
            fake_run(trial(bench_spec(), 100.0), trial(bench_spec(n=32), 25.0)),
            path, tolerance=0.2,
        )
        before = path.read_text()
        report = compare_and_merge(
            fake_run(trial(bench_spec(), 50.0), trial(bench_spec(n=32), 26.0)),
            path, tolerance=0.2,
        )
        assert not report.ok
        assert path.read_text() == before

    def test_engine_fallback_refused_not_recorded(self, tmp_path):
        """The silent-fallback bugfix: a trial whose actual engine differs
        from the requested one must fail the report and write nothing --
        reference-speed numbers under an ``array/`` key would poison the
        array ratchet forever."""
        path = tmp_path / "bench.json"
        report = compare_and_merge(
            fake_run(trial(bench_spec(engine="array"), 5.0, engine="reference")),
            path, tolerance=0.2,
        )
        assert not report.ok
        (failed,) = report.failed_trials
        assert "array" in failed and "reference" in failed
        assert not path.exists()

    def test_unported_router_array_request_writes_no_array_key(self, tmp_path):
        """End-to-end regression: run the real bench executor with
        engine='array' for a router the backend has not ported, and
        assert no ``array/`` baseline entry appears."""
        from repro.harness.execute import execute_trial

        spec = bench_spec(
            algorithm="alternating-adaptive", n=6, k=2, max_steps=200,
            engine="array", queues="incoming",
        )
        metrics = execute_trial(spec)
        assert metrics["engine"] == "reference"  # the fallback happened
        path = tmp_path / "bench.json"
        report = compare_and_merge(
            fake_run(
                TrialResult(
                    index=0, key="x", spec=spec, status="ok",
                    metrics=metrics, error=None, wall_s=0.0, cached=False,
                )
            ),
            path, tolerance=0.2,
        )
        assert not report.ok
        assert not path.exists()

    def test_entries_sorted_for_stable_diffs(self, tmp_path):
        path = tmp_path / "bench.json"
        compare_and_merge(
            fake_run(
                trial(bench_spec(k=1, algorithm="hot-potato"), 80.0),
                trial(bench_spec(), 100.0),
            ),
            path, tolerance=0.2,
        )
        keys = list(json.loads(path.read_text())["entries"])
        assert keys == sorted(keys)


class TestLoadBaseline:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "none.json") == {"entries": {}}

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="malformed bench baseline"):
            load_baseline(path)
