"""Credit-based adaptive router: contract, behaviour, and golden step tables.

The step tables pin deliveries-per-step for deterministic workloads on the
2D and 3D mesh.  Credit steering reads only destination-free queue
occupancy, so these numbers are stable release artifacts exactly like the
tables in ``tests/test_golden_regressions.py``: if a refactor moves them,
that is a behavioural change and the pin must be updated deliberately.
"""

from collections import Counter

import pytest

from repro.mesh import Mesh, Simulator, Torus
from repro.mesh.ndtopology import MeshND, SparsePillarMesh, TorusND, build_topology
from repro.routing import CreditAdaptiveRouter
from repro.workloads import random_permutation, transpose_permutation


def _run(topo, workload, k=2, max_steps=10_000):
    sim = Simulator(topo, CreditAdaptiveRouter(k), workload(topo))
    result = sim.run(max_steps=max_steps)
    return sim, result


def _step_table(sim, result):
    hist = Counter(sim.delivery_times.values())
    return tuple(hist[s] for s in range(1, result.steps + 1))


class TestContract:
    def test_contract_flags(self):
        router = CreditAdaptiveRouter(2)
        assert router.name == "credit-adaptive"
        assert router.destination_exchangeable
        assert router.minimal
        assert router.uses_credit

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            CreditAdaptiveRouter(0)


class TestGoldenStepTables:
    """Pinned (steps, max_queue, total_moves, deliveries-per-step)."""

    def test_mesh4_transpose(self):
        sim, result = _run(Mesh(4), transpose_permutation)
        assert result.completed
        assert (result.steps, result.max_queue_len, result.total_moves) == (6, 1, 40)
        assert _step_table(sim, result) == (0, 6, 0, 4, 0, 2)

    def test_mesh4_random_seed7(self):
        sim, result = _run(Mesh(4), lambda t: random_permutation(t, seed=7))
        assert result.completed
        assert (result.steps, result.max_queue_len, result.total_moves) == (5, 1, 32)
        assert _step_table(sim, result) == (4, 4, 5, 0, 1)

    def test_mesh3d_transpose(self):
        sim, result = _run(MeshND((3, 3, 3)), transpose_permutation)
        assert result.completed
        assert (result.steps, result.max_queue_len, result.total_moves) == (4, 1, 48)
        assert _step_table(sim, result) == (0, 12, 0, 6)

    def test_mesh3d_random_seed7(self):
        sim, result = _run(MeshND((3, 3, 3)), lambda t: random_permutation(t, seed=7))
        assert result.completed
        assert (result.steps, result.max_queue_len, result.total_moves) == (5, 1, 74)
        assert _step_table(sim, result) == (6, 6, 8, 3, 4)


class TestEveryTopology:
    @pytest.mark.parametrize("name", ["mesh", "torus", "mesh3d", "torus3d", "pillar"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_routes_random_permutation(self, name, k):
        topo = build_topology(name, 4)
        sim, result = _run(topo, lambda t: random_permutation(t, seed=3), k=k)
        assert result.completed, f"{name} k={k} stalled"
        assert result.max_queue_len <= k

    def test_deterministic_across_runs(self):
        runs = []
        for _ in range(2):
            sim, result = _run(
                TorusND((4, 4, 4)), lambda t: random_permutation(t, seed=11)
            )
            runs.append((result.steps, result.total_moves, dict(sim.delivery_times)))
        assert runs[0] == runs[1]

    def test_queue_bound_holds_under_hotspot_pressure(self):
        """Many-to-few traffic on the pillar mesh must respect capacity k."""
        topo = SparsePillarMesh(4, layers=3)
        targets = [(0, 0, 0), (3, 3, 2)]
        from repro.workloads import packets_from_mapping

        mapping = {
            node: targets[topo.node_index(node) % 2] for node in topo.nodes()
        }
        sim = Simulator(
            topo,
            CreditAdaptiveRouter(2),
            packets_from_mapping(mapping, check_permutation=False),
        )
        result = sim.run(max_steps=10_000)
        assert result.completed
        assert result.max_queue_len <= 2


class TestEscapeDiscipline:
    def test_escape_axis_is_highest(self):
        router = CreditAdaptiveRouter(2)
        topo = MeshND((3, 3, 3))
        router.bind_topology(topo)
        assert router._escape_axis == topo.dims - 1

    def test_torus_wrap_traffic_completes_at_k1(self):
        _, result = _run(Torus(5), transpose_permutation, k=1)
        assert result.completed
