"""Tests for the farthest-first dimension-order router."""

import pytest

from repro.mesh import Mesh, Packet, Simulator
from repro.routing import FarthestFirstRouter
from repro.workloads import random_permutation, transpose_permutation


class TestFarthestFirst:
    def test_not_destination_exchangeable(self):
        assert not FarthestFirstRouter(2).destination_exchangeable

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_incoming_model_terminates(self, k):
        mesh = Mesh(12)
        for seed in range(3):
            result = Simulator(
                mesh, FarthestFirstRouter(k), random_permutation(mesh, seed=seed)
            ).run(20_000)
            assert result.completed, f"k={k} seed={seed} stalled"
            assert result.max_queue_len <= k

    def test_farthest_packet_moves_first(self):
        """Two packets contending for the same outlink: farther one wins."""
        mesh = Mesh(10)
        near = Packet(0, (2, 0), (4, 0))  # 2 to go
        far = Packet(1, (2, 1), (9, 1))  # 7 to go -- different rows so no
        # contention; instead put both in one node via same source row:
        near = Packet(0, (2, 0), (4, 0))
        far = Packet(1, (2, 0), (9, 0))
        sim = Simulator(mesh, FarthestFirstRouter(2, "central"), [near, far])
        moves = sim.step()
        moved_pids = {mv.packet.pid for mv in moves}
        assert moved_pids == {1}  # only the farther packet advanced east

    def test_transpose_completes_quickly(self):
        mesh = Mesh(16)
        result = Simulator(
            mesh, FarthestFirstRouter(2), transpose_permutation(mesh)
        ).run(5000)
        assert result.completed
        # Farthest-first is near-optimal on benign instances.
        assert result.steps <= 4 * mesh.diameter

    def test_delivering_packets_always_accepted_central(self):
        """One-hop packets bypass a full central queue (consumption)."""
        mesh = Mesh(6)
        # (1,0) holds k=1 packet that is stuck eastbound behind (2,0).
        stuck = Packet(0, (1, 0), (3, 0))
        plug = Packet(1, (2, 0), (4, 0))
        arriving = Packet(2, (0, 0), (1, 0))  # delivered into full (1,0)
        sim = Simulator(
            mesh, FarthestFirstRouter(1, "central"), [stuck, plug, arriving]
        )
        sim.step()
        assert 2 in sim.delivery_times  # delivered despite the full queue


class TestCentralModelDocumentedDeadlock:
    def test_head_on_exchange_deadlock_exists(self):
        """The documented central-queue pathology: two full neighbours
        refusing each other's transit packets forever."""
        mesh = Mesh(4)
        a = Packet(0, (1, 0), (3, 0))  # eastbound transit
        b = Packet(1, (2, 0), (0, 0))  # westbound transit
        sim = Simulator(mesh, FarthestFirstRouter(1, "central"), [a, b])
        result = sim.run(max_steps=50)
        assert not result.completed  # deadlock is real
        assert a.pos == (1, 0) and b.pos == (2, 0)

    def test_incoming_model_resolves_same_instance(self):
        mesh = Mesh(4)
        a = Packet(0, (1, 0), (3, 0))
        b = Packet(1, (2, 0), (0, 0))
        result = Simulator(mesh, FarthestFirstRouter(1), [a, b]).run(50)
        assert result.completed
