"""Tests for the sort-then-route baseline (shearsort by destination)."""

import pytest

from repro.mesh import Mesh, Packet
from repro.routing import ShearsortRouter
from repro.workloads import (
    bit_reversal_permutation,
    random_partial_permutation,
    random_permutation,
    transpose_permutation,
)


class TestSnakeOrder:
    def test_snake_index_roundtrip(self):
        router = ShearsortRouter(6)
        for idx in range(36):
            assert router.snake_index(router.node_at_snake(idx)) == idx

    def test_snake_alternates_direction(self):
        router = ShearsortRouter(4)
        assert router.node_at_snake(0) == (0, 0)
        assert router.node_at_snake(3) == (3, 0)
        assert router.node_at_snake(4) == (3, 1)  # row 1 runs east-to-west
        assert router.node_at_snake(7) == (0, 1)


class TestShearsortRouting:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_full_permutation_delivered_by_sort_alone(self, n):
        mesh = Mesh(n)
        for seed in range(2):
            result = ShearsortRouter(n).route(random_permutation(mesh, seed=seed))
            assert result.completed
            # Rank r of a full permutation IS snake position r: the sort is
            # the route.
            assert result.route_steps == 0

    def test_structured_permutations(self):
        mesh = Mesh(16)
        for packets in (transpose_permutation(mesh), bit_reversal_permutation(mesh)):
            result = ShearsortRouter(16).route(packets)
            assert result.completed

    def test_partial_permutation_needs_cleanup(self):
        mesh = Mesh(12)
        result = ShearsortRouter(12).route(
            random_partial_permutation(mesh, 0.4, seed=3)
        )
        assert result.completed
        assert result.route_steps > 0
        assert result.max_node_load <= 6  # sorted arrangement stays balanced

    def test_sort_time_is_n_log_n(self):
        """sort_steps = (ceil(log2 n) + 2) * n row/column passes."""
        import math

        for n in (8, 16, 32):
            result = ShearsortRouter(n).route(random_permutation(Mesh(n), seed=0))
            rounds = math.ceil(math.log2(n)) + 1
            assert result.sort_steps == (2 * rounds + 1) * n

    def test_one_packet_per_node_enforced(self):
        router = ShearsortRouter(8)
        with pytest.raises(ValueError, match="one packet per node"):
            router.route([Packet(0, (1, 1), (2, 2)), Packet(1, (1, 1), (3, 3))])

    def test_nonminimal_by_nature(self):
        """Sorting moves a packet away from its destination: the defining
        reason this family sits outside the paper's lower-bound model."""
        n = 8
        mesh = Mesh(n)
        packets = random_permutation(mesh, seed=4)
        dist_before = {
            p.pid: mesh.distance(p.source, p.dest) for p in packets
        }
        # Track one packet through the sort: its total traversed distance
        # exceeds its shortest path on most seeds; verify at least one
        # packet ends the sort farther than it started at some point by
        # comparing swap counts (> sum of distances / 2 swaps overall).
        result = ShearsortRouter(n).route(packets)
        assert result.completed
        assert 2 * result.swaps > sum(dist_before.values())

    def test_degenerate_small_mesh(self):
        result = ShearsortRouter(2).route(
            random_permutation(Mesh(2), seed=0)
        )
        assert result.completed
