"""Tests for the Theorem 15 router: termination, queue bounds, invariants."""

import pytest

from repro.mesh import Mesh, Packet, Simulator
from repro.mesh.directions import Direction
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import (
    bit_reversal_permutation,
    random_permutation,
    transpose_permutation,
)


class TestTheorem15Router:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_routes_every_permutation_family(self, k):
        mesh = Mesh(16)
        for packets in (
            random_permutation(mesh, seed=0),
            transpose_permutation(mesh),
            bit_reversal_permutation(mesh),
        ):
            result = Simulator(mesh, BoundedDimensionOrderRouter(k), packets).run(
                50_000
            )
            assert result.completed
            assert result.max_queue_len <= k

    def test_north_south_queues_always_eject(self):
        """Thm 15's key invariant: a nonempty N/S queue ejects every step."""
        mesh = Mesh(12)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            random_permutation(mesh, seed=7),
        )
        while not sim.done and sim.time < 5000:
            before = {
                (node, key): [p.pid for p in q]
                for node, qs in sim.queues.items()
                for key, q in qs.items()
                if key in (Direction.N, Direction.S) and q
            }
            sim.step()
            for (node, key), pids in before.items():
                after = {p.pid for p in sim.queues.get(node, {}).get(key, [])}
                # At least one of the packets that was present has left.
                assert any(pid not in after for pid in pids), (
                    f"nonempty {key.name} queue at {node} ejected nothing"
                )
        assert sim.done

    def test_horizontal_before_vertical(self):
        """A packet never sits in an N/S queue while horizontal moves remain."""
        mesh = Mesh(10)
        sim = Simulator(
            mesh,
            BoundedDimensionOrderRouter(2),
            random_permutation(mesh, seed=2),
        )
        while not sim.done and sim.time < 5000:
            sim.step()
            for node, qs in sim.queues.items():
                for key in (Direction.N, Direction.S):
                    for p in qs.get(key, []):
                        assert p.pos[0] == p.dest[0], (
                            f"packet {p.pid} in a vertical queue at {node} "
                            f"but not yet in its destination column"
                        )
        assert sim.done

    def test_time_bound_shape_theorem15(self):
        """Measured time stays within a small multiple of n^2/k + n."""
        for n in (8, 16, 24):
            mesh = Mesh(n)
            for k in (1, 2):
                worst = 0
                for seed in range(2):
                    result = Simulator(
                        mesh,
                        BoundedDimensionOrderRouter(k),
                        random_permutation(mesh, seed=seed),
                    ).run(200_000)
                    assert result.completed
                    worst = max(worst, result.steps)
                bound = (n * n) // k + 2 * n
                assert worst <= 4 * bound

    def test_torus_not_required(self):
        """Router works on rectangular meshes too."""
        mesh = Mesh(6, 12)
        result = Simulator(
            mesh, BoundedDimensionOrderRouter(2), random_permutation(mesh, seed=1)
        ).run(10_000)
        assert result.completed
