"""Tests for the hot-potato (deflection) and randomized adaptive routers."""

import pytest

from repro.mesh import Mesh, Packet, Simulator, Torus
from repro.routing import HotPotatoRouter, RandomizedAdaptiveRouter
from repro.workloads import random_partial_permutation, random_permutation


class TestHotPotato:
    def test_is_nonminimal_and_destination_exchangeable(self):
        r = HotPotatoRouter()
        assert not r.minimal
        assert r.destination_exchangeable

    @pytest.mark.parametrize("seed", range(3))
    def test_full_permutation_delivered(self, seed):
        mesh = Mesh(12)
        result = Simulator(mesh, HotPotatoRouter(), random_permutation(mesh, seed=seed)).run(
            5000
        )
        assert result.completed
        assert result.max_node_load <= 4  # bufferless: one slot per inlink

    def test_deflections_cause_extra_moves(self):
        """Nonminimal routing shows up as total moves above the distance sum."""
        mesh = Mesh(12)
        packets = random_permutation(mesh, seed=1)
        minimal_moves = sum(mesh.distance(p.source, p.dest) for p in packets)
        result = Simulator(mesh, HotPotatoRouter(), packets).run(5000)
        assert result.completed
        assert result.total_moves > minimal_moves

    def test_everything_received_leaves_next_step(self):
        """The bufferless invariant: no packet rests two steps in a row in
        an interior node (it is always scheduled somewhere)."""
        mesh = Mesh(8)
        packets = random_permutation(mesh, seed=2)
        sim = Simulator(mesh, HotPotatoRouter(), packets)
        last_pos: dict[int, tuple[int, int]] = {}
        stalls = 0
        while not sim.done and sim.time < 500:
            sim.step()
            for p in sim.iter_packets():
                if last_pos.get(p.pid) == p.pos:
                    stalls += 1
                last_pos[p.pid] = p.pos
        assert sim.done
        assert stalls == 0  # full outlink assignment never left one behind

    def test_works_on_torus(self):
        torus = Torus(8)
        result = Simulator(torus, HotPotatoRouter(), random_permutation(torus, seed=3)).run(
            5000
        )
        assert result.completed

    def test_age_priority_delivers_head_on_pair(self):
        """The k=1 central-queue killer instance is trivial for deflection."""
        mesh = Mesh(4)
        a = Packet(0, (1, 0), (3, 0))
        b = Packet(1, (2, 0), (0, 0))
        result = Simulator(mesh, HotPotatoRouter(), [a, b]).run(50)
        assert result.completed


class TestRandomizedAdaptive:
    def test_flags(self):
        r = RandomizedAdaptiveRouter(2)
        assert r.minimal
        assert r.destination_exchangeable  # decisions never read destinations
        assert r.deterministic is False  # but Theorem 14 needs determinism

    def test_incoming_model_routes_permutations(self):
        mesh = Mesh(12)
        for seed in range(3):
            result = Simulator(
                mesh,
                RandomizedAdaptiveRouter(2, seed=seed, queue_kind="incoming"),
                random_permutation(mesh, seed=seed),
            ).run(20_000)
            assert result.completed
            assert result.max_queue_len <= 2

    def test_seed_reproducibility(self):
        mesh = Mesh(10)
        runs = [
            Simulator(
                mesh,
                RandomizedAdaptiveRouter(2, seed=7, queue_kind="incoming"),
                random_permutation(mesh, seed=1),
            ).run(20_000)
            for _ in range(2)
        ]
        assert runs[0].delivery_times == runs[1].delivery_times

    def test_different_seeds_differ(self):
        mesh = Mesh(10)
        times = set()
        for seed in range(6):
            r = Simulator(
                mesh,
                RandomizedAdaptiveRouter(2, seed=seed, queue_kind="incoming"),
                random_permutation(mesh, seed=1),
            ).run(20_000)
            times.add(tuple(sorted(r.delivery_times.items())))
        assert len(times) > 1  # the coin flips matter

    def test_minimality_still_enforced(self):
        """Randomized, but still minimal: moves validated by the simulator."""
        mesh = Mesh(10)
        packets = random_partial_permutation(mesh, 0.2, seed=3)
        expected = sum(mesh.distance(p.source, p.dest) for p in packets)
        result = Simulator(
            mesh,
            RandomizedAdaptiveRouter(3, seed=1, queue_kind="incoming"),
            packets,
        ).run(20_000)
        assert result.completed
        assert result.total_moves == expected
