"""Tests for the Section 2 example router (dimension order, central queue)."""

import pytest

from repro.mesh import Mesh, Packet, Simulator
from repro.routing import DimensionOrderRouter
from repro.routing.base import desired_dimension_order_direction
from repro.mesh.directions import Direction
from repro.workloads import (
    packets_from_mapping,
    random_permutation,
    rotation_permutation,
)


class TestDesiredDirection:
    def test_horizontal_takes_precedence(self):
        assert (
            desired_dimension_order_direction(frozenset({Direction.N, Direction.E}))
            == Direction.E
        )
        assert (
            desired_dimension_order_direction(frozenset({Direction.S, Direction.W}))
            == Direction.W
        )

    def test_vertical_when_no_horizontal(self):
        assert desired_dimension_order_direction(frozenset({Direction.N})) == Direction.N
        assert desired_dimension_order_direction(frozenset({Direction.S})) == Direction.S

    def test_empty_gives_none(self):
        assert desired_dimension_order_direction(frozenset()) is None


class TestDimensionOrderRouter:
    def test_is_destination_exchangeable_and_minimal(self):
        r = DimensionOrderRouter(2)
        assert r.destination_exchangeable
        assert r.minimal

    def test_packets_never_leave_bounding_box(self):
        mesh = Mesh(8)
        packets = random_permutation(mesh, seed=3)
        boxes = {
            p.pid: (
                min(p.source[0], p.dest[0]),
                max(p.source[0], p.dest[0]),
                min(p.source[1], p.dest[1]),
                max(p.source[1], p.dest[1]),
            )
            for p in packets
        }
        sim = Simulator(mesh, DimensionOrderRouter(4), packets)
        while not sim.done and sim.time < 1000:
            sim.step()
            for p in sim.iter_packets():
                x0, x1, y0, y1 = boxes[p.pid]
                assert x0 <= p.pos[0] <= x1 and y0 <= p.pos[1] <= y1
        assert sim.done

    def test_monotone_distance_decrease(self):
        """Minimal routing: remaining distance never increases."""
        mesh = Mesh(8)
        packets = random_permutation(mesh, seed=5)
        sim = Simulator(mesh, DimensionOrderRouter(4), packets)
        last = {p.pid: mesh.distance(p.pos, p.dest) for p in packets}
        while not sim.done and sim.time < 1000:
            sim.step()
            for p in sim.iter_packets():
                d = mesh.distance(p.pos, p.dest)
                assert d <= last[p.pid]
                last[p.pid] = d
        assert sim.done

    def test_eastward_shift_pipelines_without_contention(self):
        """A one-directional shift never exceeds one packet per node."""
        mesh = Mesh(8)
        packets = packets_from_mapping(
            {(x, y): (x + 3, y) for x in range(5) for y in range(8)}
        )
        result = Simulator(mesh, DimensionOrderRouter(1), packets).run(100)
        assert result.completed
        assert result.max_node_load == 1

    def test_full_permutation_with_k1_is_gridlocked(self):
        """Model reality: a full permutation fills every k=1 central queue,
        and a conservative accept-if-space inqueue then admits nothing --
        the network is gridlocked from step 0.  (Theorem 15's incoming-queue
        organization exists to avoid precisely this.)"""
        mesh = Mesh(6)
        packets = rotation_permutation(mesh, dx=3, dy=0)
        result = Simulator(mesh, DimensionOrderRouter(1), packets).run(50)
        assert not result.completed
        assert result.total_moves == 0

    def test_random_permutations_complete_with_slack(self):
        mesh = Mesh(12)
        for seed in range(3):
            result = Simulator(
                mesh, DimensionOrderRouter(4), random_permutation(mesh, seed=seed)
            ).run(5000)
            assert result.completed
            assert result.max_queue_len <= 4

    def test_deterministic_replay(self):
        mesh = Mesh(10)
        r1 = Simulator(
            mesh, DimensionOrderRouter(3), random_permutation(mesh, seed=11)
        ).run(5000)
        r2 = Simulator(
            mesh, DimensionOrderRouter(3), random_permutation(mesh, seed=11)
        ).run(5000)
        assert r1.delivery_times == r2.delivery_times
