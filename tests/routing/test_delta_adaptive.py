"""Tests for the bounded-excursion (delta) router."""

import pytest

from repro.mesh import Mesh, Packet, PathTracer, Simulator
from repro.routing import BoundedExcursionRouter, GreedyAdaptiveRouter
from repro.workloads import random_partial_permutation, random_permutation


def head_on_pair():
    """Two interior packets facing each other through full k=1 queues."""
    return [Packet(0, (1, 1), (3, 1)), Packet(1, (2, 1), (0, 1))]


class TestBoundedExcursion:
    def test_flags(self):
        r = BoundedExcursionRouter(1, delta=2)
        assert r.destination_exchangeable
        assert not r.minimal
        assert r.delta == 2

    def test_delta_zero_equals_minimal_behaviour(self):
        """With no budget the router is purely minimal: the head-on pair
        deadlocks exactly like the minimal adaptive router."""
        mesh = Mesh(4)
        r0 = Simulator(mesh, BoundedExcursionRouter(1, delta=0), head_on_pair()).run(100)
        rm = Simulator(mesh, GreedyAdaptiveRouter(1), head_on_pair()).run(100)
        assert not r0.completed and not rm.completed

    def test_delta_one_dissolves_head_on_deadlock(self):
        mesh = Mesh(4)
        result = Simulator(
            mesh, BoundedExcursionRouter(1, delta=1), head_on_pair()
        ).run(100)
        assert result.completed
        assert result.steps <= 12

    def test_excursion_respects_delta(self):
        """No packet ever strays more than delta beyond its source-dest
        rectangle (the defining property of the Section 5 class)."""
        mesh = Mesh(10)
        delta = 2
        packets = random_partial_permutation(mesh, 0.15, seed=1)
        rects = {
            p.pid: (
                min(p.source[0], p.dest[0]), max(p.source[0], p.dest[0]),
                min(p.source[1], p.dest[1]), max(p.source[1], p.dest[1]),
            )
            for p in packets
        }
        tracer = PathTracer()
        sim = Simulator(
            mesh, BoundedExcursionRouter(2, delta=delta), packets, interceptor=tracer
        )
        sim.run(5_000)
        for pid, path in tracer.paths.items():
            x0, x1, y0, y1 = rects[pid]
            for x, y in path:
                assert x0 - delta <= x <= x1 + delta
                assert y0 - delta <= y <= y1 + delta

    def test_deflections_count_against_moves(self):
        """Completed runs may exceed the shortest-path move total by at most
        2*delta per packet (each deflection costs one move out and one back)."""
        mesh = Mesh(4)
        packets = head_on_pair()
        minimal_moves = sum(mesh.distance(p.source, p.dest) for p in packets)
        result = Simulator(mesh, BoundedExcursionRouter(1, delta=1), packets).run(100)
        assert result.completed
        assert minimal_moves < result.total_moves <= minimal_moves + 2 * 1 * len(packets)

    def test_dense_knots_exhaust_fixed_budgets(self):
        """The documented limitation: on dense central-queue instances a
        fixed delta does not restore progress -- consistent with Section 5's
        bound remaining Omega(n^2/((delta+1)^3 k^2)) for every fixed delta."""
        mesh = Mesh(12)
        result = Simulator(
            mesh,
            BoundedExcursionRouter(1, delta=2),
            random_permutation(mesh, seed=0),
        ).run(3_000)
        assert not result.completed

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            BoundedExcursionRouter(1, delta=-1)
