"""Tests for the minimal adaptive routers."""

import pytest

from repro.mesh import Mesh, Packet, Simulator
from repro.mesh.directions import Direction
from repro.routing import AlternatingAdaptiveRouter, GreedyAdaptiveRouter
from repro.workloads import random_permutation, transpose_permutation


@pytest.mark.parametrize(
    "factory",
    [
        lambda: AlternatingAdaptiveRouter(2, "incoming"),
        lambda: GreedyAdaptiveRouter(2, "incoming"),
        lambda: AlternatingAdaptiveRouter(4, "central"),
        lambda: GreedyAdaptiveRouter(4, "central"),
    ],
)
class TestAdaptiveCommon:
    def test_random_permutation_completes(self, factory):
        mesh = Mesh(12)
        result = Simulator(mesh, factory(), random_permutation(mesh, seed=4)).run(
            20_000
        )
        assert result.completed

    def test_minimality_distance_monotone(self, factory):
        mesh = Mesh(10)
        packets = random_permutation(mesh, seed=9)
        sim = Simulator(mesh, factory(), packets)
        last = {p.pid: mesh.distance(p.pos, p.dest) for p in packets}
        while not sim.done and sim.time < 10_000:
            sim.step()
            for p in sim.iter_packets():
                d = mesh.distance(p.pos, p.dest)
                assert d <= last[p.pid]
                last[p.pid] = d
        assert sim.done

    def test_is_destination_exchangeable(self, factory):
        assert factory().destination_exchangeable


class TestAlternation:
    def test_packet_switches_direction_when_blocked(self):
        """A NE-bound packet blocked eastward diverts north (adaptivity)."""
        mesh = Mesh(6)
        mover = Packet(0, (0, 0), (2, 2))
        # Two blockers pin the east neighbour's queue (k=1 central).
        blocker = Packet(1, (1, 0), (3, 0))
        plug = Packet(2, (2, 0), (4, 0))
        sim = Simulator(
            mesh, AlternatingAdaptiveRouter(1, "central"), [mover, blocker, plug]
        )
        trace = [mover.pos]
        for _ in range(12):
            if sim.done:
                break
            sim.step()
            trace.append(mover.pos)
        result = sim.result()
        assert result.completed
        # The mover must have used at least one northward hop before
        # finishing its eastward travel (it was blocked at (1,0)).
        ys = [pos[1] for pos in trace]
        xs = [pos[0] for pos in trace]
        first_full_east = xs.index(2)
        assert max(ys[: first_full_east + 1]) > 0

    def test_alternating_spreads_around_hotspot(self):
        """Adaptive routing uses both dimensions; dimension order cannot."""
        mesh = Mesh(8)
        # Many packets from column 0 to column 7, same rows: row congestion.
        packets = [Packet(i, (0, i), (7, i)) for i in range(8)]
        result = Simulator(
            mesh, AlternatingAdaptiveRouter(2, "incoming"), packets
        ).run(1000)
        assert result.completed  # disjoint rows: trivially fine

    def test_greedy_uses_multiple_outlinks_per_step(self):
        mesh = Mesh(8)
        # Two packets at one node with disjoint profitable directions can
        # leave simultaneously under the greedy policy.
        a = Packet(0, (2, 2), (6, 2))  # east
        b = Packet(1, (2, 2), (2, 6))  # north
        sim = Simulator(mesh, GreedyAdaptiveRouter(2, "central"), [a, b])
        moves = sim.step()
        assert len(moves) == 2


class TestStateHashability:
    def test_states_are_hashable_for_configuration(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh,
            AlternatingAdaptiveRouter(2, "central"),
            random_permutation(mesh, seed=0),
        )
        for _ in range(5):
            sim.step()
        hash(sim.configuration())  # must not raise
