"""End-to-end routing on the torus (the Section 5 topology extension)."""

import pytest

from repro.mesh import Simulator, Torus
from repro.routing import (
    BoundedDimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
)
from repro.workloads import random_permutation, rotation_permutation


@pytest.mark.parametrize(
    "factory",
    [
        lambda: BoundedDimensionOrderRouter(2),
        lambda: GreedyAdaptiveRouter(2, "incoming"),
        lambda: FarthestFirstRouter(2),
        HotPotatoRouter,
    ],
    ids=["bounded-dor", "greedy-adaptive", "farthest-first", "hot-potato"],
)
class TestTorusRouting:
    def test_random_permutations_complete(self, factory):
        torus = Torus(10)
        for seed in range(2):
            result = Simulator(
                torus, factory(), random_permutation(torus, seed=seed)
            ).run(20_000)
            assert result.completed

    def test_wraparound_rotation_uses_short_way(self, factory):
        """A rotation by more than half the side routes through the wrap:
        completion near the wrap distance, far under the unwrapped one."""
        torus = Torus(12)
        packets = rotation_permutation(torus, dx=9, dy=0)  # short way: 3 west
        result = Simulator(torus, factory(), packets).run(20_000)
        assert result.completed
        assert result.steps <= 3 * torus.diameter

    def test_minimality_on_torus(self, factory):
        algorithm = factory()
        if not algorithm.minimal:
            pytest.skip("nonminimal router")
        torus = Torus(8)
        packets = random_permutation(torus, seed=4)
        expected = sum(torus.distance(p.source, p.dest) for p in packets)
        result = Simulator(torus, algorithm, packets).run(20_000)
        assert result.completed
        assert result.total_moves == expected
