"""Tests for the ASCII figure renderers."""

from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
)
from repro.core.dor_adversary import DorGeometry
from repro.core.ff_adversary import FfGeometry
from repro.core.geometry import BoxGeometry
from repro.mesh.packet import Packet
from repro.tiling.geometry import Tile
from repro.viz import (
    render_box_invariant,
    render_construction_geometry,
    render_dor_construction,
    render_ff_construction,
    render_sort_smooth,
    render_strips,
    render_subphase_schedule,
)


def geo60():
    return BoxGeometry.from_constants(AdaptiveConstants.choose(60, 1))


class TestFigureRenderers:
    def test_figure1_shape_and_content(self):
        geo = geo60()
        out = render_construction_geometry(geo)
        lines = out.splitlines()
        assert len(lines) == 61  # title + 60 rows
        assert all(len(l) == 60 for l in lines[1:])
        assert "#" in out and "N" in out and "E" in out
        # The 1-box occupies the bottom-left cn x cn corner.
        bottom = lines[-1]
        assert bottom[: geo.cn] == "#" * geo.cn

    def test_figure2_live_packets(self):
        geo = geo60()
        packets = [
            Packet(0, (2, 2), geo.n_destination(1, 0)),
            Packet(1, (3, 3), geo.e_destination(1, 0)),
        ]
        out = render_box_invariant(geo, packets, i=1)
        assert "n" in out and "e" in out and "+" in out

    def test_figure4_left(self):
        c = DimensionOrderConstants.choose(60, 1)
        out = render_dor_construction(DorGeometry(n=60, cn=c.cn, levels=c.l_floor))
        assert "#" in out and "N" in out

    def test_figure4_right(self):
        c = FarthestFirstConstants.choose(60, 1)
        out = render_ff_construction(
            FfGeometry(n=60, cn=c.cn, levels=c.l_floor, num_classes=10)
        )
        assert "#" in out and "N" in out

    def test_figure5_marks_key_strips(self):
        out = render_strips(Tile(0, 0, 81), dest_strip=20)
        assert "destination strip i" in out
        assert "March target" in out
        assert out.count("strip") >= 27

    def test_figure6_blocks(self):
        out = render_sort_smooth({(0, 0): [3, 1]}, {(0, 1): [3], (0, 0): [1]}, d=2)
        assert "before" in out and "after" in out

    def test_figure7(self):
        out = render_subphase_schedule()
        assert "V1 V2 V3 H1 H2 H3" in out


class TestOccupancyHeatmap:
    def test_heatmap_renders_counts(self):
        from repro.viz import render_occupancy_heatmap

        occ = {(0, 0): 1, (1, 1): 12, (2, 0): 0}
        out = render_occupancy_heatmap(occ, 3, title="load")
        lines = out.splitlines()
        assert lines[0] == "load (peak 12)"
        assert lines[-1][0] == "1"  # (0,0)
        assert lines[-2][1] == "c"  # 12 -> letter scale
        assert lines[-1][2] == "."  # zero renders empty

    def test_heatmap_from_live_simulator(self):
        from repro.mesh import Mesh, Simulator
        from repro.routing import BoundedDimensionOrderRouter
        from repro.viz import render_occupancy_heatmap
        from repro.workloads import random_permutation

        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(2), random_permutation(mesh, seed=0)
        )
        sim.run_steps(5)
        occ = {
            node: sum(len(q) for q in qs.values())
            for node, qs in sim.queues.items()
        }
        out = render_occupancy_heatmap(occ, 8)
        assert len(out.splitlines()) == 9


class TestLemma12Diagram:
    def test_figure3_structure(self):
        from repro.viz import render_lemma12_diagram

        out = render_lemma12_diagram(24, 15)
        assert "Figure 3" in out
        assert "S*_{t-1}" in out
        assert "24 steps and 15 exchanges" in out
