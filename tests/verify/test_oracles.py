"""The oracle layer catches deliberately broken routers.

Every test here runs with ``validate=False`` where it matters, proving the
oracles re-derive the paper's invariants independently of the simulator's
own enforcement -- a regression in either layer is caught by the other.
"""

import pytest

from repro.mesh import Mesh, Packet, Simulator
from repro.mesh.directions import Direction
from repro.mesh.errors import QueueOverflowError
from repro.routing import BoundedDimensionOrderRouter, GreedyAdaptiveRouter
from repro.verify import (
    InvariantChecker,
    MinimalityOracle,
    PacketConservationOracle,
    QueueBoundOracle,
    StepBoundOracle,
    VerificationError,
    attach_checker,
    default_oracles,
)
from repro.workloads import random_permutation


class OverflowingRouter(GreedyAdaptiveRouter):
    """Deliberately broken: accepts one packet more than the queue holds."""

    name = "broken-overflow"

    def inqueue(self, ctx, offers):
        free = (self.queue_spec.capacity + 1) - ctx.total_occupancy
        return list(offers)[: max(free, 0)]


class NonMinimalLiar(GreedyAdaptiveRouter):
    """Claims minimality but schedules the first packet unprofitably."""

    name = "broken-nonminimal"

    def outqueue(self, ctx):
        for view in ctx.packets:
            for d in ctx.out_directions:
                if d not in view.profitable:
                    return {d: view}
        return super().outqueue(ctx)


def converging_packets():
    # Four packets converge on (1,1); an accept-all inqueue overflows k=1.
    return [
        Packet(0, (0, 1), (7, 1)),
        Packet(1, (1, 0), (1, 7)),
        Packet(2, (2, 1), (0, 1)),
        Packet(3, (1, 2), (1, 0)),
    ]


class TestQueueBoundOracle:
    def test_broken_router_caught_by_oracle_alone(self):
        """The acceptance scenario: queue bound k+1, simulator enforcement
        off, the oracle layer still catches it."""
        sim = Simulator(
            Mesh(8), OverflowingRouter(1), converging_packets(), validate=False
        )
        checker = attach_checker(sim, [QueueBoundOracle()], mode="strict")
        with pytest.raises(VerificationError) as exc_info:
            sim.run(10)
        assert "queue-bound" in str(exc_info.value)
        assert not checker.ok

    def test_simulator_raises_typed_structured_overflow(self):
        """With validation on, the simulator raises first -- and the typed
        exception carries node/queue/occupancy/capacity for tests."""
        sim = Simulator(Mesh(8), OverflowingRouter(1), converging_packets())
        with pytest.raises(QueueOverflowError) as exc_info:
            sim.run(10)
        err = exc_info.value
        assert err.node == (1, 1)
        assert err.occupancy == err.capacity + 1
        assert err.capacity == 1
        assert err.algorithm == "broken-overflow"

    def test_record_mode_collects_instead_of_raising(self):
        sim = Simulator(
            Mesh(8), OverflowingRouter(1), converging_packets(), validate=False
        )
        checker = attach_checker(sim, [QueueBoundOracle()], mode="record")
        sim.run(5)
        assert checker.counters["queue-bound"] >= 1
        assert all(v.oracle == "queue-bound" for v in checker.violations)

    def test_off_mode_attaches_nothing(self):
        sim = Simulator(
            Mesh(8), OverflowingRouter(1), converging_packets(), validate=False
        )
        checker = attach_checker(sim, [QueueBoundOracle()], mode="off")
        sim.run(5)
        assert checker.ok
        assert not sim.pre_step_hooks and not sim.post_step_hooks

    def test_clean_router_is_clean(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh, GreedyAdaptiveRouter(2, "incoming"), random_permutation(mesh, seed=0)
        )
        checker = attach_checker(sim, default_oracles(sim), mode="strict")
        result = sim.run(5_000)
        checker.finish()
        assert result.completed
        assert checker.ok


class TestMinimalityOracle:
    def test_nonminimal_liar_caught(self):
        mesh = Mesh(6)
        # One packet that gets deflected unprofitably on step 1.
        sim = Simulator(
            mesh, NonMinimalLiar(2), [Packet(0, (5, 5), (5, 4))], validate=False
        )
        checker = attach_checker(sim, [MinimalityOracle()], mode="record")
        sim.run(3)
        assert any("not a profitable move" in v.message for v in checker.violations)

    def test_minimal_router_distance_monotone_clean(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(1), random_permutation(mesh, seed=3)
        )
        checker = attach_checker(sim, [MinimalityOracle()], mode="strict")
        assert sim.run(5_000).completed
        assert checker.ok


class TestConservationOracle:
    def test_clean_run_conserves(self):
        mesh = Mesh(6)
        sim = Simulator(
            mesh, GreedyAdaptiveRouter(4), random_permutation(mesh, seed=1)
        )
        checker = attach_checker(sim, [PacketConservationOracle()], mode="strict")
        assert sim.run(5_000).completed
        assert checker.ok

    def test_detects_duplicated_packet(self):
        mesh = Mesh(6)
        sim = Simulator(
            mesh, GreedyAdaptiveRouter(4), [Packet(0, (0, 0), (3, 3))], validate=False
        )
        checker = attach_checker(sim, [PacketConservationOracle()], mode="record")
        sim.step()
        # Corrupt the state behind the simulator's back: clone a packet.
        p = next(sim.iter_packets())
        for node_queues in sim.queues.values():
            for q in node_queues.values():
                if q:
                    q.append(p.copy())
                    break
        sim.step()
        assert any("occupies two queues" in v.message for v in checker.violations) or any(
            "in-flight counter" in v.message for v in checker.violations
        )

    def test_rejected_packets_conserve(self):
        """Regression for the streaming layer: packets refused at admission
        (reject_packet) count toward the conservation total instead of
        tripping the oracle as lost."""
        mesh = Mesh(6)
        sim = Simulator(mesh, GreedyAdaptiveRouter(2), [], validate=False)
        checker = attach_checker(sim, [PacketConservationOracle()], mode="strict")
        sim.inject_packet(Packet(0, (0, 0), (5, 5), injection_time=0))
        sim.reject_packet(Packet(1, (0, 0), (5, 5)))
        sim.reject_packet(Packet(2, (3, 3), (0, 2)))
        assert sim.run(5_000).completed
        assert checker.ok
        assert sim.total_packets == 3
        assert len(sim.delivery_times) == 1 and len(sim.rejected) == 2

    def test_rejected_packet_in_a_queue_is_flagged(self):
        """A pid that is both rejected and queued is corruption, not
        backpressure -- the oracle must say so."""
        mesh = Mesh(6)
        sim = Simulator(mesh, GreedyAdaptiveRouter(2), [], validate=False)
        checker = attach_checker(sim, [PacketConservationOracle()], mode="record")
        sim.inject_packet(Packet(0, (0, 0), (5, 5), injection_time=0))
        sim.step()
        # Corrupt: mark the in-network packet as rejected behind the
        # simulator's back.
        sim.rejected[0] = sim.time
        sim.total_packets += 1  # keep the aggregate count consistent
        sim.step()
        assert any(
            "despite admission rejection" in v.message for v in checker.violations
        )

    def test_duplicate_pid_rejected_across_outcomes(self):
        """reject_packet and inject_packet share the duplicate-pid guard."""
        mesh = Mesh(6)
        sim = Simulator(mesh, GreedyAdaptiveRouter(2), [], validate=False)
        sim.reject_packet(Packet(7, (0, 0), (5, 5)))
        with pytest.raises(ValueError, match="duplicate packet id"):
            sim.inject_packet(Packet(7, (0, 0), (5, 5)))
        with pytest.raises(ValueError, match="duplicate packet id"):
            sim.reject_packet(Packet(7, (1, 1), (5, 5)))


class TestStepBoundOracle:
    def test_theorem15_budget_enforced(self):
        mesh = Mesh(8)
        router = BoundedDimensionOrderRouter(1)
        bound = router.permutation_step_bound(8)
        sim = Simulator(mesh, router, random_permutation(mesh, seed=0))
        checker = attach_checker(sim, [StepBoundOracle(bound)], mode="strict")
        result = sim.run(bound)
        checker.finish()
        assert result.completed and checker.ok

    def test_absurdly_small_bound_fires(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(1), random_permutation(mesh, seed=0)
        )
        checker = attach_checker(sim, [StepBoundOracle(1)], mode="record")
        sim.run(50)
        assert checker.counters.get("step-bound", 0) >= 1

    def test_distance_floor_checked_at_finish(self):
        mesh = Mesh(8)
        sim = Simulator(
            mesh, BoundedDimensionOrderRouter(1), random_permutation(mesh, seed=0)
        )
        checker = attach_checker(sim, [StepBoundOracle(None)], mode="strict")
        sim.run(5_000)
        checker.finish()
        assert checker.ok
        # Corrupt a delivery time below the floor; finish() must object.
        pid = next(iter(sim.delivery_times))
        sim.delivery_times[pid] = 0
        checker2 = InvariantChecker(sim, [], mode="record")
        oracle = StepBoundOracle(None)
        oracle._floor = {pid: 1}
        checker2.oracles = [oracle]
        oracle.on_finish(checker2, sim)
        assert checker2.violations


class TestContractMetadata:
    def test_bounded_dor_contract(self):
        c = BoundedDimensionOrderRouter(2).contract(16)
        assert c.minimal and c.destination_exchangeable
        assert c.excursion_delta == 0
        assert c.queue_kind == "incoming" and c.queue_capacity == 2
        from repro.core.bounds import theorem15_upper_bound

        assert c.step_bound == theorem15_upper_bound(16, 2)

    def test_unbounded_and_delta_contracts(self):
        from repro.routing import BoundedExcursionRouter, HotPotatoRouter

        assert HotPotatoRouter().contract(8).excursion_delta is None
        assert BoundedExcursionRouter(2, 3).contract(8).excursion_delta == 3
        assert GreedyAdaptiveRouter(2).contract(8).step_bound is None

    def test_checker_rejects_bad_mode(self):
        mesh = Mesh(4)
        sim = Simulator(mesh, GreedyAdaptiveRouter(2), [])
        with pytest.raises(ValueError):
            attach_checker(sim, [], mode="loose")
