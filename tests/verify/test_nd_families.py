"""Differential runner on the d-dimensional families (mesh3d/torus3d/pillar).

The 2D families fuzz every registered router; the ND families must build
deterministic instances, restrict themselves to the routers whose
``RouterEntry.topologies`` covers the family's topology, and refuse the
metamorphic transforms that are undefined off the regular equal-sided
grids.
"""

import pytest

from repro.mesh.ndtopology import MeshND, SparsePillarMesh, TorusND
from repro.verify import (
    REGISTRY,
    build_instance,
    cross_check,
    reflect_instance,
    transpose_instance,
)
from repro.verify.differential import FAMILIES, FAMILY_TOPOLOGY, SMOKE_FAMILIES
from repro.workloads import random_permutation


class TestNdInstances:
    @pytest.mark.parametrize("family", ["mesh3d", "torus3d", "pillar"])
    def test_deterministic_in_seed(self, family):
        topo_a, a = build_instance(family, 4, 3)
        topo_b, b = build_instance(family, 4, 3)
        assert type(topo_a) is type(topo_b)
        assert [(p.pid, p.source, p.dest) for p in a] == [
            (p.pid, p.source, p.dest) for p in b
        ]

    def test_family_topology_types(self):
        assert isinstance(build_instance("mesh3d", 4, 0)[0], MeshND)
        assert isinstance(build_instance("torus3d", 4, 0)[0], TorusND)
        assert isinstance(build_instance("pillar", 4, 0)[0], SparsePillarMesh)

    def test_every_family_has_a_topology(self):
        assert set(FAMILY_TOPOLOGY) == set(FAMILIES)
        assert set(SMOKE_FAMILIES) <= set(FAMILIES)


class TestApplicability:
    def test_only_credit_adaptive_supports_nd_families(self):
        for family in ("mesh3d", "torus3d", "pillar"):
            supported = {
                name
                for name, entry in REGISTRY.items()
                if entry.supports_family(family)
            }
            assert supported == {"credit-adaptive"}

    def test_all_routers_support_2d_families(self):
        for family in ("permutation", "hh", "torus", "dynamic"):
            assert all(
                entry.supports_family(family) for entry in REGISTRY.values()
            )

    def test_supports_topology(self):
        assert REGISTRY["bounded-dor"].supports_topology("mesh")
        assert not REGISTRY["bounded-dor"].supports_topology("mesh3d")
        assert REGISTRY["credit-adaptive"].supports_topology("pillar")


class TestNdCrossCheck:
    @pytest.mark.parametrize("family", ["mesh3d", "pillar"])
    def test_cell_clean_and_scoped(self, family):
        report = cross_check(family, 4, 2, 0, mode="record")
        assert report.ok, report.findings
        assert set(report.outcomes) == {"credit-adaptive"}

    def test_torus3d_cell_clean(self):
        report = cross_check("torus3d", 4, 1, 1, mode="record")
        assert report.ok, report.findings


class TestNdTransforms:
    def test_transpose_is_involution_on_mesh3d(self):
        topo = MeshND((4, 4, 4))
        packets = random_permutation(topo, seed=2)
        _, once = transpose_instance(topo, packets)
        _, twice = transpose_instance(topo, once)
        assert [(p.source, p.dest) for p in twice] == [
            (p.source, p.dest) for p in packets
        ]

    def test_transpose_rejects_unequal_sides(self):
        topo = MeshND((4, 3, 2))
        with pytest.raises(ValueError):
            transpose_instance(topo, random_permutation(topo, seed=0))

    def test_transforms_reject_irregular_topology(self):
        topo = SparsePillarMesh(4, layers=3)
        packets = random_permutation(topo, seed=0)
        with pytest.raises(ValueError):
            transpose_instance(topo, packets)
        with pytest.raises(ValueError):
            reflect_instance(topo, packets)

    def test_reflect_is_involution_on_mesh3d(self):
        topo = MeshND((4, 4, 4))
        packets = random_permutation(topo, seed=3)
        _, once = reflect_instance(topo, packets)
        assert all(topo.contains(p.source) and topo.contains(p.dest) for p in once)
        _, twice = reflect_instance(topo, once)
        assert [(p.source, p.dest) for p in twice] == [
            (p.source, p.dest) for p in packets
        ]
