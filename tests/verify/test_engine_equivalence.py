"""Unit tests for the lockstep engine-equivalence harness itself.

The harness is a gate, so these tests check both directions: clean cells
report ok, and genuinely different traces / silent fallbacks are caught
(a comparison harness that cannot fail would prove nothing).
"""

from repro.mesh import Mesh, Simulator
from repro.verify import ARRAY_PORTED, REGISTRY, lockstep_cell, run_engine_matrix
from repro.verify.engine_equivalence import LockstepReport, lockstep
from repro.workloads import random_permutation


class TestLockstepCell:
    def test_clean_cell_reports_ok(self):
        report = lockstep_cell("bounded-dor", "permutation", 6, 2, 0)
        assert report.ok
        assert report.engaged
        assert report.steps > 0
        assert report.divergence_step is None

    def test_dynamic_family_exercises_pending_path(self):
        report = lockstep_cell("hot-potato", "dynamic", 6, 1, 3)
        assert report.ok and report.engaged

    def test_unported_router_fallback_is_a_finding(self):
        report = lockstep_cell("alternating-adaptive", "permutation", 6, 2, 0)
        assert not report.ok
        assert not report.engaged
        assert "did not engage" in report.findings[0]

    def test_fallback_tolerated_when_not_required(self):
        report = lockstep_cell(
            "alternating-adaptive", "permutation", 6, 2, 0, require_array=False
        )
        assert report.ok  # reference-vs-reference, trivially equal
        assert not report.engaged

    def test_to_metrics_round_trips(self):
        metrics = lockstep_cell("dor", "torus", 6, 2, 0).to_metrics()
        assert metrics["ok"] is True
        assert metrics["router"] == "dor"
        assert metrics["divergence_step"] is None


class TestLockstepDetectsDivergence:
    def test_different_instances_diverge_with_step_pinpointed(self):
        """Feed the comparator two genuinely different runs: it must fail
        and name the first divergent step, not just a final mismatch."""
        topology = Mesh(6)
        entry = REGISTRY["bounded-dor"]
        a = Simulator(topology, entry.factory(2, 0), random_permutation(topology, seed=0))
        b = Simulator(topology, entry.factory(2, 0), random_permutation(topology, seed=1))
        report = LockstepReport(
            router="bounded-dor", family="permutation", n=6, k=2, seed=0
        )
        lockstep(a, b, 100, report)
        assert not report.ok
        assert report.divergence_step == 1

    def test_unequal_lengths_diverge_on_done_state(self):
        """One empty run against a loaded one: caught via done-state."""
        topology = Mesh(6)
        entry = REGISTRY["bounded-dor"]
        a = Simulator(topology, entry.factory(2, 0), [])
        b = Simulator(topology, entry.factory(2, 0), random_permutation(topology, seed=0))
        report = LockstepReport(
            router="bounded-dor", family="permutation", n=6, k=2, seed=0
        )
        lockstep(a, b, 100, report)
        assert not report.ok


class TestEngineMatrix:
    def test_default_grid_is_clean(self):
        reports = run_engine_matrix(sizes=(4,), ks=(1,), seeds=(0,))
        assert len(reports) == len(ARRAY_PORTED) * 3  # three families
        assert all(r.ok for r in reports)

    def test_max_steps_caps_every_cell(self):
        # The CI job bounds large cells to a fixed lockstep window; a
        # bounded prefix is still a sound gate because every step of the
        # prefix is compared.
        reports = run_engine_matrix(
            routers=("bounded-dor",),
            families=("permutation",),
            sizes=(8,),
            ks=(1,),
            seeds=(0,),
            max_steps=3,
        )
        assert all(r.ok and r.steps == 3 for r in reports)

    def test_progress_callback_sees_every_cell(self):
        lines = []
        reports = run_engine_matrix(
            routers=("bounded-dor",),
            families=("permutation",),
            sizes=(4,),
            ks=(1,),
            seeds=(0, 1),
            progress=lines.append,
        )
        assert len(lines) == len(reports) == 2
        assert all("bounded-dor" in line for line in lines)
