"""Differential runner: registry, cross-checks, probes, and harness glue."""

import pytest

from repro.harness.execute import execute_trial
from repro.harness.specs import ROUTE_ALGORITHMS, TrialSpec
from repro.mesh import Mesh
from repro.verify import (
    REGISTRY,
    RouterEntry,
    build_instance,
    cross_check,
    exchangeability_probe,
    reflect_instance,
    run_verification,
    section6_probe,
    transpose_instance,
)
from repro.workloads import random_permutation


class TestRegistry:
    def test_every_route_algorithm_is_registered(self):
        assert set(REGISTRY) == set(ROUTE_ALGORITHMS)

    def test_factories_build_fresh_instances(self):
        for entry in REGISTRY.values():
            a, b = entry.factory(1, 0), entry.factory(1, 0)
            assert a is not b
            assert a.name == b.name

    def test_dor_expectation_encodes_hh_deadlock(self):
        assert not REGISTRY["dor"].expects_completion("hh")
        assert REGISTRY["dor"].expects_completion("permutation")
        assert REGISTRY["bounded-dor"].expects_completion("hh")


class TestInstances:
    def test_families_deterministic_in_seed(self):
        for family in ("permutation", "hh", "torus", "dynamic"):
            _, a = build_instance(family, 6, 3)
            _, b = build_instance(family, 6, 3)
            assert [(p.pid, p.source, p.dest, p.injection_time) for p in a] == [
                (p.pid, p.source, p.dest, p.injection_time) for p in b
            ]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_instance("nope", 6, 0)

    def test_transpose_is_involution(self):
        mesh = Mesh(5)
        packets = random_permutation(mesh, seed=0)
        _, once = transpose_instance(mesh, packets)
        _, twice = transpose_instance(mesh, once)
        assert [(p.source, p.dest) for p in twice] == [
            (p.source, p.dest) for p in packets
        ]

    def test_reflect_is_involution_and_in_bounds(self):
        mesh = Mesh(5)
        packets = random_permutation(mesh, seed=1)
        _, once = reflect_instance(mesh, packets)
        assert all(mesh.contains(p.source) and mesh.contains(p.dest) for p in once)
        _, twice = reflect_instance(mesh, once)
        assert [(p.source, p.dest) for p in twice] == [
            (p.source, p.dest) for p in packets
        ]


class TestCrossCheck:
    def test_permutation_cell_clean(self):
        report = cross_check("permutation", 6, 1, 0, mode="record")
        assert report.ok, report.findings
        assert set(report.outcomes) == set(REGISTRY)
        # Base + determinism rerun + 2 metamorphic images per router.
        assert report.runs == 4 * len(REGISTRY)

    def test_hh_cell_records_expected_dor_stall(self):
        report = cross_check("hh", 8, 1, 1, mode="record")
        assert report.ok, report.findings
        assert "dor" in report.stalls

    def test_broken_router_becomes_finding(self):
        from repro.routing import GreedyAdaptiveRouter

        class Overflower(GreedyAdaptiveRouter):
            name = "broken"

            def inqueue(self, ctx, offers):
                free = (self.queue_spec.capacity + 1) - ctx.total_occupancy
                return list(offers)[: max(free, 0)]

        REGISTRY["broken"] = RouterEntry("broken", lambda k, s: Overflower(k))
        try:
            report = cross_check(
                "permutation", 6, 1, 0, routers=["broken"], mode="record",
                metamorphic=False,
            )
        finally:
            del REGISTRY["broken"]
        assert not report.ok
        assert any("QueueOverflow" in f or "queue" in f for f in report.findings)

    def test_metrics_payload_is_json_serializable(self):
        import json

        report = cross_check(
            "permutation", 6, 1, 0, routers=["bounded-dor"], mode="record"
        )
        payload = json.dumps(report.to_metrics())
        assert "bounded-dor" in payload


class TestProbes:
    def test_exchangeability_probe_clean(self):
        assert exchangeability_probe("adaptive", n=60, k=1) == []

    def test_exchangeability_probe_rejects_unknown(self):
        with pytest.raises(ValueError):
            exchangeability_probe("nope")

    def test_section6_probe_clean(self):
        assert section6_probe(n=27, seed=0) == []


class TestHarnessIntegration:
    def test_verify_trial_spec_validates(self):
        spec = TrialSpec(kind="verify", n=8, k=1, workload="permutation")
        spec.validate()
        with pytest.raises(ValueError):
            TrialSpec(kind="verify", n=8, workload="transpose").validate()
        with pytest.raises(ValueError):
            TrialSpec(
                kind="verify", n=8, workload="permutation", algorithm="nope"
            ).validate()

    def test_execute_verify_trial(self):
        spec = TrialSpec(
            kind="verify", n=6, k=1, workload="permutation", algorithm="bounded-dor"
        )
        metrics = execute_trial(spec)
        assert metrics["ok"] and metrics["violations"] == 0
        assert metrics["routers"] == 1

    def test_fuzz_verify_spec_loads(self):
        import pathlib

        from repro.harness import CampaignSpec

        spec_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "specs" / "fuzz_verify.json"
        )
        campaign = CampaignSpec.from_file(spec_path)
        assert campaign.name == "fuzz_verify"
        assert all(t.kind == "verify" for t in campaign.trials)
        assert len(campaign.trials) >= 30


class TestRunVerification:
    def test_small_sweep_clean(self):
        report = run_verification(
            families=("permutation",),
            sizes=(6,),
            ks=(1,),
            seeds=(0,),
            routers=["bounded-dor", "greedy-adaptive"],
            probes=False,
        )
        assert report.ok
        assert report.runs == 8  # 2 routers x (base + rerun + 2 images)


class TestVerifyCli:
    def test_smoke_subset_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "verify",
                "--families", "permutation",
                "--n", "6",
                "--k", "1",
                "--seeds", "1",
                "--routers", "bounded-dor", "hot-potato",
                "--no-probes",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verify PASS" in out

    def test_unknown_family_exits_with_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["verify", "--families", "bogus", "--quiet"])
