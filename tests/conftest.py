"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.mesh import Mesh, Simulator, Torus
from repro.routing import (
    AlternatingAdaptiveRouter,
    BoundedDimensionOrderRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
)


@pytest.fixture
def mesh8() -> Mesh:
    return Mesh(8)


@pytest.fixture
def mesh16() -> Mesh:
    return Mesh(16)


@pytest.fixture
def torus8() -> Torus:
    return Torus(8)


def all_router_factories():
    """(name, factory(k)) pairs for routers that terminate on permutations."""
    return [
        ("bounded-dor", lambda k: BoundedDimensionOrderRouter(k)),
        ("farthest-first", lambda k: FarthestFirstRouter(k)),
        ("greedy-adaptive-incoming", lambda k: GreedyAdaptiveRouter(k, "incoming")),
        ("alternating-adaptive-incoming", lambda k: AlternatingAdaptiveRouter(k, "incoming")),
    ]


def central_router_factories():
    """Routers in the bare central-queue model (may stall on hard instances)."""
    return [
        ("dimension-order", lambda k: DimensionOrderRouter(k)),
        ("greedy-adaptive", lambda k: GreedyAdaptiveRouter(k)),
        ("alternating-adaptive", lambda k: AlternatingAdaptiveRouter(k)),
        ("farthest-first-central", lambda k: FarthestFirstRouter(k, "central")),
    ]


def route(topology, algorithm, packets, max_steps=50_000, **kwargs):
    """Run a routing problem to completion (or the step cap)."""
    sim = Simulator(topology, algorithm, packets, **kwargs)
    return sim.run(max_steps=max_steps)
