"""Docs-drift guards: the README must track the tree it describes.

Two invariants, both cheap and purely textual:

1. every ``docs/*.md`` file is linked (by name) from the README, so new
   documents cannot silently fall out of the entry point;
2. every CLI subcommand the README advertises exists in ``cli.py``, and
   every top-level subcommand ``cli.py`` registers is mentioned in the
   README — the two lists cannot drift apart.
"""

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).parents[2]
README = (REPO_ROOT / "README.md").read_text()
CLI_SOURCE = (REPO_ROOT / "src/repro/cli.py").read_text()

#: Top-level subcommands registered on the main subparser (``sub``); the
#: ``campaign_sub`` nested verbs are namespaced under ``campaign``.
CLI_SUBCOMMANDS = re.findall(r'\bsub\.add_parser\(\s*"([a-z0-9-]+)"', CLI_SOURCE)


class TestDocsLinked:
    def test_docs_directory_is_nonempty(self):
        assert (REPO_ROOT / "docs").is_dir()
        assert list((REPO_ROOT / "docs").glob("*.md"))

    def test_every_docs_file_is_referenced_from_readme(self):
        missing = [
            doc.name
            for doc in sorted((REPO_ROOT / "docs").glob("*.md"))
            if doc.name not in README
        ]
        assert missing == [], f"docs not referenced from README.md: {missing}"

    def test_top_level_trackers_referenced_from_readme(self):
        for name in ("EXPERIMENTS.md", "DESIGN.md"):
            assert (REPO_ROOT / name).exists()
            assert name in README, f"{name} not referenced from README.md"


class TestCliListMatches:
    def test_cli_registers_expected_commands(self):
        # Regex sanity: the extraction found the real subparser list.
        assert "route" in CLI_SUBCOMMANDS and "bench" in CLI_SUBCOMMANDS
        assert len(CLI_SUBCOMMANDS) == len(set(CLI_SUBCOMMANDS))

    def test_every_cli_subcommand_is_in_readme(self):
        """Each subcommand appears in a synopsis list or a `repro X` usage."""
        documented = set(re.findall(r"python -m repro ([a-z0-9-]+)", README))
        for blob in re.findall(r"python -m repro \{([^}]*)\}", README):
            documented.update(
                n.strip() for n in blob.replace("\n", " ").split(",")
            )
        missing = [name for name in CLI_SUBCOMMANDS if name not in documented]
        assert missing == [], f"cli.py subcommands absent from README.md: {missing}"

    def test_readme_brace_list_matches_cli(self):
        """The `python -m repro {...}` lists name only real subcommands."""
        brace_lists = re.findall(r"python -m repro \{([^}]*)\}", README)
        assert brace_lists, "README lost its `python -m repro {...}` synopsis"
        for blob in brace_lists:
            names = [n.strip() for n in blob.replace("\n", " ").split(",")]
            unknown = [n for n in names if n and n not in CLI_SUBCOMMANDS]
            assert unknown == [], f"README lists unknown subcommands: {unknown}"
