"""Docs-drift guards: the README must track the tree it describes.

Four invariants:

1. every ``docs/*.md`` file is linked (by name) from the README, so new
   documents cannot silently fall out of the entry point;
2. every CLI subcommand the README advertises exists in ``cli.py``, and
   every top-level subcommand ``cli.py`` registers is mentioned in the
   README — the two lists cannot drift apart;
3. the README architecture tree names exactly the packages that exist
   under ``src/repro`` (no phantom entries, no undocumented packages);
4. the verdict table embedded in ``docs/TOPOLOGY.md`` equals what the
   CDG analyzer and queue-bound certifier currently prove — the one
   check here that runs the analyzers rather than comparing text.
"""

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).parents[2]
README = (REPO_ROOT / "README.md").read_text()
CLI_SOURCE = (REPO_ROOT / "src/repro/cli.py").read_text()

#: Top-level subcommands registered on the main subparser (``sub``); the
#: ``campaign_sub`` nested verbs are namespaced under ``campaign``.
CLI_SUBCOMMANDS = re.findall(r'\bsub\.add_parser\(\s*"([a-z0-9-]+)"', CLI_SOURCE)


class TestDocsLinked:
    def test_docs_directory_is_nonempty(self):
        assert (REPO_ROOT / "docs").is_dir()
        assert list((REPO_ROOT / "docs").glob("*.md"))

    def test_every_docs_file_is_referenced_from_readme(self):
        missing = [
            doc.name
            for doc in sorted((REPO_ROOT / "docs").glob("*.md"))
            if doc.name not in README
        ]
        assert missing == [], f"docs not referenced from README.md: {missing}"

    def test_top_level_trackers_referenced_from_readme(self):
        for name in ("EXPERIMENTS.md", "DESIGN.md"):
            assert (REPO_ROOT / name).exists()
            assert name in README, f"{name} not referenced from README.md"


class TestCliListMatches:
    def test_cli_registers_expected_commands(self):
        # Regex sanity: the extraction found the real subparser list.
        assert "route" in CLI_SUBCOMMANDS and "bench" in CLI_SUBCOMMANDS
        assert len(CLI_SUBCOMMANDS) == len(set(CLI_SUBCOMMANDS))

    def test_every_cli_subcommand_is_in_readme(self):
        """Each subcommand appears in a synopsis list or a `repro X` usage."""
        documented = set(re.findall(r"python -m repro ([a-z0-9-]+)", README))
        for blob in re.findall(r"python -m repro \{([^}]*)\}", README):
            documented.update(
                n.strip() for n in blob.replace("\n", " ").split(",")
            )
        missing = [name for name in CLI_SUBCOMMANDS if name not in documented]
        assert missing == [], f"cli.py subcommands absent from README.md: {missing}"

    def test_readme_brace_list_matches_cli(self):
        """The `python -m repro {...}` lists name only real subcommands."""
        brace_lists = re.findall(r"python -m repro \{([^}]*)\}", README)
        assert brace_lists, "README lost its `python -m repro {...}` synopsis"
        for blob in brace_lists:
            names = [n.strip() for n in blob.replace("\n", " ").split(",")]
            unknown = [n for n in names if n and n not in CLI_SUBCOMMANDS]
            assert unknown == [], f"README lists unknown subcommands: {unknown}"


class TestArchitectureTree:
    """The fenced tree under `## Architecture` vs the real src/repro."""

    def _tree_entries(self):
        section = README.split("## Architecture", 1)[1]
        block = section.split("```", 2)[1]
        # Top-level entries are indented exactly two spaces under src/repro/:
        # package dirs as `name/`, modules as `name.py`.
        return set(re.findall(r"^  ([a-z_]+(?:/|\.py))", block, re.MULTILINE))

    def _real_entries(self):
        src = REPO_ROOT / "src" / "repro"
        entries = set()
        for path in src.iterdir():
            if path.is_dir() and (path / "__init__.py").exists():
                entries.add(path.name + "/")
            elif path.suffix == ".py" and path.name not in (
                "__init__.py",
                "__main__.py",
            ):
                entries.add(path.name)
        return entries

    def test_tree_matches_source_layout(self):
        documented, real = self._tree_entries(), self._real_entries()
        assert documented - real == set(), (
            f"README architecture tree names entries that do not exist: "
            f"{sorted(documented - real)}"
        )
        assert real - documented == set(), (
            f"src/repro entries missing from the README architecture tree: "
            f"{sorted(real - documented)}"
        )


class TestTopologyVerdictTable:
    """docs/TOPOLOGY.md's embedded table must equal the analyzers' output."""

    MARKER_BEGIN = "<!-- verdict-table:begin -->"
    MARKER_END = "<!-- verdict-table:end -->"

    def test_table_matches_regenerated(self):
        from repro.analysis.static_check import verdict_table_markdown

        doc = (REPO_ROOT / "docs" / "TOPOLOGY.md").read_text()
        assert self.MARKER_BEGIN in doc and self.MARKER_END in doc, (
            "docs/TOPOLOGY.md lost its verdict-table markers"
        )
        embedded = doc.split(self.MARKER_BEGIN, 1)[1].split(self.MARKER_END, 1)[0]
        assert embedded.strip() == verdict_table_markdown().strip(), (
            "docs/TOPOLOGY.md verdict table is stale; regenerate with "
            "`python -m repro analyze cdg --format markdown --k 2` and paste "
            "it between the verdict-table markers"
        )

    def test_topology_doc_linked_from_model_and_analysis(self):
        for name in ("MODEL.md", "ANALYSIS.md"):
            text = (REPO_ROOT / "docs" / name).read_text()
            assert "TOPOLOGY.md" in text, f"docs/{name} lost its TOPOLOGY.md link"
