"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main

SPECS_DIR = pathlib.Path(__file__).parents[2] / "benchmarks" / "specs"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route"])
        assert args.algorithm == "bounded-dor"
        assert args.n == 32 and args.k == 2

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--algorithm", "psychic"])


class TestCommands:
    def test_route_success_exit_code(self, capsys):
        rc = main(["route", "--n", "12", "--k", "2", "--workload", "random"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_route_stall_exit_code(self, capsys):
        # Full permutation on k=1 central dimension order: gridlocked.
        rc = main(
            ["route", "--algorithm", "dor", "--n", "8", "--k", "1",
             "--workload", "rotation", "--max-steps", "50"]
        )
        assert rc == 1
        assert "STALLED" in capsys.readouterr().out

    def test_route_torus(self, capsys):
        rc = main(["route", "--n", "8", "--torus", "--workload", "random"])
        assert rc == 0

    def test_route_hot_potato(self, capsys):
        rc = main(["route", "--algorithm", "hot-potato", "--n", "8"])
        assert rc == 0

    def test_route_array_engine(self, capsys):
        rc = main(["route", "--n", "8", "--engine", "array"])
        assert rc == 0
        assert "[array engine]" in capsys.readouterr().out

    def test_route_array_engine_reports_fallback(self, capsys):
        rc = main(
            ["route", "--algorithm", "alternating-adaptive", "--n", "8",
             "--k", "2", "--queues", "incoming", "--engine", "array"]
        )
        assert rc == 0
        assert "[reference engine]" in capsys.readouterr().out

    def test_route_array_engine_degraded_links(self, capsys):
        rc = main(["route", "--n", "8", "--engine", "array",
                   "--availability", "0.9"])
        assert rc == 0
        assert "[array engine]" in capsys.readouterr().out

    def test_verify_engines_lockstep(self, capsys):
        rc = main(
            ["verify", "--engines", "--n", "6", "--k", "2", "--quiet",
             "--families", "permutation", "--routers", "bounded-dor"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verify --engines PASS" in out
        assert "lockstep steps" in out

    def test_lower_bound_adaptive(self, capsys):
        rc = main(
            ["lower-bound", "--construction", "adaptive", "--n", "60",
             "--k", "1", "--check-invariants"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "configuration match = True" in out

    def test_lower_bound_dor(self, capsys):
        rc = main(
            ["lower-bound", "--construction", "dor", "--n", "60", "--k", "1",
             "--no-completion"]
        )
        assert rc == 0

    def test_lower_bound_hh(self, capsys):
        rc = main(
            ["lower-bound", "--construction", "hh", "--n", "60", "--k", "2",
             "--h", "2", "--no-completion"]
        )
        assert rc == 0

    def test_section6(self, capsys):
        rc = main(["section6", "--n", "27", "--workload", "transpose"])
        assert rc == 0
        assert "delivered 729/729" in capsys.readouterr().out

    def test_bounds(self, capsys):
        rc = main(["bounds", "--n", "216", "--k", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Theorem 13 certified" in out
        assert "972n" in out

    def test_route_with_flaky_links(self, capsys):
        rc = main(
            ["route", "--algorithm", "greedy-adaptive", "--queues", "incoming",
             "--n", "10", "--availability", "0.8", "--workload", "random"]
        )
        assert rc == 0
        assert "delivered" in capsys.readouterr().out

    def test_lower_bound_ff(self, capsys):
        rc = main(
            ["lower-bound", "--construction", "ff", "--n", "60", "--k", "1",
             "--no-completion"]
        )
        assert rc == 0
        assert "configuration match = True" in capsys.readouterr().out

    def test_lower_bound_torus(self, capsys):
        rc = main(
            ["lower-bound", "--construction", "torus", "--n", "120", "--k", "1",
             "--no-completion"]
        )
        assert rc == 0
        assert "configuration match = True" in capsys.readouterr().out

    def test_section6_improved(self, capsys):
        rc = main(["section6", "--n", "27", "--improved"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"bound {564 * 27}" in out


class TestCampaignCommands:
    def test_run_status_show_cycle(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "cli-test")
        spec = str(SPECS_DIR / "smoke.json")
        rc = main(
            ["campaign", "run", spec, "--workers", "2",
             "--campaign-dir", str(tmp_path), "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign smoke: 2/2 ok" in out

        # Immediate re-run: 100% cache hits, every manifest row cached.
        rc = main(
            ["campaign", "run", spec, "--campaign-dir", str(tmp_path), "--quiet"]
        )
        assert rc == 0
        assert "(2 cached" in capsys.readouterr().out
        manifest = json.loads((tmp_path / "smoke" / "manifest.json").read_text())
        assert all(t["cached"] for t in manifest["trials"])

        rc = main(["campaign", "status", "smoke", "--campaign-dir", str(tmp_path)])
        assert rc == 0
        assert "2 cached" in capsys.readouterr().out

        # `show` accepts either the campaign name or the spec path.
        rc = main(["campaign", "show", spec, "--campaign-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bounded-dor" in out and "headline" in out

    def test_run_missing_spec(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "run", str(tmp_path / "ghost.json"), "--quiet"])
        assert exc.value.code == 2
        assert "cannot load campaign spec" in capsys.readouterr().err

    def test_resume_without_cache_fails(self, tmp_path, capsys):
        spec = str(SPECS_DIR / "smoke.json")
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "run", spec, "--resume",
                 "--campaign-dir", str(tmp_path / "empty"), "--quiet"]
            )
        assert exc.value.code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_status_unknown_campaign(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "status", "ghost", "--campaign-dir", str(tmp_path)])
        assert exc.value.code == 2
        assert "run it first" in capsys.readouterr().err

    def test_show_unknown_campaign(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "show", "ghost", "--campaign-dir", str(tmp_path)])
        assert exc.value.code == 2
        assert "run it first" in capsys.readouterr().err


class TestFaultsCommand:
    def test_custom_spec_runs_and_reports(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "cli-faults-test")
        spec = tmp_path / "tiny_faults.json"
        spec.write_text(json.dumps({
            "name": "tiny_faults",
            "trials": [
                {"kind": "faults", "algorithm": "conservative-bounded-dor",
                 "n": 6, "k": 2, "availability": 0.8, "max_steps": 800},
            ],
        }))
        rc = main(
            ["faults", "--spec", str(spec),
             "--campaign-dir", str(tmp_path / "campaigns"), "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults PASS: 1 cells" in out
        assert "conservative-bounded-dor" in out

    def test_missing_spec_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "--spec", str(tmp_path / "ghost.json"), "--quiet"])
        assert exc.value.code == 2
        assert "cannot load faults spec" in capsys.readouterr().err


class TestStreamCommand:
    def test_custom_spec_runs_and_reports_knee_table(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CODE_VERSION", "cli-stream-test")
        spec = tmp_path / "tiny_stream.json"
        spec.write_text(json.dumps({
            "name": "tiny_stream",
            "trials": [
                {"kind": "streaming", "algorithm": "bounded-dor", "n": 8,
                 "k": 4, "rate": 0.05, "warmup": 4, "measure": 16,
                 "drain": 64},
                {"kind": "streaming", "algorithm": "bounded-dor", "n": 8,
                 "k": 4, "rate": 0.6, "warmup": 4, "measure": 16,
                 "drain": 64},
            ],
        }))
        rc = main(
            ["stream", "--spec", str(spec),
             "--campaign-dir", str(tmp_path / "campaigns"), "--quiet"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream PASS: 2 cells in 1 sweeps" in out
        assert "bounded-dor/n8/poisson" in out

    def test_missing_spec_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--spec", str(tmp_path / "ghost.json"), "--quiet"])
        assert exc.value.code == 2
        assert "cannot load streaming spec" in capsys.readouterr().err

    def test_serve_bad_algorithm_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["serve", "--algorithm", "psychic"])
        assert exc.value.code == 2

    def test_help_lists_all_subcommands(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for command in ("route", "lower-bound", "section6", "bounds", "verify",
                        "campaign", "bench", "faults", "stream", "serve",
                        "analyze"):
            assert command in out


class TestBenchCommand:
    def test_regression_exits_nonzero_and_baseline_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        """End-to-end ratchet guard: `repro bench` on a slowed cell must

        fail *and* leave the slowed cell's baseline entry untouched.
        """
        from types import SimpleNamespace

        import repro.harness
        from repro.harness.runner import TrialResult
        from repro.harness.specs import TrialSpec

        spec = TrialSpec(kind="bench", n=16, k=2, algorithm="bounded-dor", seed=0)

        def fake_trial(steps_per_s):
            return TrialResult(
                index=0, key="x", spec=spec, status="ok",
                metrics={
                    "steps": 40, "completed": True, "total_moves": 1000,
                    "scheduled_moves": 1100, "refused_moves": 100, "repeats": 3,
                    "timing": {"steps_per_s": steps_per_s, "wall_s": 1.0},
                },
                error=None, wall_s=0.0, cached=False,
            )

        speeds = iter([100.0, 50.0])
        monkeypatch.setattr(
            repro.harness,
            "run_campaign",
            lambda *a, **kw: SimpleNamespace(results=[fake_trial(next(speeds))]),
        )
        baseline = tmp_path / "bench.json"
        rc = main(["bench", "--smoke", "--quiet", "--baseline", str(baseline)])
        assert rc == 0
        before = baseline.read_bytes()

        rc = main(["bench", "--smoke", "--quiet", "--baseline", str(baseline)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert baseline.read_bytes() == before
