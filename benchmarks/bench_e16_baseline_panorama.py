"""E16 -- the Section 1 panorama: every algorithm family the introduction
surveys, on the same instances.

One table reproducing the paper's framing: simple bounded-queue routers
(the paper's subject), the unbounded-queue classic, the sorting-based
family, hot-potato routing, and the O(n) Section 6 algorithm -- measured on
identical random permutations, with each family's model caveats noted.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.mesh import Mesh, Simulator
from repro.routing import (
    BoundedDimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
    ShearsortRouter,
)
from repro.tiling import Section6Router
from repro.workloads import random_permutation

N = 27  # power of 3 so Section 6 can join the panorama


def run_experiment():
    mesh = Mesh(N)
    rows = []

    def sim_run(algorithm, note):
        result = Simulator(mesh, algorithm, random_permutation(mesh, seed=2)).run(
            max_steps=100_000
        )
        rows.append(
            [
                algorithm.name,
                result.steps if result.completed else None,
                result.max_node_load,
                note,
            ]
        )

    sim_run(BoundedDimensionOrderRouter(2), "simple, dest-exchangeable (Thm 15)")
    sim_run(GreedyAdaptiveRouter(2, "incoming"), "simple, minimal adaptive")
    sim_run(FarthestFirstRouter(N, "central"), "unbounded queues (S1.1 classic)")
    sim_run(HotPotatoRouter(), "nonminimal, bufferless (S1.2)")

    sorted_result = ShearsortRouter(N).route(random_permutation(mesh, seed=2))
    rows.append(
        [
            "shearsort+route",
            sorted_result.total_steps if sorted_result.completed else None,
            sorted_result.max_node_load,
            "sorting-based, full addresses (S1.2)",
        ]
    )

    s6 = Section6Router(N, record_phases=False).route(random_permutation(mesh, seed=2))
    rows.append(
        [
            "section6 (actual)",
            s6.actual_steps if s6.completed else None,
            s6.max_node_load,
            "minimal adaptive, O(n)/O(1) (S6)",
        ]
    )
    rows.append(
        [
            "section6 (schedule)",
            s6.scheduled_steps,
            s6.max_node_load,
            "the 972n-certified barrier clock",
        ]
    )
    return rows


def test_e16_baseline_panorama(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    by_name = {r[0]: r for r in rows}
    # Everyone delivers this benign instance.
    for name, steps, _load, _note in rows:
        assert steps is not None, name
    # The classic hierarchy on a benign instance: simple routers and the
    # unbounded classic sit near the diameter; sorting pays its n log n;
    # Section 6's schedule pays its constants.
    diameter = 2 * N - 2
    assert by_name["bounded-dimension-order"][1] <= 2 * diameter
    assert by_name["farthest-first"][1] <= diameter
    assert by_name["shearsort+route"][1] > diameter
    assert by_name["section6 (schedule)"][1] > by_name["shearsort+route"][1]
    record_result(
        "E16_baseline_panorama",
        format_table(
            ["algorithm", f"steps (n={N}, random perm)", "max node load", "family"],
            rows,
        )
        + "\n\nThe introduction's whole landscape on one instance: simple "
        "routers are fast here -- the paper's point is that only the "
        "complicated families on this table survive the *worst* case with "
        "bounded queues.",
    )
