"""E16 -- the Section 1 panorama: every algorithm family the introduction
surveys, on the same instances.

One table reproducing the paper's framing: simple bounded-queue routers
(the paper's subject), the unbounded-queue classic, the sorting-based
family, hot-potato routing, and the O(n) Section 6 algorithm -- measured on
identical random permutations, with each family's model caveats noted.

The instances are declared in ``specs/e16_baseline_panorama.json`` and
executed by the campaign harness; this file keeps the hierarchy assertions
and builds the two Section 6 rows (actual vs schedule) from one trial.
"""

from __future__ import annotations

from conftest import CAMPAIGNS_DIR, SPECS_DIR, run_once
from repro.analysis import format_table
from repro.harness import CampaignSpec, run_campaign

SPEC_PATH = SPECS_DIR / "e16_baseline_panorama.json"

N = 27  # power of 3 so Section 6 can join the panorama


def run_experiment():
    campaign = CampaignSpec.from_file(SPEC_PATH)
    run = run_campaign(campaign, workers=1, base_dir=CAMPAIGNS_DIR, progress=False)
    rows = []
    for result in run.results:
        assert result.status == "ok", result.error
        m = result.metrics
        note = result.spec.label
        if result.spec.kind == "route":
            rows.append(
                [
                    m["algorithm_name"],
                    m["steps"] if m["completed"] else None,
                    m["max_node_load"],
                    note,
                ]
            )
        elif result.spec.kind == "sort_route":
            rows.append(
                [
                    "shearsort+route",
                    m["total_steps"] if m["completed"] else None,
                    m["max_node_load"],
                    note,
                ]
            )
        else:  # section6: one trial yields the actual and the schedule row
            rows.append(
                [
                    "section6 (actual)",
                    m["actual_steps"] if m["completed"] else None,
                    m["max_node_load"],
                    note,
                ]
            )
            rows.append(
                [
                    "section6 (schedule)",
                    m["scheduled_steps"],
                    m["max_node_load"],
                    "the 972n-certified barrier clock",
                ]
            )
    return rows


def test_e16_baseline_panorama(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    by_name = {r[0]: r for r in rows}
    # Everyone delivers this benign instance.
    for name, steps, _load, _note in rows:
        assert steps is not None, name
    # The classic hierarchy on a benign instance: simple routers and the
    # unbounded classic sit near the diameter; sorting pays its n log n;
    # Section 6's schedule pays its constants.
    diameter = 2 * N - 2
    assert by_name["bounded-dimension-order"][1] <= 2 * diameter
    assert by_name["farthest-first"][1] <= diameter
    assert by_name["shearsort+route"][1] > diameter
    assert by_name["section6 (schedule)"][1] > by_name["shearsort+route"][1]
    record_result(
        "E16_baseline_panorama",
        format_table(
            ["algorithm", f"steps (n={N}, random perm)", "max node load", "family"],
            rows,
        )
        + "\n\nThe introduction's whole landscape on one instance: simple "
        "routers are fast here -- the paper's point is that only the "
        "complicated families on this table survive the *worst* case with "
        "bounded queues.",
        data=rows,
    )
