"""A5 (extension) -- the synchrony assumption, stress-tested.

The paper's recurring caveat -- fast algorithms "may be too specifically
tailored to static permutations and synchronous networks to be practical"
-- and its closing open problem ask what survives asynchrony.  We model
asynchrony as i.i.d. per-step link availability and measure which safety
arguments are load-bearing:

- Theorem 15's always-accepting N/S queues overflow the moment links can
  fail (their safety WAS the synchrony);
- bufferless hot-potato routing overflows once availability drops enough
  that nodes cannot drain;
- conservative accept-if-space designs never overflow and degrade
  gracefully (roughly 1/availability slowdown).
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.mesh import Mesh, Simulator
from repro.mesh.asynchrony import (
    ConservativeBoundedDimensionOrderRouter,
    make_async,
)
from repro.mesh.errors import QueueOverflowError
from repro.routing import (
    BoundedDimensionOrderRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
)
from repro.workloads import random_permutation

N = 16
ROUTERS = [
    ("thm15 (always-accept N/S)", lambda: BoundedDimensionOrderRouter(1)),
    ("thm15 conservative variant", lambda: ConservativeBoundedDimensionOrderRouter(1)),
    ("greedy adaptive (incoming k=2)", lambda: GreedyAdaptiveRouter(2, "incoming")),
    ("hot-potato (bufferless)", HotPotatoRouter),
]


def run_experiment():
    mesh = Mesh(N)
    rows = []
    for name, factory in ROUTERS:
        for avail in (1.0, 0.9, 0.7):
            sim = make_async(
                Simulator(mesh, factory(), random_permutation(mesh, seed=0)),
                avail,
                seed=1,
            )
            try:
                result = sim.run(max_steps=50_000)
                outcome = (
                    f"delivered in {result.steps}"
                    if result.completed
                    else f"stalled at {result.steps}"
                )
            except QueueOverflowError:
                outcome = f"OVERFLOW at t={sim.time}"
            rows.append([name, avail, outcome])
    return rows


def test_a5_asynchrony(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    outcomes = {(r[0], r[1]): r[2] for r in rows}
    # Synchrony-dependent guarantees break.
    assert outcomes[("thm15 (always-accept N/S)", 0.9)].startswith("OVERFLOW")
    assert outcomes[("hot-potato (bufferless)", 0.7)].startswith("OVERFLOW")
    # Conservative acceptance survives every availability level.
    for avail in (1.0, 0.9, 0.7):
        assert outcomes[("thm15 conservative variant", avail)].startswith("delivered")
        assert outcomes[("greedy adaptive (incoming k=2)", avail)].startswith("delivered")
    record_result(
        "A5_asynchrony",
        format_table(["router", "link availability", "outcome"], rows)
        + "\n\nGuarantee-based queue safety (Theorem 15's N/S rule, "
        "bufferless deflection) is a synchrony artifact; conservative "
        "acceptance survives -- quantifying the paper's 'too tailored to "
        "synchronous networks' caveat and its closing open problem.",
    )
