"""E7 -- Section 5, the torus: the same Omega(n^2/k^2) via a contiguous
(n/2) x (n/2) submesh of the torus.

Verifies that construction traffic never wraps, that the replay matches,
and that the certified bound equals the submesh bound.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.bounds import adaptive_lower_bound, torus_lower_bound
from repro.core.extensions import TorusLowerBoundConstruction
from repro.core.replay import replay_constructed_permutation
from repro.routing import GreedyAdaptiveRouter


def run_experiment():
    rows = []
    for n in (120, 240):
        factory = lambda: GreedyAdaptiveRouter(1)
        con = TorusLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result,
            factory,
            topology=con.topology,
            run_to_completion=True,
            max_steps=2_000_000,
        )
        rows.append(
            {
                "torus n": n,
                "submesh m": n // 2,
                "bound": result.bound_steps,
                "submesh bound": adaptive_lower_bound(n // 2, 1),
                "measured": report.total_steps,
                "cfg": report.configuration_matches,
                "undelivered": report.undelivered_at_bound,
            }
        )
    return rows


def test_e7_torus(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["bound"] == r["submesh bound"]
        assert r["bound"] == torus_lower_bound(r["torus n"], 1)
        assert r["cfg"] is True
        assert r["undelivered"] >= 1
        assert r["measured"] >= r["bound"]
    record_result(
        "E7_torus",
        format_table(
            ["torus n", "submesh m", "certified bound", "measured", "replay equal"],
            [
                [r["torus n"], r["submesh m"], r["bound"], r["measured"], r["cfg"]]
                for r in rows
            ],
        )
        + "\n\nThe construction embeds in the torus unchanged: all minimal "
        "paths stay inside the submesh (no wraparound shortcuts).",
    )
