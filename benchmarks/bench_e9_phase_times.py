"""E9 -- Lemmas 29-32: per-phase step budgets of the Section 6 algorithm.

For every subphase executed at n = 81, compares measured March,
Sort-and-Smooth, Balancing, and base-case durations against the lemma
budgets q*d-1, 2((d-1)+q*d), 3s-4, and 14.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.bounds import (
    section6_balancing_bound,
    section6_base_case_bound,
    section6_march_bound,
    section6_sort_smooth_bound,
)
from repro.mesh import Mesh
from repro.tiling import Section6Router
from repro.tiling.phases import Q_REFUSAL
from repro.workloads import random_permutation, transpose_permutation


def run_experiment():
    mesh = Mesh(81)
    rows = []
    worst: dict[tuple[int, str], int] = {}
    base_steps = []
    for name, packets in (
        ("random", random_permutation(mesh, seed=0)),
        ("transpose", transpose_permutation(mesh)),
    ):
        result = Section6Router(81).route(packets)
        base_steps.extend(result.base_case_steps.values())
        for ph in result.phases:
            if not ph.active_packets:
                continue
            d = ph.tile_side // 27
            for kind, steps, budget in (
                ("march", ph.march_steps, section6_march_bound(Q_REFUSAL, d)),
                ("sort+smooth", ph.sort_smooth_steps, section6_sort_smooth_bound(Q_REFUSAL, d)),
                ("balancing", ph.balancing_steps, section6_balancing_bound(ph.tile_side)),
            ):
                key = (ph.tile_side, kind)
                worst[key] = max(worst.get(key, 0), steps)
                assert steps <= budget, (name, ph, kind, steps, budget)
    for (side, kind), steps in sorted(worst.items(), reverse=True):
        d = side // 27
        budget = {
            "march": section6_march_bound(Q_REFUSAL, d),
            "sort+smooth": section6_sort_smooth_bound(Q_REFUSAL, d),
            "balancing": section6_balancing_bound(side),
        }[kind]
        rows.append([side, kind, steps, budget])
    rows.append(["-", "base case", max(base_steps), section6_base_case_bound()])
    return rows


def test_e9_phase_time_budgets(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for row in rows:
        assert row[2] <= row[3], row
    record_result(
        "E9_phase_times",
        format_table(
            ["tile side", "phase", "worst measured steps", "lemma budget"],
            rows,
        )
        + "\n\nEvery phase stayed within its Lemma 29-32 budget at n=81 "
        "(budgets are also enforced at runtime on every run).",
    )
