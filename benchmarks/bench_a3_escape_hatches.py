"""A3 (ablation) -- the conclusion's three escape hatches, demonstrated.

The paper: to route in o(n^2/k^2) one must (1) use full destination
addresses, (2) route nonminimally, or (3) randomize.  We route the *same
constructed permutation* (built against the deterministic greedy adaptive
victim) with a representative of each escape hatch and with the victim
itself.  The victim is slow; each escape hatch finishes near the diameter.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core import AdaptiveLowerBoundConstruction
from repro.core.replay import packets_for_replay
from repro.mesh import Mesh, Simulator
from repro.routing import (
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
    RandomizedAdaptiveRouter,
)

N = 216


def run_experiment():
    victim_factory = lambda: GreedyAdaptiveRouter(1)
    con = AdaptiveLowerBoundConstruction(N, victim_factory)
    result = con.run()
    mesh = Mesh(N)

    contenders = [
        ("victim: greedy-adaptive k=1", victim_factory),
        ("(1) full addresses: farthest-first", lambda: FarthestFirstRouter(1)),
        ("(2) nonminimal: hot-potato", HotPotatoRouter),
        (
            "(3) randomized: greedy + coin flips",
            lambda: RandomizedAdaptiveRouter(1, seed=11, queue_kind="incoming"),
        ),
    ]
    rows = []
    for name, factory in contenders:
        run = Simulator(mesh, factory(), packets_for_replay(result)).run(
            max_steps=2_000_000
        )
        rows.append([name, run.steps if run.completed else None, run.max_node_load])
    return result.bound_steps, rows


def test_a3_escape_hatches(benchmark, record_result):
    bound, rows = run_once(benchmark, run_experiment)
    times = {row[0]: row[1] for row in rows}
    victim_time = times["victim: greedy-adaptive k=1"]
    assert victim_time is not None and victim_time >= bound
    for name, t in times.items():
        assert t is not None, f"{name} failed to deliver"
        if name != "victim: greedy-adaptive k=1":
            # Every escape hatch beats the victim on its own hard instance.
            assert t < victim_time, (name, t, victim_time)
    record_result(
        "A3_escape_hatches",
        format_table(
            ["router", "steps on the constructed permutation", "max node load"],
            rows,
        )
        + f"\n\ncertified bound for the victim: {bound}; diameter {2 * N - 2}.\n"
        "The instance is hard only for the algorithm it was built against: "
        "full addresses, nonminimality, or randomness each dissolve it -- "
        "exactly the paper's conclusion.",
    )
