"""A4 (ablation) -- the Section 6 refusal threshold q.

q = 17 * (27 - 3) = 408 is chosen so that *all* active packets of a class
fit in their target strip (17 per node starting, 24 strips of travel).  The
improved analysis uses q = 102 for iterations j >= 1.  Sweeping q exposes
the tradeoff the constants encode: the scheduled time bound scales with q
while actual behaviour (on benign permutations) barely moves, and too-small
q violates the March's capacity argument outright.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.mesh import Mesh
from repro.tiling import Section6Router
from repro.tiling.state import Section6Violation
from repro.workloads import random_permutation, transpose_permutation


def run_experiment():
    mesh = Mesh(81)
    rows = []
    for q, label in (
        (408, "paper"),
        (102, "improved-everywhere"),
        (51, "half-improved"),
        (17, "too small"),
    ):
        for name, packets in (
            ("random", random_permutation(mesh, seed=0)),
            ("transpose", transpose_permutation(mesh)),
        ):
            try:
                result = Section6Router(81, q=q, record_phases=False).route(packets)
                rows.append(
                    [q, label, name, result.actual_steps, result.scheduled_steps,
                     result.max_node_load, "ok"]
                )
            except Section6Violation as exc:
                rows.append(
                    [q, label, name, None, None, None,
                     f"violation: {str(exc)[:48]}"]
                )
    return rows


def test_a4_section6_q_ablation(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    ok_rows = [r for r in rows if r[6] == "ok"]
    # The paper's q always works; far-too-small q provably breaks a budget.
    assert all(r[6] == "ok" for r in rows if r[0] == 408)
    assert any(r[6].startswith("violation") for r in rows if r[0] == 17)
    # Scheduled time scales (roughly linearly) with q.
    sched_408 = next(r[4] for r in ok_rows if r[0] == 408 and r[2] == "random")
    sched_102 = next((r[4] for r in ok_rows if r[0] == 102 and r[2] == "random"), None)
    if sched_102 is not None:
        assert sched_102 < sched_408
    record_result(
        "A4_section6_q_ablation",
        format_table(
            ["q", "variant", "workload", "actual", "scheduled", "max load", "status"],
            rows,
        )
        + "\n\nSmaller q tightens the schedule (and the queue bound 2q+18) "
        "until the March capacity argument fails -- the constants are not "
        "decorative.",
    )
