"""E10 -- the paper's motivating gap: the same router routes random traffic
near the diameter but needs Omega(n^2/k) steps on its constructed worst case.

One router (Theorem 15's, k=1), two workload families, a growing ratio.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.replay import packets_for_replay
from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation


def run_experiment():
    rows = []
    ns = (60, 96, 120)
    random_steps = []
    adversarial_steps = []
    for n in ns:
        mesh = Mesh(n)
        rand = Simulator(
            mesh, BoundedDimensionOrderRouter(1), random_permutation(mesh, seed=3)
        ).run(max_steps=2_000_000)
        con = DorLowerBoundConstruction(n, lambda: BoundedDimensionOrderRouter(1))
        adv = Simulator(
            mesh, BoundedDimensionOrderRouter(1), packets_for_replay(con.run())
        ).run(max_steps=2_000_000)
        assert rand.completed and adv.completed
        random_steps.append(rand.steps)
        adversarial_steps.append(adv.steps)
        rows.append(
            [n, rand.steps, adv.steps, f"{adv.steps / rand.steps:.2f}", 2 * n - 2]
        )
    return rows, ns, random_steps, adversarial_steps


def test_e10_random_vs_adversarial(benchmark, record_result):
    rows, ns, random_steps, adversarial_steps = run_once(benchmark, run_experiment)
    ratios = [a / r for a, r in zip(adversarial_steps, random_steps)]
    # The gap grows with n (random ~ O(n), adversarial ~ Omega(n^2/k)).
    assert ratios[-1] > ratios[0]
    assert all(a > r for a, r in zip(adversarial_steps, random_steps))
    record_result(
        "E10_random_vs_adversarial",
        format_table(
            ["n", "random steps", "adversarial steps", "ratio", "2n-2"],
            rows,
        )
        + "\n\nSame router, same k: random permutations track the diameter "
        "while the constructed permutations grow quadratically -- the gap "
        "the paper's lower bounds formalize.",
    )
