"""E1 -- Theorems 13/14: the constructed permutation forces Omega(n^2/k^2)
steps on destination-exchangeable minimal adaptive routers.

Regenerates the paper's headline claim as a table: for each (n, k, victim),
the certified bound ``floor(l) * dn``, the measured routing time of the
constructed permutation, and the diameter baseline.  Asserts measured >=
certified and that the certified bound's fitted exponent in n is ~2.

The sweep itself is declared in ``specs/e1_lower_bound_adaptive.json`` and
executed by the campaign harness (``python -m repro campaign run`` runs the
identical trials from a shell); this file keeps the paper-facing assertions
and table shaping.
"""

from __future__ import annotations

from conftest import CAMPAIGNS_DIR, SPECS_DIR, run_once
from repro.analysis import fit_power_law, format_table
from repro.core.bounds import diameter_bound
from repro.core.constants import AdaptiveConstants
from repro.harness import CampaignSpec, run_campaign

SPEC_PATH = SPECS_DIR / "e1_lower_bound_adaptive.json"


def run_experiment():
    campaign = CampaignSpec.from_file(SPEC_PATH)
    run = run_campaign(campaign, workers=1, base_dir=CAMPAIGNS_DIR, progress=False)
    rows = []
    for result in run.results:
        assert result.status == "ok", result.error
        m = result.metrics
        rows.append(
            {
                "victim": m["victim"],
                "n": result.spec.n,
                "k": result.spec.k,
                "bound": m["bound_steps"],
                "measured": m["measured_steps"],
                "diameter": diameter_bound(result.spec.n),
                "exchanges": m["exchange_count"],
                "undelivered_at_bound": m["undelivered_at_bound"],
            }
        )
    return rows


def test_e1_lower_bound_adaptive(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)

    # Theorem 13: the replay must still have undelivered packets at the bound.
    for row in rows:
        assert row["undelivered_at_bound"] >= 1
        if row["measured"] is not None:
            assert row["measured"] >= row["bound"]

    # Shape: the certified bound grows ~ n^2 for fixed k (checked on the
    # closed formula over a wide range, where floor effects vanish).
    ns = [500, 1000, 2000, 4000]
    bounds = [AdaptiveConstants.choose(n, 1).bound_steps for n in ns]
    fit = fit_power_law(ns, bounds)
    assert 1.8 <= fit.exponent <= 2.2, fit

    # Shape: at fixed n, growing k shrinks the bound.
    b_k = [AdaptiveConstants.choose(2000, k).bound_steps for k in (1, 2, 4)]
    assert b_k[0] > b_k[1] > b_k[2]

    record_result(
        "E1_lower_bound_adaptive",
        format_table(
            ["victim", "n", "k", "certified bound", "measured", "2n-2", "exchanges"],
            [
                [
                    r["victim"],
                    r["n"],
                    r["k"],
                    r["bound"],
                    r["measured"],
                    r["diameter"],
                    r["exchanges"],
                ]
                for r in rows
            ],
        )
        + f"\n\nbound(n) exponent fit (k=1, formula): {fit.exponent:.3f} "
        f"(R^2={fit.r_squared:.4f}); expected ~2 (Theorem 14)",
        data=rows,
    )
