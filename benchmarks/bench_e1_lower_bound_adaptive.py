"""E1 -- Theorems 13/14: the constructed permutation forces Omega(n^2/k^2)
steps on destination-exchangeable minimal adaptive routers.

Regenerates the paper's headline claim as a table: for each (n, k, victim),
the certified bound ``floor(l) * dn``, the measured routing time of the
constructed permutation, and the diameter baseline.  Asserts measured >=
certified and that the certified bound's fitted exponent in n is ~2.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import fit_power_law, format_table
from repro.core import AdaptiveLowerBoundConstruction, replay_constructed_permutation
from repro.core.bounds import diameter_bound
from repro.core.constants import AdaptiveConstants
from repro.routing import AlternatingAdaptiveRouter, GreedyAdaptiveRouter

SWEEP = [
    ("greedy-adaptive", 60, 1, lambda: GreedyAdaptiveRouter(1)),
    ("greedy-adaptive", 120, 1, lambda: GreedyAdaptiveRouter(1)),
    ("greedy-adaptive", 216, 1, lambda: GreedyAdaptiveRouter(1)),
    ("alternating-adaptive", 120, 1, lambda: AlternatingAdaptiveRouter(1)),
    ("greedy-adaptive", 216, 2, lambda: GreedyAdaptiveRouter(2)),
]


def run_experiment():
    rows = []
    for name, n, k, factory in SWEEP:
        con = AdaptiveLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=2_000_000
        )
        measured = report.total_steps if report.completed else None
        rows.append(
            {
                "victim": name,
                "n": n,
                "k": k,
                "bound": result.bound_steps,
                "measured": measured,
                "diameter": diameter_bound(n),
                "exchanges": result.exchange_count,
                "undelivered_at_bound": report.undelivered_at_bound,
            }
        )
    return rows


def test_e1_lower_bound_adaptive(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)

    # Theorem 13: the replay must still have undelivered packets at the bound.
    for row in rows:
        assert row["undelivered_at_bound"] >= 1
        if row["measured"] is not None:
            assert row["measured"] >= row["bound"]

    # Shape: the certified bound grows ~ n^2 for fixed k (checked on the
    # closed formula over a wide range, where floor effects vanish).
    ns = [500, 1000, 2000, 4000]
    bounds = [AdaptiveConstants.choose(n, 1).bound_steps for n in ns]
    fit = fit_power_law(ns, bounds)
    assert 1.8 <= fit.exponent <= 2.2, fit

    # Shape: at fixed n, growing k shrinks the bound.
    b_k = [AdaptiveConstants.choose(2000, k).bound_steps for k in (1, 2, 4)]
    assert b_k[0] > b_k[1] > b_k[2]

    record_result(
        "E1_lower_bound_adaptive",
        format_table(
            ["victim", "n", "k", "certified bound", "measured", "2n-2", "exchanges"],
            [
                [
                    r["victim"],
                    r["n"],
                    r["k"],
                    r["bound"],
                    r["measured"],
                    r["diameter"],
                    r["exchanges"],
                ]
                for r in rows
            ],
        )
        + f"\n\nbound(n) exponent fit (k=1, formula): {fit.exponent:.3f} "
        f"(R^2={fit.r_squared:.4f}); expected ~2 (Theorem 14)",
    )
