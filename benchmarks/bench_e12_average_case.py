"""E12 -- Section 1.1's average-case contrast (Leighton, quoted by the paper):
with random destinations, greedy dimension-order routing finishes in
``2n + O(log n)`` steps w.h.p. and queues stay tiny (max four packets) --
while the *worst case* with bounded queues is Theta(n^2/k).

This is the gap that motivates the whole paper: averages are easy, worst
cases are provably hard.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.mesh import Mesh, Simulator
from repro.routing import DimensionOrderRouter
from repro.workloads import random_destinations


def run_experiment():
    rows = []
    for n in (24, 48, 96):
        mesh = Mesh(n)
        worst_steps = 0
        worst_queue = 0
        for seed in range(5):
            packets = random_destinations(mesh, seed=seed)
            # Capacity 16 is "effectively unbounded": the claim is that
            # occupancy never comes close.
            result = Simulator(mesh, DimensionOrderRouter(16), packets).run(
                max_steps=100_000
            )
            assert result.completed
            worst_steps = max(worst_steps, result.steps)
            worst_queue = max(worst_queue, result.max_queue_len)
        rows.append([n, worst_steps, 2 * n, worst_queue])
    return rows


def test_e12_average_case(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for n, steps, two_n, queue in rows:
        # 2n + O(log n): allow a generous constant on the log term.
        assert steps <= two_n + 8 * max(1, n.bit_length())
        # "None of the queues ever contains more than four packets" (whp);
        # allow 6 for the tail at 5 seeds.
        assert queue <= 6
    record_result(
        "E12_average_case",
        format_table(
            ["n", "worst steps over 5 seeds", "2n", "worst queue"],
            rows,
        )
        + "\n\nRandom destinations route in ~2n steps with queues <= 4-6 -- "
        "the average case is easy (Section 1.1), which is why the paper's "
        "worst-case lower bounds are the interesting object.",
    )
