"""E14 -- the two upper bounds head to head: O(n) (Section 6) vs
O(n^2/k + n) (Theorem 15).

The paper motivates Section 6 as the asymptotic winner while conceding its
constants are impractical (972n with 834-packet queues).  This experiment
quantifies that tension on identical workloads: at implementable sizes the
Theorem 15 router's *measured* time beats Section 6's barrier schedule by
orders of magnitude; the guaranteed-time crossover (8(n^2/k + n) vs 972n)
sits near n ~ 120 k -- but the schedule constants and 834-packet
queues keep the quadratic router preferable in practice far beyond it.
Exactly the paper's open problem: "Is there a practical routing algorithm
that routes arbitrary permutations in O(n) time?"
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import crossover_point, format_table
from repro.core.bounds import section6_time_bound, theorem15_upper_bound
from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.tiling import Section6Router
from repro.workloads import random_permutation


def run_experiment():
    rows = []
    for n in (27, 81):
        mesh = Mesh(n)
        packets = random_permutation(mesh, seed=0)
        t15 = Simulator(mesh, BoundedDimensionOrderRouter(1), packets).run(
            max_steps=1_000_000
        )
        s6 = Section6Router(n, record_phases=False).route(
            random_permutation(mesh, seed=0)
        )
        rows.append(
            [
                n,
                t15.steps,
                theorem15_upper_bound(n, 1),
                s6.actual_steps,
                s6.scheduled_steps,
                section6_time_bound(n),
            ]
        )

    # Where do the *guarantees* cross?  8(n^2/k + n) vs 972n for k = 1.
    ns = list(range(20, 500, 10))
    t15_guarantee = [theorem15_upper_bound(n, 1) for n in ns]
    s6_guarantee = [section6_time_bound(n) for n in ns]
    crossover = crossover_point(ns, t15_guarantee, s6_guarantee)
    return rows, crossover


def test_e14_upper_bound_crossover(benchmark, record_result):
    rows, crossover = run_once(benchmark, run_experiment)
    for n, t15_steps, t15_budget, s6_actual, s6_sched, s6_budget in rows:
        assert t15_steps <= t15_budget
        assert s6_sched <= s6_budget
        # At implementable sizes Theorem 15 wins on the wall clock.
        assert t15_steps < s6_sched
    # 8(n^2/k + n) = 972n  =>  n ~ (972 - 8)/8 ~ 120 at k = 1.
    assert crossover is not None and 80 <= crossover <= 150

    record_result(
        "E14_upper_bound_crossover",
        format_table(
            ["n", "Thm15 measured", "Thm15 budget 8(n^2/k+n)",
             "S6 actual", "S6 schedule", "S6 budget 972n"],
            rows,
        )
        + f"\n\nGuaranteed-time crossover (k=1): n ~ {crossover:.0f}. "
        "Below it the quadratic router's guarantee is the better one; beyond "
        "it Section 6's O(n) guarantee wins -- yet its measured barrier "
        "schedule still loses to Theorem 15's measured time at every "
        "implementable size, which is the paper's closing open problem on "
        "*practical* O(n) routing.",
    )
