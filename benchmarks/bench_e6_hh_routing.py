"""E6 -- Section 5, h-h routing: Omega(h^3 n^2 / (k+h)^2).

Static h-h constructions (h <= k) with replay verification, the closed-form
growth in h, and the dynamic setting for h > k (which the paper notes is
then necessary).
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.bounds import hh_lower_bound_closed_form
from repro.core.extensions import HhLowerBoundConstruction
from repro.core.replay import replay_constructed_permutation
from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter, GreedyAdaptiveRouter
from repro.workloads import dynamic_hh_problem


def run_experiment():
    construction_rows = []
    for n, h, k in ((60, 2, 2), (90, 2, 2), (60, 3, 3)):
        factory = lambda k=k: GreedyAdaptiveRouter(k)
        con = HhLowerBoundConstruction(n, h, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=2_000_000
        )
        construction_rows.append(
            {
                "n": n,
                "h": h,
                "k": k,
                "bound": result.bound_steps,
                "measured": report.total_steps,
                "cfg": report.configuration_matches,
                "undelivered": report.undelivered_at_bound,
            }
        )

    # Closed-form growth in h at fixed n, k.
    growth = [
        (h, hh_lower_bound_closed_form(20_000, 8, h)) for h in (1, 2, 4, 8)
    ]

    # Dynamic setting: h > k still routes, with bounded queues.
    mesh = Mesh(24)
    dyn = Simulator(
        mesh,
        BoundedDimensionOrderRouter(1),
        dynamic_hh_problem(mesh, h=4, spacing=2, seed=0),
    ).run(max_steps=500_000)
    return construction_rows, growth, dyn


def test_e6_hh_routing(benchmark, record_result):
    rows, growth, dyn = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["cfg"] is True
        assert r["undelivered"] >= 1
        assert r["measured"] >= r["bound"]
    values = [g[1] for g in growth]
    assert values == sorted(values)  # monotone in h
    assert values[3] > 4 * values[1]  # superlinear growth (h^3/(k+h)^2)
    assert dyn.completed and dyn.max_queue_len <= 1

    record_result(
        "E6_hh_routing",
        format_table(
            ["n", "h", "k", "certified bound", "measured", "replay equal"],
            [[r["n"], r["h"], r["k"], r["bound"], r["measured"], r["cfg"]] for r in rows],
        )
        + "\n\nclosed-form bound vs h (n=20000, k=8): "
        + ", ".join(f"h={h}: {v}" for h, v in growth)
        + f"\n\ndynamic h=4 > k=1 run: delivered {dyn.delivered}/{dyn.total_packets} "
        f"in {dyn.steps} steps with max queue {dyn.max_queue_len}.",
    )
