"""E13 -- Theorem 15's proof mechanics, observed live: turning intervals.

The O(n^2/k + n) argument counts at most n/k turning intervals per row,
each O(n) long.  This bench instruments real executions (random and
adversarial instances) and reports the observed interval census against
those budgets -- the proof's bookkeeping, measured.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import TurningIntervalMonitor, format_table
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.replay import packets_for_replay
from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation


def monitored_run(n: int, k: int, packets):
    monitor = TurningIntervalMonitor(k=k)
    sim = Simulator(
        Mesh(n), BoundedDimensionOrderRouter(k), packets, interceptor=monitor
    )
    result = sim.run(max_steps=2_000_000)
    monitor.finalize(sim)
    assert result.completed
    return monitor, result


def run_experiment():
    rows = []
    for n, k, workload_name in (
        (32, 1, "random"),
        (32, 2, "random"),
        (60, 1, "adversarial"),
        (96, 1, "adversarial"),
    ):
        if workload_name == "random":
            packets = random_permutation(Mesh(n), seed=0)
        else:
            con = DorLowerBoundConstruction(
                n, lambda k=k: BoundedDimensionOrderRouter(k)
            )
            packets = packets_for_replay(con.run())
        monitor, result = monitored_run(n, k, packets)
        rows.append(
            [
                n,
                k,
                workload_name,
                len(monitor.intervals),
                monitor.max_intervals_per_row(),
                n // k,
                monitor.max_duration(),
                result.steps,
            ]
        )
    return rows


def test_e13_turning_intervals(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for n, k, _w, _total, per_row, budget, duration, _steps in rows:
        assert per_row <= budget  # the proof's n/k census
        assert duration <= 3 * n  # O(n) interval length
    # Adversarial instances generate many more intervals than random ones
    # at the same size regime -- that is their slowdown mechanism.
    record_result(
        "E13_turning_intervals",
        format_table(
            ["n", "k", "workload", "intervals", "max per row", "n/k budget",
             "longest interval", "total steps"],
            rows,
        )
        + "\n\nPer-row interval counts never exceed n/k and each interval is "
        "O(n): Theorem 15's ledger, verified on live executions including "
        "the adversarial worst case.",
    )
