"""E2 -- Lemma 12: replaying the constructed permutation with no exchanges
reproduces the construction's configuration exactly.

The strongest internal check of the whole machinery: the network
configuration (every packet's position, queue order and state, every node's
state) after ``floor(l) * dn`` steps of the exchange-free replay must equal
the construction run's final configuration, and all deliveries must agree
step-for-step.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core import AdaptiveLowerBoundConstruction, replay_constructed_permutation
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.routing import (
    AlternatingAdaptiveRouter,
    BoundedDimensionOrderRouter,
    DimensionOrderRouter,
    GreedyAdaptiveRouter,
)

CASES = [
    ("adaptive/greedy k=1", 60, AdaptiveLowerBoundConstruction, lambda: GreedyAdaptiveRouter(1)),
    ("adaptive/alternating k=1", 60, AdaptiveLowerBoundConstruction, lambda: AlternatingAdaptiveRouter(1)),
    ("adaptive/dimension-order k=1", 60, AdaptiveLowerBoundConstruction, lambda: DimensionOrderRouter(1)),
    ("adaptive/greedy k=1 n=120", 120, AdaptiveLowerBoundConstruction, lambda: GreedyAdaptiveRouter(1)),
    ("dor/central k=1", 60, DorLowerBoundConstruction, lambda: DimensionOrderRouter(1)),
    ("dor/bounded k=1", 60, DorLowerBoundConstruction, lambda: BoundedDimensionOrderRouter(1)),
]


def run_experiment():
    rows = []
    for name, n, construction_cls, factory in CASES:
        con = construction_cls(n, factory)
        result = con.run()
        report = replay_constructed_permutation(result, factory)
        rows.append(
            [
                name,
                result.bound_steps,
                result.exchange_count,
                report.configuration_matches,
                report.delivery_times_match,
            ]
        )
    return rows


def test_e2_replay_equivalence(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for row in rows:
        assert row[3] is True, f"configuration mismatch: {row[0]}"
        assert row[4] is True, f"delivery-time mismatch: {row[0]}"
    record_result(
        "E2_replay_equivalence",
        format_table(
            ["construction/victim", "steps", "exchanges", "config equal", "deliveries equal"],
            rows,
        )
        + "\n\nLemma 12 holds exactly on every construction/victim pair.",
    )
