"""E11 -- Section 5, nonminimal extension: Omega(n^2 / ((delta+1)^3 k^2)) for
destination-exchangeable algorithms straying at most delta beyond the
minimal rectangle.

The closed form is checked for monotonicity and the delta = 0 anchoring to
Theorem 14; the delta -> infinity trend explains why the O(n^{3/2})
hot-potato algorithm (destination-exchangeable but unboundedly nonminimal)
does not contradict the bound.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.bounds import (
    diameter_bound,
    nonminimal_lower_bound,
    theorem14_closed_form,
)
from repro.mesh import Mesh, Packet, Simulator
from repro.routing import BoundedExcursionRouter


def run_experiment():
    n, k = 24 * 9 * 4, 1  # deep in the asymptotic regime for k=1
    rows = []
    for delta in (0, 1, 2, 4, 8):
        bound = nonminimal_lower_bound(n, k, delta)
        rows.append([delta, f"{bound:.0f}", diameter_bound(n)])

    # Empirical counterpart: the bounded-excursion router (the Section 5
    # class realized in code) on the canonical head-on jam.
    demo = []
    for delta in (0, 1):
        pair = [Packet(0, (1, 1), (3, 1)), Packet(1, (2, 1), (0, 1))]
        run = Simulator(Mesh(4), BoundedExcursionRouter(1, delta=delta), pair).run(100)
        demo.append([delta, "delivered" if run.completed else "deadlocked", run.steps])
    return n, k, rows, demo


def test_e11_nonminimal_extension(benchmark, record_result):
    n, k, rows, demo = run_once(benchmark, run_experiment)
    bounds = [float(r[1]) for r in rows]
    assert bounds[0] == float(f"{theorem14_closed_form(n, k):.0f}")
    assert bounds == sorted(bounds, reverse=True)  # decreasing in delta
    # (delta+1)^3 scaling: delta 0 -> 1 divides by 8.
    assert bounds[0] / bounds[1] == 8.0
    # delta = 0 deadlocks the head-on pair; delta = 1 dissolves it.
    assert demo[0][1] == "deadlocked" and demo[1][1] == "delivered"
    record_result(
        "E11_nonminimal",
        format_table(
            ["delta", f"lower bound (n={n}, k={k})", "2n-2"],
            rows,
        )
        + "\n\nBound decays as (delta+1)^3: enough nonminimality (hot-potato "
        "routing) escapes it, matching the paper's O(n^{3/2}) example.\n\n"
        + format_table(
            ["router delta", "head-on jam (k=1)", "steps"],
            demo,
        )
        + "\n\nOne unit of excursion budget dissolves the canonical minimal-"
        "routing deadlock; fixed budgets still exhaust on dense knots "
        "(tests pin both behaviours), which is why the bound survives every "
        "fixed delta.",
    )
