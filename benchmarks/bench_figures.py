"""F1-F7 -- the paper's figures, regenerated as text from live objects.

Each renderer draws from the actual geometry/construction data structures;
the assertions pin the structural content (boxes, columns, strips, layers).
"""

from __future__ import annotations

from conftest import run_once
from repro.core import AdaptiveLowerBoundConstruction
from repro.core.adversary import AdaptiveAdversary
from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
)
from repro.core.dor_adversary import DorGeometry
from repro.core.ff_adversary import FfGeometry
from repro.core.geometry import BoxGeometry
from repro.mesh import Mesh, Simulator
from repro.routing import GreedyAdaptiveRouter
from repro.tiling.geometry import Tile
from repro.viz import (
    render_box_invariant,
    render_lemma12_diagram,
    render_construction_geometry,
    render_dor_construction,
    render_ff_construction,
    render_sort_smooth,
    render_strips,
    render_subphase_schedule,
)


def run_experiment():
    sections = []
    geo = BoxGeometry.from_constants(AdaptiveConstants.choose(60, 1))
    sections.append(render_construction_geometry(geo))

    factory = lambda: GreedyAdaptiveRouter(1)
    con = AdaptiveLowerBoundConstruction(60, factory)
    packets = con.build_packets()
    adv = AdaptiveAdversary(con.constants, con.geometry)
    sim = Simulator(Mesh(60), factory(), packets, interceptor=adv)
    sim.run_steps(10)
    sections.append(render_box_invariant(con.geometry, packets, i=1))

    dc = DimensionOrderConstants.choose(60, 1)
    sections.append(
        render_dor_construction(DorGeometry(n=60, cn=dc.cn, levels=dc.l_floor))
    )
    fc = FarthestFirstConstants.choose(60, 1)
    sections.append(
        render_ff_construction(
            FfGeometry(n=60, cn=fc.cn, levels=fc.l_floor, num_classes=10)
        )
    )
    sections.append(render_lemma12_diagram(con.constants.bound_steps, adv.exchange_count))
    sections.append(render_strips(Tile(0, 0, 81), dest_strip=20))
    sections.append(
        render_sort_smooth(
            before={(0, 1): [6, 7, 1, 1, 2], (0, 0): [4, 2, 3, 6]},
            after={(0, 3): [7, 6], (0, 2): [6, 4], (0, 1): [3, 2], (0, 0): [2, 1]},
            d=4,
        )
    )
    sections.append(render_subphase_schedule())
    return sections


def test_figures_render(benchmark, record_result):
    sections = run_once(benchmark, run_experiment)
    joined = "\n\n".join(sections)
    for marker in (
        "Figure 1",
        "Figure 2",
        "Figure 3",
        "Figure 4 left",
        "Figure 4 right",
        "Figure 5",
        "Figure 6",
        "Figure 7",
    ):
        assert marker in joined
    assert "n" in sections[1] and "e" in sections[1]  # live packets drawn
    record_result("F1_F7_figures", joined)
