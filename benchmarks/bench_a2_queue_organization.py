"""A2 (ablation) -- Section 5, "Other Queue Types": a central queue of size
4k can simulate four incoming queues of size k.

Empirically: the incoming-queue adaptive router and the central-queue
router with 4x the capacity route the same instances in comparable time
with the same total node capacity, and the lower-bound constants scale with
node capacity exactly as the paper's recalculation prescribes.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.constants import AdaptiveConstants
from repro.mesh import Mesh, Simulator
from repro.routing import GreedyAdaptiveRouter
from repro.workloads import random_partial_permutation


def run_experiment():
    rows = []
    mesh = Mesh(24)
    for k in (1, 2):
        for seed in range(3):
            packets = lambda: random_partial_permutation(mesh, 0.4, seed=seed)
            inc = Simulator(
                mesh, GreedyAdaptiveRouter(k, "incoming"), packets()
            ).run(200_000)
            cen = Simulator(
                mesh, GreedyAdaptiveRouter(4 * k, "central"), packets()
            ).run(200_000)
            rows.append(
                [
                    k,
                    seed,
                    inc.steps if inc.completed else None,
                    cen.steps if cen.completed else None,
                    inc.max_node_load,
                    cen.max_node_load,
                ]
            )
    # The construction's constants depend only on node capacity: incoming-k
    # and central-4k victims get identical bounds.
    consts_equal = (
        AdaptiveConstants.choose(252, 4).bound_steps,
        AdaptiveConstants.choose(252, 4).bound_steps,
    )
    return rows, consts_equal


def test_a2_queue_organization(benchmark, record_result):
    rows, consts_equal = run_once(benchmark, run_experiment)
    assert consts_equal[0] == consts_equal[1]
    for row in rows:
        assert row[2] is not None and row[3] is not None  # both complete
        # Same node capacity: times within a small factor of each other.
        assert max(row[2], row[3]) <= 4 * min(row[2], row[3]) + 16
        assert row[4] <= 4 * row[0] and row[5] <= 4 * row[0]
    record_result(
        "A2_queue_organization",
        format_table(
            ["k", "seed", "incoming-k steps", "central-4k steps",
             "incoming max load", "central max load"],
            rows,
        )
        + "\n\nSame node capacity, same behaviour class: the Section 5 "
        "simulation argument (central 4k hosts incoming k) in action; the "
        "lower-bound constants coincide for both organizations.",
    )
