"""E5 -- Theorem 15: the bounded-queue dimension-order router delivers every
permutation in O(n^2/k + n).

Sweeps n and k over random, transpose, and adversarially constructed
permutations; asserts the measured worst case stays under the closed-form
budget and that the measured-time exponent in n on adversarial instances
stays near 2 (the matching upper bound to E3's Omega(n^2/k)).
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import fit_power_law, format_table
from repro.core.bounds import theorem15_upper_bound
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.replay import packets_for_replay
from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import random_permutation, transpose_permutation


def adversarial_instance(n: int, k: int):
    factory = lambda: BoundedDimensionOrderRouter(k)
    con = DorLowerBoundConstruction(n, factory)
    return packets_for_replay(con.run())


def run_experiment():
    rows = []
    adversarial_series = {}
    for n in (24, 48, 96):
        mesh = Mesh(n)
        for k in (1, 2, 4):
            worst = 0
            for name, packets in (
                ("random", random_permutation(mesh, seed=0)),
                ("random2", random_permutation(mesh, seed=1)),
                ("transpose", transpose_permutation(mesh)),
            ):
                result = Simulator(
                    mesh, BoundedDimensionOrderRouter(k), packets
                ).run(max_steps=1_000_000)
                assert result.completed, (n, k, name)
                worst = max(worst, result.steps)
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "workload": "worst of 3 benign",
                    "steps": worst,
                    "budget": theorem15_upper_bound(n, k),
                }
            )
    # Adversarial instances: the true worst-case shape.
    for n in (60, 96, 120):
        packets = adversarial_instance(n, 1)
        result = Simulator(Mesh(n), BoundedDimensionOrderRouter(1), packets).run(
            max_steps=2_000_000
        )
        assert result.completed
        adversarial_series[n] = result.steps
        rows.append(
            {
                "n": n,
                "k": 1,
                "workload": "adversarial",
                "steps": result.steps,
                "budget": theorem15_upper_bound(n, 1),
            }
        )
    return rows, adversarial_series


def test_e5_theorem15_upper_bound(benchmark, record_result):
    rows, adversarial = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["steps"] <= r["budget"], r

    fit = fit_power_law(list(adversarial), list(adversarial.values()))
    assert fit.exponent <= 2.3  # O(n^2/k) at fixed k

    record_result(
        "E5_theorem15_upper_bound",
        format_table(
            ["n", "k", "workload", "measured steps", "O(n^2/k + n) budget"],
            [[r["n"], r["k"], r["workload"], r["steps"], r["budget"]] for r in rows],
        )
        + f"\n\nadversarial-instance exponent in n: {fit.exponent:.2f} "
        "(<= 2 + noise: the upper bound matches E3's lower bound).",
    )
