"""E3 -- Section 5: Omega(n^2/k) for destination-exchangeable dimension-order
routing, via the single-rule construction of Figure 4 (left).

Table: certified bound and measured routing time per (n, k), with
``bound * k_node / n^2`` shown to make the 1/k shape visible, plus the
paper's closed form ``floor(3n/(8(k+2))) * 2n/5``.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import fit_power_law, format_table
from repro.core.bounds import dimension_order_closed_form
from repro.core.constants import DimensionOrderConstants
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.replay import replay_constructed_permutation
from repro.routing import BoundedDimensionOrderRouter

SWEEP = [
    (60, 1),
    (96, 1),
    (120, 1),
    (96, 2),
    (120, 2),
]


def run_experiment():
    rows = []
    for n, k in SWEEP:
        factory = lambda k=k: BoundedDimensionOrderRouter(k)
        con = DorLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=2_000_000
        )
        k_node = con.k  # 4k for the incoming-queue organization
        rows.append(
            {
                "n": n,
                "k": k,
                "k_node": k_node,
                "bound": result.bound_steps,
                "measured": report.total_steps,
                "normalized": result.bound_steps * k_node / (n * n),
                "closed_form": dimension_order_closed_form(n, k_node),
                "undelivered": report.undelivered_at_bound,
            }
        )
    return rows


def test_e3_lower_bound_dimension_order(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["undelivered"] >= 1  # Theorem 13 analogue
        assert r["measured"] >= r["bound"]

    # Shape in n (formula over a wide range): exponent ~ 2.
    ns = [500, 1000, 2000, 4000]
    fit = fit_power_law(ns, [DimensionOrderConstants.choose(n, 4).bound_steps for n in ns])
    assert 1.8 <= fit.exponent <= 2.2

    # Shape in k: bound * k / n^2 stays within a ~2x band across the sweep.
    normals = [r["normalized"] for r in rows]
    assert max(normals) / min(normals) < 3.0

    record_result(
        "E3_lower_bound_dimension_order",
        format_table(
            ["n", "k", "node cap", "certified bound", "measured", "bound*cap/n^2", "paper closed form"],
            [
                [r["n"], r["k"], r["k_node"], r["bound"], r["measured"],
                 f"{r['normalized']:.3f}", r["closed_form"]]
                for r in rows
            ],
        )
        + f"\n\nbound(n) exponent fit: {fit.exponent:.3f}; bound*cap/n^2 "
        "roughly constant across k is the Omega(n^2/k) shape.",
    )
