"""E3 -- Section 5: Omega(n^2/k) for destination-exchangeable dimension-order
routing, via the single-rule construction of Figure 4 (left).

Table: certified bound and measured routing time per (n, k), with
``bound * k_node / n^2`` shown to make the 1/k shape visible, plus the
paper's closed form ``floor(3n/(8(k+2))) * 2n/5``.

The sweep is declared in ``specs/e3_lower_bound_dor.json`` and executed by
the campaign harness; this file keeps the assertions and table shaping.
"""

from __future__ import annotations

from conftest import CAMPAIGNS_DIR, SPECS_DIR, run_once
from repro.analysis import fit_power_law, format_table
from repro.core.bounds import dimension_order_closed_form
from repro.core.constants import DimensionOrderConstants
from repro.harness import CampaignSpec, run_campaign

SPEC_PATH = SPECS_DIR / "e3_lower_bound_dor.json"


def run_experiment():
    campaign = CampaignSpec.from_file(SPEC_PATH)
    run = run_campaign(campaign, workers=1, base_dir=CAMPAIGNS_DIR, progress=False)
    rows = []
    for result in run.results:
        assert result.status == "ok", result.error
        m = result.metrics
        n, k_node = result.spec.n, m["k_node"]  # 4k for the incoming-queue organization
        rows.append(
            {
                "n": n,
                "k": result.spec.k,
                "k_node": k_node,
                "bound": m["bound_steps"],
                "measured": m["measured_steps"],
                "normalized": m["bound_steps"] * k_node / (n * n),
                "closed_form": dimension_order_closed_form(n, k_node),
                "undelivered": m["undelivered_at_bound"],
            }
        )
    return rows


def test_e3_lower_bound_dimension_order(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["undelivered"] >= 1  # Theorem 13 analogue
        assert r["measured"] >= r["bound"]

    # Shape in n (formula over a wide range): exponent ~ 2.
    ns = [500, 1000, 2000, 4000]
    fit = fit_power_law(ns, [DimensionOrderConstants.choose(n, 4).bound_steps for n in ns])
    assert 1.8 <= fit.exponent <= 2.2

    # Shape in k: bound * k / n^2 stays within a ~2x band across the sweep.
    normals = [r["normalized"] for r in rows]
    assert max(normals) / min(normals) < 3.0

    record_result(
        "E3_lower_bound_dimension_order",
        format_table(
            ["n", "k", "node cap", "certified bound", "measured", "bound*cap/n^2", "paper closed form"],
            [
                [r["n"], r["k"], r["k_node"], r["bound"], r["measured"],
                 f"{r['normalized']:.3f}", r["closed_form"]]
                for r in rows
            ],
        )
        + f"\n\nbound(n) exponent fit: {fit.exponent:.3f}; bound*cap/n^2 "
        "roughly constant across k is the Omega(n^2/k) shape.",
        data=rows,
    )
