"""E4 -- Section 5: Omega(n^2/k) for farthest-first dimension-order routing,
which is NOT destination-exchangeable (Figure 4, right).

The construction's exchanges preserve every comparison farthest-first makes
(westernmost-partner rule + row-ordering invariant); empirically the
arranged instance pens each class behind its column without the router ever
forcing an exchange, and the replay matches the construction exactly.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core.bounds import farthest_first_closed_form
from repro.core.ff_adversary import FfLowerBoundConstruction
from repro.core.replay import replay_constructed_permutation
from repro.routing import FarthestFirstRouter

SWEEP = [
    (60, 1, "central"),
    (96, 1, "central"),
    (60, 1, "incoming"),
    (96, 1, "incoming"),
]


def run_experiment():
    rows = []
    for n, k, kind in SWEEP:
        factory = lambda k=k, kind=kind: FarthestFirstRouter(k, kind)
        con = FfLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=(kind == "incoming"),
            max_steps=2_000_000,
        )
        rows.append(
            {
                "n": n,
                "k": k,
                "kind": kind,
                "k_node": con.k,
                "bound": result.bound_steps,
                "measured": report.total_steps,
                "exchanges": result.exchange_count,
                "cfg": report.configuration_matches,
                "undelivered": report.undelivered_at_bound,
                "closed": farthest_first_closed_form(n, con.k),
            }
        )
    return rows


def test_e4_lower_bound_farthest_first(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["undelivered"] >= 1
        assert r["cfg"] is True
        if r["measured"] is not None:
            assert r["measured"] >= r["bound"]
    record_result(
        "E4_lower_bound_farthest_first",
        format_table(
            ["n", "k", "queues", "node cap", "certified bound", "measured",
             "exchanges", "replay equal", "paper closed form"],
            [
                [r["n"], r["k"], r["kind"], r["k_node"], r["bound"],
                 r["measured"], r["exchanges"], r["cfg"], r["closed"]]
                for r in rows
            ],
        )
        + "\n\nThe farthest-first bound holds although the algorithm sees "
        "full destination addresses: the lower bound's model restriction "
        "cannot be weakened to distance-aware policies for dimension order.",
    )
