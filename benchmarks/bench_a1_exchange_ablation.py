"""A1 (ablation) -- do the exchanges matter?

Runs the Section 3 initial instance against the adaptive victim twice: once
with the adversary's exchanges enabled, once with the raw instance and no
interceptor.  With exchanges the top-level classes are provably penned
(Corollary 9); without, the adaptive router may drain the boxes much
faster.  The gap isolates the contribution of the exchange mechanism
itself, beyond the hard initial placement.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.core import AdaptiveLowerBoundConstruction
from repro.core.adversary import AdaptiveAdversary
from repro.mesh import Mesh, Simulator
from repro.routing import GreedyAdaptiveRouter


def run_one(n: int, with_exchanges: bool):
    factory = lambda: GreedyAdaptiveRouter(1)
    con = AdaptiveLowerBoundConstruction(n, factory)
    packets = con.build_packets()
    interceptor = (
        AdaptiveAdversary(con.constants, con.geometry) if with_exchanges else None
    )
    sim = Simulator(Mesh(n), factory(), packets, interceptor=interceptor)
    sim.run_steps(con.constants.bound_steps)
    undelivered_at_bound = sim.in_flight
    result = sim.run(max_steps=2_000_000)
    return {
        "bound": con.constants.bound_steps,
        "undelivered": undelivered_at_bound,
        "total": result.steps if result.completed else None,
        "exchanges": interceptor.exchange_count if interceptor else 0,
    }


def run_experiment():
    rows = []
    for n in (120, 216):
        on = run_one(n, True)
        off = run_one(n, False)
        rows.append([n, "with exchanges", on["exchanges"], on["undelivered"], on["total"]])
        rows.append([n, "no exchanges", 0, off["undelivered"], off["total"]])
    return rows


def test_a1_exchange_ablation(benchmark, record_result):
    rows = run_once(benchmark, run_experiment)
    by_n: dict[int, dict[str, list]] = {}
    for row in rows:
        by_n.setdefault(row[0], {})[row[1]] = row
    for n, pair in by_n.items():
        on, off = pair["with exchanges"], pair["no exchanges"]
        # The adversary keeps at least as many packets undelivered at the
        # horizon, and strictly delays completion.
        assert on[3] >= off[3], (n, on, off)
        if on[4] is not None and off[4] is not None:
            assert on[4] >= off[4]
    record_result(
        "A1_exchange_ablation",
        format_table(
            ["n", "adversary", "exchanges", "undelivered @ bound", "completion steps"],
            rows,
        )
        + "\n\nWith exchanges the horizon retains at least as many packets "
        "and completion is never earlier.  The measured gap is modest for "
        "this victim -- natural congestion in the packed 1-box already does "
        "most of the penning (cf. E4) -- but the exchanges are what make "
        "the bound a *guarantee* for every destination-exchangeable "
        "algorithm rather than an empirical observation.",
    )
