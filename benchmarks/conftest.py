"""Shared infrastructure for the experiment benchmarks.

Each ``bench_eXX`` file regenerates one table/claim from the paper (see
DESIGN.md's experiment index).  Experiments run once under
``benchmark.pedantic`` (they are deterministic; wall time is reported by
pytest-benchmark) and write their paper-shaped result tables to
``benchmarks/results/`` as well as stdout.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Write an experiment's table to benchmarks/results/<name>.txt."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _write


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
