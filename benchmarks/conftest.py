"""Shared infrastructure for the experiment benchmarks.

Each ``bench_eXX`` file regenerates one table/claim from the paper (see
DESIGN.md's experiment index).  Experiments run once under
``benchmark.pedantic`` (they are deterministic; wall time is reported by
pytest-benchmark) and write their paper-shaped result tables to
``benchmarks/results/`` as well as stdout.

Campaign-backed experiments (E1, E3, E16, ...) declare their sweeps in
``benchmarks/specs/*.json`` and run them through ``repro.harness``; the
content-addressed cache under ``campaigns/`` means a re-run of the
benchmark suite skips every trial that already completed.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SPECS_DIR = pathlib.Path(__file__).parent / "specs"
CAMPAIGNS_DIR = str(pathlib.Path(__file__).parent.parent / "campaigns")

RECORD_FORMAT_VERSION = 1


@pytest.fixture
def record_result():
    """Write an experiment's table to benchmarks/results/<name>.txt.

    Alongside the human-readable table, a machine-readable ``<name>.json``
    is written ({"name", "format", "text", "data"}) so the analysis layer
    (``repro.analysis.campaigns.load_recorded_results``) can consume old
    and new results uniformly.  Pass structured rows via ``data``.
    """

    def _write(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        payload = {
            "name": name,
            "format": RECORD_FORMAT_VERSION,
            "text": text,
            "data": data,
        }
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"\n[{name}]\n{text}")

    return _write


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
