"""E8 -- Theorems 20/34: the Section 6 algorithm is minimal adaptive,
delivers every permutation, uses at most 834 packets per node, and runs in
at most 972n steps (564n with the improved schedule).

Sweeps n in {27, 81, 243}; the linear shape is asserted via a power-law fit
on both clocks.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import fit_power_law, format_table
from repro.mesh import Mesh
from repro.tiling import Section6Router
from repro.workloads import random_permutation, transpose_permutation


def run_experiment():
    rows = []
    series_actual = {}
    series_sched = {}
    for n in (27, 81, 243):
        mesh = Mesh(n)
        workloads = [("random", random_permutation(mesh, seed=0))]
        if n <= 81:
            workloads.append(("transpose", transpose_permutation(mesh)))
        for name, packets in workloads:
            result = Section6Router(n, record_phases=False).route(packets)
            rows.append(
                {
                    "n": n,
                    "workload": name,
                    "actual": result.actual_steps,
                    "scheduled": result.scheduled_steps,
                    "bound": result.paper_time_bound,
                    "load": result.max_node_load,
                    "completed": result.completed,
                }
            )
            if name == "random":
                series_actual[n] = result.actual_steps
                series_sched[n] = result.scheduled_steps
    # Improved schedule at n = 81.
    mesh81 = Mesh(81)
    improved = Section6Router(81, improved=True, record_phases=False).route(
        random_permutation(mesh81, seed=0)
    )
    return rows, series_actual, series_sched, improved


def test_e8_section6_linear_time(benchmark, record_result):
    rows, actual, sched, improved = run_once(benchmark, run_experiment)
    for r in rows:
        assert r["completed"]
        assert r["scheduled"] <= r["bound"]  # Theorem 34: <= 972 n
        assert r["load"] <= 834  # Lemma 28
        assert r["actual"] <= r["scheduled"]
    assert improved.completed and improved.scheduled_steps <= 564 * 81

    fit_a = fit_power_law(list(actual), list(actual.values()))
    fit_s = fit_power_law(list(sched), list(sched.values()))
    assert fit_a.exponent <= 1.5, fit_a  # O(n), not O(n^2)
    assert fit_s.exponent <= 1.5, fit_s

    record_result(
        "E8_section6_linear",
        format_table(
            ["n", "workload", "actual steps", "scheduled steps", "972n", "max load"],
            [
                [r["n"], r["workload"], r["actual"], r["scheduled"], r["bound"], r["load"]]
                for r in rows
            ],
        )
        + f"\n\nexponent fits over n: actual {fit_a.exponent:.2f}, "
        f"scheduled {fit_s.exponent:.2f} (both ~1: O(n) time).\n"
        f"improved schedule at n=81: {improved.scheduled_steps} <= 564n = {564 * 81}.",
    )
