"""E15 -- Section 1.1's baseline: with unbounded queues, farthest-first
dimension-order routing delivers every permutation in 2n - 2 steps --
"unfortunately, this algorithm requires Theta(n) size queues at each node."

Both halves of that sentence are reproduced: the 2n - 2 delivery time on
random and structured permutations, and a funnel instance (packets
converging on one turn node from both sides) that drives a single queue to
Theta(n) occupancy.  This is the tension the whole paper resolves: cap the
queues at k and the worst case jumps to Theta(n^2/k) (E3/E5).
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import format_table
from repro.mesh import Mesh, Packet, Simulator
from repro.routing import FarthestFirstRouter
from repro.workloads import (
    bit_reversal_permutation,
    random_permutation,
    transpose_permutation,
)


def funnel_instance(n: int) -> list[Packet]:
    """~n packets converging on the turn node (n/2, 0) from east and west.

    Arrivals outpace the single northward departure lane 2:1, so the turn
    node's queue grows to Theta(n).
    """
    c = n // 2
    packets = []
    pid = 0
    for i in range(1, c):
        packets.append(Packet(pid, (c - i, 0), (c, 2 * i - 1)))
        pid += 1
        packets.append(Packet(pid, (c + i, 0), (c, 2 * i)))
        pid += 1
    return packets


def run_experiment():
    rows = []
    for n in (16, 32, 64):
        mesh = Mesh(n)
        for name, packets in (
            ("random", random_permutation(mesh, seed=0)),
            ("transpose", transpose_permutation(mesh)),
            ("bit-reversal", bit_reversal_permutation(mesh)),
        ):
            result = Simulator(mesh, FarthestFirstRouter(n, "central"), packets).run(
                max_steps=10 * n
            )
            assert result.completed
            rows.append([n, name, result.steps, 2 * n - 2, result.max_queue_len])
    funnel = []
    for n in (16, 32, 64):
        result = Simulator(
            Mesh(n), FarthestFirstRouter(n, "central"), funnel_instance(n)
        ).run(max_steps=20 * n)
        assert result.completed
        funnel.append([n, result.max_queue_len, n // 2])
    return rows, funnel


def test_e15_unbounded_queue_baseline(benchmark, record_result):
    rows, funnel = run_once(benchmark, run_experiment)
    for n, _name, steps, bound, _q in rows:
        assert steps <= bound  # the 2n-2 classic
    for n, maxq, target in funnel:
        assert maxq >= target // 2  # Theta(n) queue growth at the funnel
    growth = [f[1] for f in funnel]
    assert growth[2] > 2 * growth[0]  # linear, not constant

    record_result(
        "E15_unbounded_queues",
        format_table(
            ["n", "workload", "steps", "2n-2", "max queue"],
            rows,
        )
        + "\n\nfunnel instance (both-sided convergence on one turn node):\n"
        + format_table(["n", "max queue", "~n/2"], funnel)
        + "\n\nUnbounded-queue farthest-first meets 2n-2 on every "
        "permutation, but a single funnel drives one queue to Theta(n) -- "
        "the impracticality that motivates bounding k, which the paper then "
        "proves costs Theta(n^2/k) in the worst case.",
    )
