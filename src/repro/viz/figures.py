"""Text renderings of Figures 1, 2, 4, 5, 6 and 7.

Grids are drawn with row 0 (south) at the bottom, matching the paper's
orientation.  Cell characters:

    .   empty mesh node
    N/E  an N_i / E_i destination cell (Figures 1, 4)
    n/e  an N_i / E_i packet's current position (Figure 2 live view)
    #   a construction source node
    |   the N_i-column, -  the E_i-row
"""

from __future__ import annotations

from repro.core.geometry import N_CLASS, BoxGeometry
from repro.core.dor_adversary import DorGeometry
from repro.core.ff_adversary import FfGeometry
from repro.mesh.packet import Packet
from repro.tiling.geometry import Tile


def _grid(n: int, fill: str = ".") -> list[list[str]]:
    return [[fill] * n for _ in range(n)]


def _render(grid: list[list[str]], title: str) -> str:
    lines = [title]
    for y in range(len(grid) - 1, -1, -1):
        lines.append("".join(grid[y]))
    return "\n".join(lines)


def render_construction_geometry(geo: BoxGeometry) -> str:
    """Figure 1: the 1-box submesh, N_i-columns and E_i-rows with their
    destination cells."""
    grid = _grid(geo.n)
    for x in range(geo.cn):
        for y in range(geo.cn):
            grid[y][x] = "#"
    for i in range(1, geo.levels + 1):
        col, row = geo.n_column(i), geo.e_row(i)
        for y in range(geo.n):
            if grid[y][col] == ".":
                grid[y][col] = "|"
        for x in range(geo.n):
            if grid[row][x] == ".":
                grid[row][x] = "-"
        for j in range(geo.rows_per_class):
            nx, ny = geo.n_destination(i, j * geo.h)
            grid[ny][nx] = "N"
            ex, ey = geo.e_destination(i, j * geo.h)
            grid[ey][ex] = "E"
    return _render(
        grid,
        f"Figure 1: n={geo.n}, cn={geo.cn}, {geo.levels} level(s); "
        "# = 1-box sources, N/E = destination cells",
    )


def render_box_invariant(geo: BoxGeometry, packets: list[Packet], i: int) -> str:
    """Figure 2: live packet classes around the i-box boundary."""
    grid = _grid(geo.n)
    col, row = geo.n_column(i), geo.e_row(i)
    for y in range(geo.n):
        grid[y][col] = "|"
    for x in range(geo.n):
        grid[row][x] = "-"
    grid[row][col] = "+"
    for p in packets:
        cls = geo.classify(p.dest)
        if cls is None:
            continue
        tag, _level = cls
        x, y = p.pos
        grid[y][x] = "n" if tag == N_CLASS else "e"
    return _render(
        grid,
        f"Figure 2: the {i}-box boundary (+ = corner escape node); "
        "n/e = live N/E-class packets",
    )


def render_dor_construction(geo: DorGeometry) -> str:
    """Figure 4 (left): the dimension-order construction."""
    grid = _grid(geo.n)
    for x, y in geo.sources():
        grid[y][x] = "#"
    for i in range(1, geo.levels + 1):
        col = geo.column(i)
        for y in range(geo.cn, geo.n):
            grid[y][col] = "N"
        for y in range(geo.cn):
            if grid[y][col] == ".":
                grid[y][col] = "|"
    return _render(
        grid,
        f"Figure 4 left: dim-order construction, n={geo.n}, cn={geo.cn}, "
        f"{geo.levels} protected column(s)",
    )


def render_ff_construction(geo: FfGeometry) -> str:
    """Figure 4 (right): the farthest-first construction."""
    grid = _grid(geo.n)
    for x in range(geo.n):
        for y in range(geo.cn):
            grid[y][x] = "#"
    for i in range(1, min(geo.levels, geo.num_classes) + 1):
        col = geo.column(i)
        for y in range(geo.cn, geo.n):
            grid[y][col] = "N"
    return _render(
        grid,
        f"Figure 4 right: farthest-first construction, n={geo.n}, "
        f"cn={geo.cn}, levels from the east edge",
    )


def render_strips(tile: Tile, dest_strip: int) -> str:
    """Figure 5: the Vertical Phase strips for one destination strip."""
    d = tile.strip_height
    lines = [
        f"Figure 5: tile side {tile.side}, strip height {d}; "
        f"destination strip {dest_strip}"
    ]
    for s in range(27, 0, -1):
        lo, hi = tile.strip_bounds_y(s)
        marker = ""
        if s == dest_strip:
            marker = "  <- destination strip i"
        elif s == dest_strip - 2:
            marker = "  <- packets end here (i-2)"
        elif s == dest_strip - 3:
            marker = "  <- March target (i-3)"
        elif s <= dest_strip - 3:
            marker = "  (active source strips)" if s == 1 else ""
        lines.append(f"strip {s:2d}: rows {lo:4d}..{hi:4d}{marker}")
    return "\n".join(lines)


def render_sort_smooth(
    before: dict[tuple[int, int], list[int]],
    after: dict[tuple[int, int], list[int]],
    d: int,
) -> str:
    """Figure 6: per-node horizontal distances before/after Sort and Smooth.

    ``before``/``after`` map nodes to the horizontal distances of the
    packets they hold (as in the figure's cells).
    """

    def block(data: dict[tuple[int, int], list[int]], label: str) -> list[str]:
        lines = [label]
        for node in sorted(data, key=lambda nd: (-nd[1], nd[0])):
            vals = ",".join(str(v) for v in sorted(data[node], reverse=True))
            lines.append(f"  {node}: [{vals}]")
        return lines

    return "\n".join(
        [f"Figure 6: Sort and Smooth (d={d})"]
        + block(before, "before (strip i-3):")
        + block(after, "after (strip i-2):")
    )


def render_lemma12_diagram(bound_steps: int, exchanges: int) -> str:
    """Figure 3: the commutative square of Lemma 12's induction.

    ``S_t`` is the construction's configuration after step t; ``S_t^*`` is
    ``S_t`` with step t+1's exchanges applied; the replay configuration
    delta(S', t) equals ``S_t`` with all *future* exchanges telescoped in.
    """
    return "\n".join(
        [
            "Figure 3: Lemma 12's induction step",
            "",
            "  S_{t-1} --exchange X_t--> S*_{t-1} --run 1 step--> S_t",
            "     |                         |                      |",
            "  + future                  + future               + future",
            "  exchanges                 exchanges              exchanges",
            "     |                         |                      |",
            "     v                         v                      v",
            "  d(S',t-1) ==============  d(S',t-1) --run 1 step-> d(S',t)",
            "",
            f"verified live: after {bound_steps} steps and {exchanges} "
            "exchanges, d(S', t) == S_t exactly (no future exchanges remain).",
        ]
    )


def render_occupancy_heatmap(
    occupancy: dict[tuple[int, int], int], n: int, title: str = "occupancy"
) -> str:
    """Per-node load as a character heatmap (., 1-9, then letters).

    Takes any node -> count mapping, e.g. a simulator's live queue lengths
    or a :class:`~repro.tiling.state.Occupancy` snapshot.
    """
    scale = ".123456789abcdefghijklmnopqrstuvwxyz"
    grid = _grid(n)
    peak = 0
    for (x, y), count in occupancy.items():
        if 0 <= x < n and 0 <= y < n and count > 0:
            grid[y][x] = scale[min(count, len(scale) - 1)]
            peak = max(peak, count)
    return _render(grid, f"{title} (peak {peak})")


def render_subphase_schedule() -> str:
    """Figure 7: the subphase sequence; a packet is inactive for at most
    seven subphases between active ones (Corollary 26)."""
    seq = ["V1", "V2", "V3", "H1", "H2", "H3"]
    line = " ".join(seq + seq[:3])
    return (
        "Figure 7: subphases of one iteration (V = vertical, H = horizontal)\n"
        + line
        + "\n"
        + "a packet active in V1 is active again at latest in the next V1:\n"
        + "^" + " " * (len(line) - 2) + "^"
    )
