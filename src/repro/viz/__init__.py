"""ASCII renderers for the paper's figures, drawn from live objects.

Each function reproduces one figure of the paper as text, computed from the
actual geometry/construction data structures rather than hard-coded -- so
the figures double as visual regression checks on the implementation.
"""

from repro.viz.figures import (
    render_construction_geometry,
    render_box_invariant,
    render_dor_construction,
    render_ff_construction,
    render_strips,
    render_sort_smooth,
    render_subphase_schedule,
    render_occupancy_heatmap,
    render_lemma12_diagram,
)

__all__ = [
    "render_construction_geometry",
    "render_box_invariant",
    "render_dor_construction",
    "render_ff_construction",
    "render_strips",
    "render_sort_smooth",
    "render_subphase_schedule",
    "render_occupancy_heatmap",
    "render_lemma12_diagram",
]
