"""Data-driven d-dimensional grid topologies (ROADMAP item: topology as data).

The 2D :class:`~repro.mesh.topology.Mesh`/:class:`~repro.mesh.topology.Torus`
classes hard-code the compass vocabulary of the paper.  This module makes a
topology a *data object*: a shape vector, per-axis wrap flags, and a port
table — so meshes and tori of any dimension (and irregular variants) share
one implementation of links, distance, and profitable-outlink queries.

Ports
-----
A :class:`Port` is the d-dimensional generalisation of
:class:`~repro.mesh.directions.Direction`: an ``int`` subclass whose value
doubles as the positional index into per-node link tables.  The encoding is
chosen so that at ``d = 2`` the four ports coincide *numerically and
semantically* with ``N, E, S, W``:

- ports ``0 .. d-1`` move positively along axis ``d-1-p`` (port 0 is the
  positive highest axis — ``N`` at d=2);
- ports ``d .. 2d-1`` are their negatives (``opposite = (p + d) % 2d``).

Axis 0 is the first coordinate (``x``), matching the 2D convention that
``(x, y)`` has ``x`` grow eastward (axis 0) and ``y`` northward (axis 1).
The highest axis is the conventional *escape axis* for dimension-ordered
drains (N/S in Theorem 15's four-queue organisation).

Concrete topologies
-------------------
:class:`MeshND` and :class:`TorusND` are the regular grids.
:class:`SparsePillarMesh` is the irregular variant: a 3D mesh whose
vertical (z) links exist only on a sparse sub-grid of "pillar" columns,
the express/elevator pattern of hierarchical networks-on-chip.
"""

from __future__ import annotations

import functools
import itertools
from typing import Callable, Iterator, Sequence

from repro.mesh.topology import Mesh, Topology, Torus

Node = tuple[int, ...]

_AXIS_LETTERS = "xyzw"


def _axis_letter(axis: int) -> str:
    return _AXIS_LETTERS[axis] if axis < len(_AXIS_LETTERS) else f"a{axis}"


class Port(int):
    """One link direction of a d-dimensional grid.

    An ``int`` subclass (like :class:`Direction`) so ports sort
    deterministically and index link tables positionally.  Carries the
    geometric metadata routers and analyzers need: ``axis``, ``sign``,
    ``opposite``, and a stable ``name`` for reports and witnesses.
    """

    axis: int
    sign: int
    dims: int
    name: str
    opposite: "Port"

    def __repr__(self) -> str:
        return f"Port({self.name})"

    def __str__(self) -> str:
        return self.name


@functools.lru_cache(maxsize=None)
def ports(dims: int) -> tuple[Port, ...]:
    """The interned port tuple for a ``dims``-dimensional grid.

    Interned per ``dims`` so identity checks and caches shared across
    topology instances stay cheap, mirroring the module-level
    ``DIRECTIONS`` tuple of the 2D layer.
    """
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    out: list[Port] = []
    for value in range(2 * dims):
        negative = value >= dims
        axis = dims - 1 - (value - dims if negative else value)
        sign = -1 if negative else 1
        port = Port(value)
        port.axis = axis
        port.sign = sign
        port.dims = dims
        port.name = ("-" if negative else "+") + _axis_letter(axis)
        out.append(port)
    for value, port in enumerate(out):
        port.opposite = out[(value + dims) % (2 * dims)]
    return tuple(out)


class NdTopology(Topology):
    """A d-dimensional grid with per-axis wrap flags.

    Nodes are coordinate tuples ``(c_0, .., c_{d-1})`` with
    ``0 <= c_i < shape[i]``; axis ``i`` wraps iff ``wrap[i]``.  All link,
    distance, and profitability queries derive from this data — subclasses
    only restrict the link set (see :class:`SparsePillarMesh`).
    """

    def __init__(self, shape: Sequence[int], wrap: Sequence[bool] | None = None) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 1 for s in shape):
            raise ValueError(f"shape must be a nonempty tuple of sides >= 1, got {shape}")
        dims = len(shape)
        wrap = tuple(bool(w) for w in (wrap if wrap is not None else (False,) * dims))
        if len(wrap) != dims:
            raise ValueError(f"wrap must have one flag per axis, got {wrap} for shape {shape}")
        # The 2D base initialiser provides the hot-path caches and the
        # width/height aliases consumers of 2D instances rely on.
        super().__init__(shape[0], shape[1] if dims >= 2 else 1)
        self._shape = shape
        self._wrap = wrap
        self.dims = dims
        self.directions = ports(dims)
        self.opposites = tuple(p.opposite for p in self.directions)
        self.wraps = any(wrap)
        self._pos = {p.axis: p for p in self.directions if p.sign > 0}
        self._neg = {p.axis: p for p in self.directions if p.sign < 0}

    # -- data-model queries --------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def wrap(self) -> tuple[bool, ...]:
        """Per-axis wrap flags (all False = mesh, all True = torus)."""
        return self._wrap

    @property
    def num_nodes(self) -> int:
        count = 1
        for side in self._shape:
            count *= side
        return count

    def nodes(self) -> Iterator[Node]:
        """All nodes with the first axis outermost (2D column-major order)."""
        return itertools.product(*(range(side) for side in self._shape))

    def contains(self, node: Node) -> bool:
        return len(node) == self.dims and all(
            0 <= c < side for c, side in zip(node, self._shape)
        )

    def node_index(self, node: Node) -> int:
        """Flat id in :meth:`nodes` order (mixed radix, last axis fastest)."""
        index = 0
        for coord, side in zip(node, self._shape):
            index = index * side + coord
        return index

    # -- links ---------------------------------------------------------------

    def _neighbor_uncached(self, node: Node, direction: Port) -> Node | None:
        axis = direction.axis
        side = self._shape[axis]
        coord = node[axis] + direction.sign
        if self._wrap[axis]:
            coord %= side
        elif not 0 <= coord < side:
            return None
        return node[:axis] + (coord,) + node[axis + 1 :]

    # -- distance and profitability ------------------------------------------

    def _axis_delta(self, axis: int, src: int, dst: int) -> int:
        if not self._wrap[axis]:
            return dst - src
        side = self._shape[axis]
        delta = (dst - src) % side
        if delta > side // 2:
            delta -= side
        return delta

    def displacement(self, node: Node, dest: Node) -> Node:
        """Per-axis signed minimal displacement (wrap ties reported positive)."""
        return tuple(
            self._axis_delta(axis, node[axis], dest[axis]) for axis in range(self.dims)
        )

    def distance(self, a: Node, b: Node) -> int:
        return sum(abs(delta) for delta in self.displacement(a, b))

    def _profitable_uncached(self, node: Node, dest: Node) -> frozenset[Port]:
        dirs: list[Port] = []
        for axis in range(self.dims):
            src, dst = node[axis], dest[axis]
            if src == dst:
                continue
            if self._wrap[axis]:
                side = self._shape[axis]
                forward = (dst - src) % side
                backward = side - forward
                if forward < backward:
                    dirs.append(self._pos[axis])
                elif forward > backward:
                    dirs.append(self._neg[axis])
                else:  # exact half-circumference tie: both ways are shortest
                    dirs.append(self._pos[axis])
                    dirs.append(self._neg[axis])
            else:
                dirs.append(self._pos[axis] if dst > src else self._neg[axis])
        return frozenset(dirs)

    @property
    def diameter(self) -> int:
        return sum(
            side // 2 if wrapped else side - 1
            for side, wrapped in zip(self._shape, self._wrap)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({'x'.join(map(str, self._shape))})"


class MeshND(NdTopology):
    """The d-dimensional mesh: grid links clipped at every boundary."""

    def __init__(self, shape: Sequence[int]) -> None:
        super().__init__(shape, wrap=None)


class TorusND(NdTopology):
    """The d-dimensional torus: every axis wraps around."""

    def __init__(self, shape: Sequence[int]) -> None:
        shape = tuple(int(s) for s in shape)
        super().__init__(shape, wrap=(True,) * len(shape))


class SparsePillarMesh(NdTopology):
    """An irregular 3D mesh: z-links only on a sparse grid of pillars.

    Horizontal (x/y) links are the full ``n x n`` mesh in every layer;
    vertical (z) links exist only at nodes whose ``(x, y)`` are both
    multiples of ``pillar_stride``.  Packets change layers by walking to a
    pillar first — the express-channel / elevator pattern.  The graph stays
    connected (pillar ``(0, 0)`` always exists) but the link set is
    node-dependent, so ``regular`` is False: routers must not assume
    axis-based escape channels exist everywhere.
    """

    regular = False

    def __init__(self, n: int, layers: int | None = None, pillar_stride: int = 2) -> None:
        n = int(n)
        if pillar_stride < 1:
            raise ValueError(f"pillar_stride must be >= 1, got {pillar_stride}")
        super().__init__((n, n, int(layers) if layers is not None else n))
        self.pillar_stride = pillar_stride

    def is_pillar(self, node: Node) -> bool:
        stride = self.pillar_stride
        return node[0] % stride == 0 and node[1] % stride == 0

    def _neighbor_uncached(self, node: Node, direction: Port) -> Node | None:
        if direction.axis == 2 and not self.is_pillar(node):
            return None
        return super()._neighbor_uncached(node, direction)

    def _pillar_axis_cost(self, a: int, b: int) -> int:
        """Min walk ``|a - p| + |p - b|`` over pillar coordinates ``p``."""
        stride = self.pillar_stride
        lo, hi = (a, b) if a <= b else (b, a)
        if hi // stride * stride >= lo:  # a pillar multiple lies in [lo, hi]
            return hi - lo
        below = lo // stride * stride
        cost = a + b - 2 * below
        above = below + stride
        if above < self._shape[0]:
            cost = min(cost, 2 * above - a - b)
        return cost

    def distance(self, a: Node, b: Node) -> int:
        dz = abs(a[2] - b[2])
        if dz == 0:
            return abs(a[0] - b[0]) + abs(a[1] - b[1])
        # Any shortest path routes through one best pillar column: splitting
        # the z-moves across several pillars can only add x/y walk (triangle
        # inequality), so the per-axis pillar costs are exact.
        return self._pillar_axis_cost(a[0], b[0]) + self._pillar_axis_cost(a[1], b[1]) + dz

    def _profitable_uncached(self, node: Node, dest: Node) -> frozenset[Port]:
        here = self.distance(node, dest)
        return frozenset(
            port
            for port in self.out_directions(node)
            if self.distance(self.neighbor(node, port), dest) == here - 1
        )

    @property
    def diameter(self) -> int:
        n, nz = self._shape[0], self._shape[2]
        worst_walk = max(
            self._pillar_axis_cost(a, b) for a in range(n) for b in range(n)
        )
        return max(2 * (n - 1), 2 * worst_walk + (nz - 1))


#: Registered topology builders: name -> (side length n) -> topology.  The
#: analyzers, the differential registry, ``TrialSpec``, and the CLI all
#: resolve topology names through this table, so adding an entry here
#: threads a new topology through every layer at once.
TOPOLOGY_BUILDERS: dict[str, Callable[[int], Topology]] = {
    "mesh": lambda n: Mesh(n),
    "torus": lambda n: Torus(n),
    "mesh3d": lambda n: MeshND((n, n, n)),
    "torus3d": lambda n: TorusND((n, n, n)),
    "pillar": lambda n: SparsePillarMesh(n),
}

#: Registered topology names in deterministic order (2D first for
#: backwards-compatible report layouts).
TOPOLOGY_NAMES: tuple[str, ...] = ("mesh", "torus", "mesh3d", "torus3d", "pillar")


def build_topology(name: str, n: int) -> Topology:
    """Instantiate registered topology ``name`` with side length ``n``."""
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}"
        ) from None
    return builder(n)


__all__ = [
    "Node",
    "Port",
    "ports",
    "NdTopology",
    "MeshND",
    "TorusND",
    "SparsePillarMesh",
    "TOPOLOGY_BUILDERS",
    "TOPOLOGY_NAMES",
    "build_topology",
]
