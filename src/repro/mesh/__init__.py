"""Mesh substrate: topology, packets, queues, and the synchronous simulator.

This package implements the machine model of Section 2 of Chinn, Leighton &
Tompa (1994): an ``n x n`` mesh (or torus) of nodes, each holding a bounded
queue of packets, advancing in synchronous steps.  Each step follows the
paper's phase order (Section 3):

    (a) outqueue policies schedule packets on outlinks,
    (b) an optional interceptor runs (used by the adversary to exchange
        destination addresses),
    (c) inqueue policies accept or refuse scheduled packets,
    (d) accepted packets are transmitted (and delivered packets removed),
    (e) node and packet states are updated.

Destination-exchangeability (the key model restriction of the lower bound)
is enforced structurally: policies of a destination-exchangeable algorithm
receive :class:`~repro.mesh.visibility.PacketView` objects that expose only a
packet's mutable state, source address, and profitable outlinks -- never its
destination.
"""

from repro.mesh.directions import Direction, DIRECTIONS
from repro.mesh.topology import Mesh, Torus, Topology
from repro.mesh.ndtopology import (
    MeshND,
    NdTopology,
    Port,
    SparsePillarMesh,
    TorusND,
    TOPOLOGY_NAMES,
    build_topology,
    ports,
)
from repro.mesh.packet import Packet
from repro.mesh.queues import QueueSpec, CENTRAL
from repro.mesh.visibility import PacketView, FullPacketView, Offer
from repro.mesh.interfaces import RoutingAlgorithm, RoutingContract, NodeContext
from repro.mesh.simulator import Simulator, RunResult
from repro.mesh.trace import PathTracer
from repro.mesh.errors import (
    QueueOverflowError,
    NonMinimalMoveError,
    InvalidScheduleError,
    SimulationLimitError,
)


def __getattr__(name: str):
    # Lazy: the array backend pulls in numpy and the routing package, so it
    # is imported only when actually requested (``Simulator(engine="array")``
    # also imports it lazily, at dispatch time).
    if name == "ArraySimulator":
        from repro.mesh.array_engine import ArraySimulator

        return ArraySimulator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArraySimulator",
    "Direction",
    "DIRECTIONS",
    "Mesh",
    "Torus",
    "Topology",
    "MeshND",
    "NdTopology",
    "Port",
    "SparsePillarMesh",
    "TorusND",
    "TOPOLOGY_NAMES",
    "build_topology",
    "ports",
    "Packet",
    "QueueSpec",
    "CENTRAL",
    "PacketView",
    "FullPacketView",
    "Offer",
    "RoutingAlgorithm",
    "RoutingContract",
    "NodeContext",
    "Simulator",
    "RunResult",
    "PathTracer",
    "QueueOverflowError",
    "NonMinimalMoveError",
    "InvalidScheduleError",
    "SimulationLimitError",
]
