"""The synchronous multi-port mesh simulator (Sections 2 and 3).

Each :meth:`Simulator.step` executes the paper's exact phase order:

    (a) every node's outqueue policy schedules at most one packet per
        outlink;
    (b) the interceptor hook runs -- this is where the Section 3 adversary
        performs its destination exchanges;
    (c) every node's inqueue policy accepts or refuses the packets scheduled
        to enter it;
    (d) accepted packets are transmitted (departures before arrivals);
        packets arriving at their destination are delivered and removed;
    (e) node and packet states are updated from end-of-step contents.

The simulator enforces the model: at most one packet per outlink, minimal
moves for minimal algorithms (rechecked *after* the interceptor so adversary
bugs are caught too), and queue capacities after every transmission.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, NamedTuple

from repro.mesh.directions import Direction
from repro.mesh.errors import (
    InvalidScheduleError,
    NonMinimalMoveError,
    QueueOverflowError,
    SimulationLimitError,
)
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.topology import Topology
from repro.mesh.visibility import FullPacketView, Offer, PacketView


class ScheduledMove(NamedTuple):
    """One packet scheduled on one outlink during phase (a).

    A NamedTuple: one is allocated per scheduled move every step, and the
    tuple layout keeps both construction and field access at C speed.
    """

    packet: Packet
    src: tuple[int, int]
    direction: Direction
    target: tuple[int, int]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScheduledMove({self.packet!r} {self.src}-{self.direction.name}->{self.target})"


@dataclass
class StepRecord:
    """Optional per-step series entry (enable with ``record_series=True``)."""

    time: int
    in_flight: int
    delivered_total: int
    moves: int
    max_queue_len: int


@dataclass
class RunResult:
    """Outcome of :meth:`Simulator.run`.

    Attributes:
        completed: True when every packet was delivered within the budget.
        steps: Steps executed (equals the delivery time of the last packet
            when ``completed``).
        total_packets: Number of packets in the problem instance.
        delivered: Number delivered.
        max_queue_len: Maximum occupancy any single queue ever reached.
        max_node_load: Maximum total packets any node ever held at once.
        total_moves: Total packet transmissions (network load).
        delivery_times: pid -> step at which the packet was delivered.
        series: Per-step records when series recording was enabled.
    """

    completed: bool
    steps: int
    total_packets: int
    delivered: int
    max_queue_len: int
    max_node_load: int
    total_moves: int
    delivery_times: dict[int, int] = field(repr=False, default_factory=dict)
    series: list[StepRecord] = field(repr=False, default_factory=list)
    #: Instrumentation counters (see docs/PERFORMANCE.md).  Always contains
    #: the deterministic scheduling counters (``scheduled_moves``,
    #: ``accepted_moves``, ``refused_moves``, ``injected_packets``); when a
    #: :class:`repro.perf.StepInstrumentation` was attached it additionally
    #: carries wall-clock fields (``wall_s``, ``steps_per_s``, per-phase
    #: ``phase_*_s`` and ``hooks_s``), which are *not* deterministic.
    counters: dict[str, Any] = field(repr=False, default_factory=dict)


Interceptor = Callable[["Simulator", list[ScheduledMove]], None]


class Simulator:
    """Synchronous simulator for one routing problem instance.

    Args:
        topology: The mesh or torus.
        algorithm: The routing algorithm under test.
        packets: The problem instance.  Packets whose source equals their
            destination are delivered at step 0.  Packets with
            ``injection_time > 0`` wait outside the network and enter at the
            first step at or after that time at which their source node has
            queue space (the dynamic setting of Section 5).
        interceptor: Optional phase-(b) hook; the lower-bound adversary.
        validate: Enforce model rules every step -- schedule legality,
            minimality, and queue capacity, raising the typed
            :mod:`repro.mesh.errors` exceptions (small overhead; leave on
            except in the innermost benchmark loops, where the
            :mod:`repro.verify` oracles can re-check independently).
        record_series: Record a :class:`StepRecord` per step.
        engine: ``"reference"`` (this class) or ``"array"`` (the
            vectorized :class:`repro.mesh.array_engine.ArraySimulator`).
            Requesting ``"array"`` is a *hint*: runs the array engine does
            not support (unported routers, custom topologies,
            interceptors, link-load recording) silently fall back to the
            reference engine.  Check :attr:`engine_name` on the
            constructed simulator for the engine actually running.
    """

    #: The engine actually running ("reference" here; the array backend
    #: overrides this with "array").  Compare against the requested
    #: ``engine`` argument to detect fallback.
    engine_name = "reference"

    def __new__(
        cls,
        topology: Topology | None = None,
        algorithm: RoutingAlgorithm | None = None,
        packets: Iterable[Packet] = (),
        **kwargs: Any,
    ) -> "Simulator":
        engine = kwargs.get("engine", "reference")
        if engine not in ("reference", "array"):
            raise ValueError(f"unknown engine {engine!r}")
        if cls is Simulator and engine == "array":
            from repro.mesh.array_engine import resolve_array_class

            array_cls = resolve_array_class(topology, algorithm, kwargs)
            if array_cls is not None:
                return object.__new__(array_cls)
        return object.__new__(cls)

    def __init__(
        self,
        topology: Topology,
        algorithm: RoutingAlgorithm,
        packets: Iterable[Packet],
        *,
        interceptor: Interceptor | None = None,
        validate: bool = True,
        record_series: bool = False,
        record_link_loads: bool = False,
        engine: str = "reference",
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.interceptor = interceptor
        self.validate = validate
        self.record_series = record_series
        self.record_link_loads = record_link_loads
        #: (node, direction) -> transmissions, when link recording is on.
        self.link_loads: dict[tuple[tuple[int, int], Direction], int] = {}
        #: Optional (src, direction, time) -> bool availability hook; see
        #: repro.faults.plan (fault plans install their filter here).
        self.link_filter: Callable[[tuple[int, int], Direction, int], bool] | None = None
        self.spec = algorithm.queue_spec
        # Topology-as-data hooks (docs/TOPOLOGY.md): the opposite table and
        # the queue-key vocabulary come from the topology, so d-dimensional
        # grids run through the same step loop; routers that adapt to
        # dimension metadata learn it here, before any packet is loaded.
        self._opp = topology.opposites
        self.spec.bind_directions(topology.directions)
        algorithm.bind_topology(topology)
        if algorithm.uses_credit:
            algorithm.attach_credit_probe(self._downstream_occupancy)

        self._default_after_step = (
            type(algorithm).after_step is RoutingAlgorithm.after_step
        )
        self.time = 0
        self.queues: dict[tuple[int, int], dict[Any, list[Packet]]] = {}
        self.node_states: dict[tuple[int, int], Any] = {}
        self.delivery_times: dict[int, int] = {}
        #: pid -> step at which the packet was dropped (fault handling; see
        #: repro.faults).  Empty in fault-free runs.  Dropped packets count
        #: as resolved for :attr:`done` and for conservation.
        self.dropped: dict[int, int] = {}
        #: pid -> step at which the packet was refused admission (open-loop
        #: injection backpressure; see repro.streaming).  Rejected packets
        #: never enter the network but stay in the conservation accounting:
        #: delivered + queued + pending + dropped + rejected == total.
        self.rejected: dict[int, int] = {}
        self.total_packets = 0
        self.total_moves = 0
        self.max_queue_len = 0
        self.max_node_load = 0
        #: Deterministic scheduling counters (see docs/PERFORMANCE.md):
        #: moves scheduled by outqueue policies, moves refused (inqueue
        #: refusals plus link-filter drops), and dynamic packets injected.
        #: Accepted moves equal :attr:`total_moves`.
        self.scheduled_moves = 0
        self.refused_moves = 0
        self.injected_packets = 0
        #: Optional perf probe (:class:`repro.perf.StepInstrumentation`).
        #: When None -- the default -- the step loop pays only a few
        #: ``is not None`` checks; when attached, it is called at every
        #: phase boundary to accumulate per-phase wall time.
        self.instrument: Any = None
        self.series: list[StepRecord] = []
        self._pending: list[Packet] = []
        self._in_flight = 0
        # Precomputed geometry (built once per topology, shared across
        # simulators): per-node outlink targets and outlink direction sets.
        self._neighbors: dict[tuple[int, int], tuple[tuple[int, int] | None, ...]] = (
            dict(zip(topology.nodes(), topology.neighbor_table()))
        )
        self._out_dirs: dict[tuple[int, int], tuple[Direction, ...]] = (
            dict(zip(topology.nodes(), topology.out_directions_table()))
        )
        # Per-node view-factory closures, so _context() does not allocate a
        # fresh lambda for every (node, phase, step) triple.
        self._view_factories: dict[
            tuple[int, int], Callable[[list[Packet]], list[PacketView]]
        ] = {}
        # pid -> the queue (list object) the packet currently sits in, so
        # departures reach into the right queue directly instead of scanning
        # every queue.  Queue lists are mutated in place, never replaced,
        # while occupied, so the reference stays valid until the packet moves.
        self._queue_of: dict[int, list[Packet]] = {}
        # Occupied nodes in sorted order, maintained incrementally (insort on
        # first arrival/injection at a node, bisect-delete on prune) so phase
        # (a) does not re-sort ~every node each step.
        self._sorted_nodes: list[tuple[int, int]] = []
        # node -> total packets held, maintained incrementally (injection and
        # arrival increment, departure decrements).  Lets the transmit phase
        # update the load maxima without re-summing each receiving node.
        self._node_load: dict[tuple[int, int], int] = {}
        # Hoisted hot-path attributes (bound once; see docs/PERFORMANCE.md).
        self._dest_exchangeable = algorithm.destination_exchangeable
        self._profitable = topology.profitable_directions
        #: Hook points for observers (the repro.verify oracle layer).  Pre
        #: hooks run at the top of :meth:`step` (before injection and
        #: scheduling); post hooks run at the very end with the transmitted
        #: moves.  Both lists are empty by default and cost nothing then.
        self.pre_step_hooks: list[Callable[["Simulator"], None]] = []
        self.post_step_hooks: list[
            Callable[["Simulator", list[ScheduledMove]], None]
        ] = []

        self._load(packets)

    # -- setup ---------------------------------------------------------------

    def attach_fault_plan(self, plan: Any) -> None:
        """Install ``plan`` (a :class:`repro.faults.plan.FaultPlan`).

        The reference engine evaluates plans through the scalar
        ``link_filter`` closure; the array engine overrides this to keep
        the plan itself and query its vectorized methods per step.
        """
        self.link_filter = plan.as_link_filter(self.topology)

    def _load(self, packets: Iterable[Packet]) -> None:
        seen: set[int] = set()
        originating: dict[tuple[int, int], list[Packet]] = {}
        for p in packets:
            if p.pid in seen:
                raise ValueError(f"duplicate packet id {p.pid}")
            seen.add(p.pid)
            if not self.topology.contains(p.source) or not self.topology.contains(p.dest):
                raise ValueError(f"packet {p.pid} endpoints outside topology")
            self.total_packets += 1
            if p.injection_time > 0:
                self._pending.append(p)
                continue
            p.pos = p.source
            if p.source == p.dest:
                self.delivery_times[p.pid] = 0
                continue
            originating.setdefault(p.source, []).append(p)

        self._pending.sort(key=lambda p: (p.injection_time, p.pid))

        for node, plist in originating.items():
            plist.sort(key=lambda p: p.pid)
            node_queues = self.queues.setdefault(node, {})
            views = []
            for p in plist:
                profitable = self.topology.profitable_directions(node, p.dest)
                p.state = self.algorithm.initial_packet_state(self._make_view(p, profitable))
                key = self.spec.initial_key(profitable)
                q = node_queues.setdefault(key, [])
                q.append(p)
                self._queue_of[p.pid] = q
                views.append(self._make_view(p, profitable))
                self._in_flight += 1
            state = self.algorithm.initial_node_state(node, views)
            if state is not None:
                self.node_states[node] = state
            self._check_capacity(node)
            self._note_load(node)
        self._sorted_nodes = sorted(self.queues)

    # -- credit probe --------------------------------------------------------

    def _downstream_occupancy(self, node: tuple[int, int], direction: Direction) -> int:
        """Occupancy of the queue a packet sent along ``direction`` lands in.

        Read from the start-of-step configuration (phase (a) never mutates
        queues), so every node sees the same deterministic credit values
        regardless of scheduling order.  Exposes only queue *lengths* --
        destination-free state -- so credit-steering routers stay
        destination-exchangeable.
        """
        target = self._neighbors[node][direction]
        if target is None:
            return 0
        node_queues = self.queues.get(target)
        if not node_queues:
            return 0
        queue = node_queues.get(self.spec._arrival_map[self._opp[direction]])
        return len(queue) if queue else 0

    # -- views ---------------------------------------------------------------

    def _make_view(self, packet: Packet, profitable: frozenset[Direction]) -> PacketView:
        if self._dest_exchangeable:
            return PacketView(packet, profitable)
        disp = self.topology.displacement(packet.pos, packet.dest)
        return FullPacketView(packet, profitable, disp)

    def _view_at(self, packet: Packet, node: tuple[int, int]) -> PacketView:
        return self._view_factory(node)([packet])[0]

    def _view_factory(
        self, node: tuple[int, int]
    ) -> Callable[[list[Packet]], list[PacketView]]:
        # One flat closure per node, mapping a whole raw queue to its view
        # list in a single call (the step loop builds a view for nearly
        # every in-flight packet every step, so the factory avoids both the
        # method-dispatch chain and a per-packet call frame).
        factory = self._view_factories.get(node)
        if factory is None:
            profitable = self._profitable
            # Construct views via ``__new__`` + slot writes rather than the
            # constructor: same fields, same values, but no ``__init__``
            # call frame for the hottest allocation in the step loop.
            if self._dest_exchangeable:

                def factory(
                    raw: list[Packet],
                    node: tuple[int, int] = node,
                    profitable: Callable[..., frozenset[Direction]] = profitable,
                    view_cls: type[PacketView] = PacketView,
                    new: Callable[..., Any] = PacketView.__new__,
                ) -> list[PacketView]:
                    out = []
                    for p in raw:
                        v = new(view_cls)
                        v._packet = p
                        v.key = p.pid
                        v.source = p.source
                        v.profitable = profitable(node, p.dest)
                        out.append(v)
                    return out

            else:
                displacement = self.topology.displacement

                def factory(
                    raw: list[Packet],
                    node: tuple[int, int] = node,
                    profitable: Callable[..., frozenset[Direction]] = profitable,
                    view_cls: type[FullPacketView] = FullPacketView,
                    new: Callable[..., Any] = FullPacketView.__new__,
                ) -> list[PacketView]:
                    out = []
                    for p in raw:
                        v = new(view_cls)
                        v._packet = p
                        v.key = p.pid
                        v.source = p.source
                        v.profitable = profitable(node, p.dest)
                        v.dest = p.dest
                        v.displacement = displacement(node, p.dest)
                        out.append(v)
                    return out

            self._view_factories[node] = factory
        return factory

    def _context(
        self, node: tuple[int, int], raw: dict[Any, list[Packet]] | None = None
    ) -> NodeContext:
        return NodeContext(
            node,
            self.node_states.get(node),
            self._out_dirs[node],
            self.time,
            self.queues.get(node, {}) if raw is None else raw,
            self._view_factory(node),
        )

    def _out_directions(self, node: tuple[int, int]) -> tuple[Direction, ...]:
        return self._out_dirs[node]

    # -- introspection (used by adversaries, tests, and metrics) ---------------

    def iter_packets(self) -> Iterator[Packet]:
        """All undelivered, injected packets."""
        for node_queues in self.queues.values():
            for q in node_queues.values():
                yield from q

    def packets_at(self, node: tuple[int, int]) -> list[Packet]:
        out: list[Packet] = []
        for q in self.queues.get(node, {}).values():
            out.extend(q)
        return out

    def queue_occupancy(self, node: tuple[int, int], key: Any) -> int:
        """Current occupancy of one (node, queue-key) queue.

        The engine-portable accessor: the array engine overrides it with a
        direct occupancy-array read, so admission checks (the streaming
        layer) need never materialize queue contents.
        """
        node_queues = self.queues.get(node)
        if not node_queues:
            return 0
        q = node_queues.get(key)
        return len(q) if q else 0

    @property
    def in_flight(self) -> int:
        """Undelivered packets currently in the network."""
        return self._in_flight

    @property
    def undelivered(self) -> int:
        return self.total_packets - len(self.delivery_times)

    @property
    def pending_count(self) -> int:
        """Dynamic packets waiting outside the network for injection."""
        return len(self._pending)

    def configuration(self) -> tuple:
        """Canonical hashable snapshot of the network configuration.

        Captures, per node, the per-queue packet sequences (pid, source,
        dest, state) plus the node's state -- the paper's "configuration of
        a network" (Section 4.2).  Used to verify Lemma 12 replay equality.
        Packet and node states must be hashable.
        """
        items = []
        for node in sorted(self.queues):
            node_queues = self.queues[node]
            qitems = []
            for key in sorted(node_queues, key=repr):
                q = node_queues[key]
                if q:
                    qitems.append(
                        (repr(key), tuple((p.pid, p.source, p.dest, p.state) for p in q))
                    )
            if qitems:
                items.append((node, tuple(qitems), self.node_states.get(node)))
        return tuple(items)

    # -- the step ---------------------------------------------------------------

    def step(self) -> list[ScheduledMove]:
        """Run one synchronous step; returns the moves that were transmitted."""
        instr = self.instrument
        if instr is not None:
            instr.begin_step()
        self.time += 1
        if self.pre_step_hooks:
            for hook in self.pre_step_hooks:
                hook(self)
            if instr is not None:
                instr.mark("hooks")
        if self._pending:
            self._inject_pending()

        # (a) outqueue policies.  Every node present in ``queues`` holds at
        # least one packet: _prune_empty() maintains that invariant at the
        # end of every step and _load()/_inject_pending() only ever add
        # occupied nodes.
        schedule: list[ScheduledMove] = []
        neighbors = self._neighbors
        outqueue = self.algorithm.outqueue
        validate = self.validate
        # Contexts built here are reused by phase (c) (same step, queues
        # untouched in between) unless an interceptor runs: its destination
        # exchanges would leave already-materialized views stale.
        contexts: dict[tuple[int, int], NodeContext] = {}
        # When nothing between scheduling and the inqueue phase can change a
        # chosen view (no interceptor, no link filter), the offers are built
        # right here in phase (a); otherwise phase (c) rebuilds them from
        # post-exchange state.
        build_offers = self.interceptor is None and self.link_filter is None
        offers_by_target: dict[tuple[int, int], list[tuple[Offer, ScheduledMove]]] = {}
        obt_get = offers_by_target.get
        make_offer = Offer
        make_move = ScheduledMove
        opp = self._opp
        node_states = self.node_states
        node_state = node_states.get
        out_dirs = self._out_dirs
        view_factory = self._view_factory
        factories = self._view_factories
        queues = self.queues
        now = self.time
        if validate and len(self._sorted_nodes) != len(queues):
            raise InvalidScheduleError(
                "occupied-node index out of sync with queues (internal error)"
            )
        # Policies declaring ``fast_outqueue`` take the views directly and
        # need no NodeContext at all for this phase (phase (c) builds its
        # own contexts on demand; phase (e) always does).
        fast_out = (
            self.algorithm.outqueue_from_views
            if self.algorithm.fast_outqueue
            else None
        )
        for node in self._sorted_nodes:
            node_queues = queues[node]
            factory = factories.get(node)
            if factory is None:
                factory = view_factory(node)
            # Build every queue's views up front: outqueue policies read
            # (nearly) all of their node's queues, so eager construction
            # skips the per-queue lazy plumbing entirely.
            views_map: dict[Any, list[PacketView]] = {}
            keys = []
            for key, q in node_queues.items():
                if q:
                    keys.append(key)
                    views_map[key] = factory(q)
            if fast_out is not None:
                chosen = fast_out(
                    node,
                    node_state(node) if node_states else None,
                    out_dirs[node],
                    now,
                    views_map,
                )
            else:
                ctx = NodeContext(
                    node,
                    node_state(node) if node_states else None,
                    out_dirs[node],
                    now,
                    node_queues,
                    factory,
                )
                ctx._views = views_map
                ctx._keys = keys
                contexts[node] = ctx
                chosen = outqueue(ctx)
            if not chosen:
                continue
            if validate:
                if len(chosen) > 1:
                    self._validate_schedule(node, chosen)
                else:
                    # One scheduled outlink: only the position check applies.
                    for view in chosen.values():
                        if view._packet.pos != node:
                            raise InvalidScheduleError(
                                f"{self.algorithm.name}: node {node} scheduled packet "
                                f"{view._packet.pid} which is at {view._packet.pos}"
                            )
            nbr_row = neighbors[node]
            for direction, view in chosen.items():
                target = nbr_row[direction]
                if target is None:
                    raise InvalidScheduleError(
                        f"{self.algorithm.name}: node {node} scheduled on missing "
                        f"outlink {direction.name}"
                    )
                mv = make_move(view._packet, node, direction, target)
                schedule.append(mv)
                if build_offers:
                    pairs = obt_get(target)
                    if pairs is None:
                        offers_by_target[target] = [
                            (make_offer(view, opp[direction], node), mv)
                        ]
                    else:
                        pairs.append((make_offer(view, opp[direction], node), mv))
        scheduled_count = len(schedule)
        self.scheduled_moves += scheduled_count
        if instr is not None:
            instr.mark("a")

        # (b) interceptor (the adversary's exchanges happen here).
        if self.interceptor is not None:
            self.interceptor(self, schedule)
            if instr is not None:
                instr.mark("hooks")

        # Minimality is checked against post-exchange destinations: the
        # adversary must leave every scheduled move profitable (Section 3's
        # exchange rules guarantee this; we verify).
        if self.validate and self.algorithm.minimal:
            profitable_of = self._profitable
            for mv in schedule:
                if mv.direction not in profitable_of(mv.src, mv.packet.dest):
                    raise NonMinimalMoveError(
                        f"packet {mv.packet.pid} at {mv.src} scheduled "
                        f"{mv.direction.name}, unprofitable for dest {mv.packet.dest}"
                    )

        # Optional link filter (the asynchronous extension): a scheduled
        # move over an unavailable link silently fails this step, exactly
        # like a refusal -- the policies cannot tell the difference.
        if self.link_filter is not None:
            schedule = [
                mv
                for mv in schedule
                if self.link_filter(mv.src, mv.direction, self.time)
            ]
        if instr is not None:
            instr.mark("b")

        # (c) inqueue policies.  Offer views carry profitable-from-sender
        # sets; the views chosen in phase (a) are exactly that (and the
        # offers were already built there) unless an interceptor exchanged
        # destinations or a link filter dropped moves, in which case the
        # offers are rebuilt here from post-exchange state.
        if not build_offers:
            offers_by_target = {}
            view_at = self._view_at
            for mv in schedule:
                offer = Offer(view_at(mv.packet, mv.src), opp[mv.direction], mv.src)
                pairs = offers_by_target.get(mv.target)
                if pairs is None:
                    offers_by_target[mv.target] = [(offer, mv)]
                else:
                    pairs.append((offer, mv))

        accepted_moves: list[ScheduledMove] = []
        touched: set[tuple[int, int]] = set()
        reuse_contexts = self.interceptor is None
        # ``touched`` feeds phase (e) only; with the default no-op
        # after_step, phase (e) is skipped and tracking would be waste.
        track_touched = not self._default_after_step
        inqueue = self.algorithm.inqueue
        get_ctx = contexts.get
        accepts_all_empty = self.algorithm.accepts_all_into_empty
        for target, pairs in sorted(offers_by_target.items()):
            multi = len(pairs) > 1
            if multi:
                pairs.sort(key=lambda pair: pair[0].came_from)
            if accepts_all_empty and target not in queues:
                # Declared contract (accepts_all_into_empty): the policy
                # accepts every offer into an unoccupied node, in inlink
                # order -- exactly what calling it would return, so the
                # context build and the inqueue call are skipped.
                if multi:
                    accepted_moves.extend(pair[1] for pair in pairs)
                else:
                    accepted_moves.append(pairs[0][1])
                if track_touched:
                    touched.add(target)
                    for pair in pairs:
                        touched.add(pair[1].src)
                continue
            offers: Any = [pair[0] for pair in pairs] if multi else (pairs[0][0],)
            ctx = get_ctx(target) if reuse_contexts else None
            if ctx is None:
                # Mostly unoccupied targets: build the context inline with
                # the locals phase (a) already hoisted.
                factory = factories.get(target)
                if factory is None:
                    factory = view_factory(target)
                ctx = NodeContext(
                    target,
                    node_state(target) if node_states else None,
                    out_dirs[target],
                    now,
                    queues.get(target) or {},
                    factory,
                )
            accepted = inqueue(ctx, offers)
            if not isinstance(accepted, (list, tuple)):
                accepted = list(accepted)
            if accepted:
                # Moves are appended in (target, inlink-direction) order:
                # targets iterate sorted, and multi-accept groups are sorted
                # by inlink here, so phase (d) needs no global re-sort.
                if len(accepted) == 1 and len(pairs) == 1 and accepted[0] is pairs[0][0]:
                    # The returned offer *is* the single offer given, so the
                    # validate identity checks below hold vacuously.
                    accepted_moves.append(pairs[0][1])
                else:
                    if validate:
                        ids = {id(o) for o in offers}
                        for off in accepted:
                            if id(off) not in ids:
                                raise InvalidScheduleError(
                                    f"{self.algorithm.name}: inqueue at {target} accepted "
                                    "an offer it was not given"
                                )
                        if len({id(o) for o in accepted}) != len(accepted):
                            raise InvalidScheduleError(
                                f"{self.algorithm.name}: inqueue at {target} accepted "
                                "an offer twice"
                            )
                    by_offer = {id(pair[0]): pair[1] for pair in pairs}
                    if len(accepted) == 1:
                        accepted_moves.append(by_offer[id(accepted[0])])
                    else:
                        moves = [by_offer[id(off)] for off in accepted]
                        moves.sort(key=lambda m: opp[m.direction])
                        accepted_moves.extend(moves)
            if track_touched:
                touched.add(target)
                for pair in pairs:
                    touched.add(pair[1].src)
        self.refused_moves += scheduled_count - len(accepted_moves)
        if instr is not None:
            instr.mark("c")

        # (d) transmit: departures first, then arrivals.  ``accepted_moves``
        # is already in (target, inlink-direction) order (see phase (c)).
        queue_of = self._queue_of
        node_load = self._node_load
        sources: set[tuple[int, int]] = set()
        for mv in accepted_moves:
            src = mv.src
            p = mv.packet
            # Inlined _remove_packet fast path: _queue_of holds the queue
            # (exceptions are free until raised on 3.11+, and the fallback
            # scan below re-raises the typed error for truly absent packets).
            try:
                queue_of[p.pid].remove(p)
            except (KeyError, ValueError):
                self._remove_packet(src, p)
            node_load[src] -= 1
            sources.add(src)
        arrivals: set[tuple[int, int]] = set()
        arrival_map = self.spec._arrival_map
        record_link_loads = self.record_link_loads
        delivery_times = self.delivery_times
        self.total_moves += len(accepted_moves)
        max_queue_len = self.max_queue_len
        max_node_load = self.max_node_load
        capacity = self.spec.capacity
        for mv in accepted_moves:
            p = mv.packet
            target = mv.target
            p.pos = target
            if record_link_loads:
                key = (mv.src, mv.direction)
                self.link_loads[key] = self.link_loads.get(key, 0) + 1
            if target == p.dest:
                delivery_times[p.pid] = self.time
                self._in_flight -= 1
                queue_of.pop(p.pid, None)
            else:
                key = arrival_map[opp[mv.direction]]
                node_queues = queues.get(target)
                if node_queues is None:
                    queues[target] = node_queues = {}
                    insort(self._sorted_nodes, target)
                q = node_queues.get(key)
                if q is None:
                    node_queues[key] = q = [p]
                else:
                    q.append(p)
                queue_of[p.pid] = q
                load = node_load.get(target, 0) + 1
                node_load[target] = load
                arrivals.add(target)
                # Maxima update fused into the arrival: loads only grow
                # during this loop (departures already happened), so the
                # running values reach exactly the per-step maxima.  Only an
                # appended-to queue can newly exceed capacity, so the check
                # lives here too, reporting the first offending arrival.
                n = len(q)
                if n > max_queue_len:
                    max_queue_len = n
                if load > max_node_load:
                    max_node_load = load
                if validate and n > capacity:
                    raise QueueOverflowError(
                        self.algorithm.name, target, key, n, capacity
                    )
        self.max_queue_len = max_queue_len
        self.max_node_load = max_node_load
        if instr is not None:
            instr.mark("d")

        # (e) state updates from end-of-step contents.  Skipped entirely for
        # algorithms that keep the base-class no-op after_step: they can
        # neither change node state nor packet states here.
        if not self._default_after_step:
            if self.algorithm.needs_idle_updates:
                update_nodes: Iterable[tuple[int, int]] = self.topology.nodes()
            else:
                touched.update(arrivals)
                occupied = {n for n, qs in self.queues.items() if any(qs.values())}
                update_nodes = sorted(occupied | touched)
            for node in update_nodes:
                ctx = self._context(node)
                new_state = self.algorithm.after_step(ctx)
                if new_state is None:
                    self.node_states.pop(node, None)
                else:
                    self.node_states[node] = new_state

        # Only a node that sent without receiving can have emptied this step.
        self._prune_empty(sources - arrivals)
        if instr is not None:
            instr.mark("e")

        if self.record_series:
            self.series.append(
                StepRecord(
                    time=self.time,
                    in_flight=self._in_flight,
                    delivered_total=len(self.delivery_times),
                    moves=len(accepted_moves),
                    max_queue_len=self.max_queue_len,
                )
            )
        if self.post_step_hooks:
            for hook in self.post_step_hooks:
                hook(self, accepted_moves)
            if instr is not None:
                instr.mark("hooks")
        if instr is not None:
            instr.end_step()
        return accepted_moves

    # -- step helpers ---------------------------------------------------------

    def _inject_pending(self) -> None:
        if not self._pending:
            return
        still_pending: list[Packet] = []
        for p in self._pending:
            # A packet with injection_time = t is present from the end of
            # step t, so its first move happens during step t+1 -- matching
            # static packets (t = 0, first move at step 1).
            if p.injection_time >= self.time:
                still_pending.append(p)
                continue
            if p.source == p.dest:
                self.delivery_times[p.pid] = self.time
                continue
            profitable = self.topology.profitable_directions(p.source, p.dest)
            key = self.spec.initial_key(profitable)
            if len(self.queues.get(p.source, {}).get(key, ())) >= self.spec.capacity:
                still_pending.append(p)  # its queue is full; retry next step
                continue
            p.pos = p.source
            p.state = self.algorithm.initial_packet_state(self._make_view(p, profitable))
            node_queues = self.queues.get(p.source)
            if node_queues is None:
                self.queues[p.source] = node_queues = {}
                insort(self._sorted_nodes, p.source)
            q = node_queues.setdefault(key, [])
            q.append(p)
            self._queue_of[p.pid] = q
            self._in_flight += 1
            self.injected_packets += 1
            self._check_capacity(p.source)
            self._note_load(p.source)
        self._pending = still_pending

    def _validate_schedule(
        self,
        node: tuple[int, int],
        chosen: dict[Direction, PacketView],
    ) -> None:
        if len(chosen) == 1:
            # Common case: one scheduled outlink, so no duplicate to detect.
            for view in chosen.values():
                p = view._packet
                if p.pos != node:
                    raise InvalidScheduleError(
                        f"{self.algorithm.name}: node {node} scheduled packet "
                        f"{p.pid} which is at {p.pos}"
                    )
            return
        seen_packets: set[int] = set()
        for direction, view in chosen.items():
            p = view._packet
            if p.pos != node:
                raise InvalidScheduleError(
                    f"{self.algorithm.name}: node {node} scheduled packet "
                    f"{p.pid} which is at {p.pos}"
                )
            if p.pid in seen_packets:
                raise InvalidScheduleError(
                    f"{self.algorithm.name}: node {node} scheduled packet "
                    f"{p.pid} on two outlinks"
                )
            seen_packets.add(p.pid)

    def _remove_packet(self, node: tuple[int, int], packet: Packet) -> None:
        # Fast path: _queue_of holds the queue list the packet sits in, so
        # removal needs no per-queue trial scans (list.remove raising
        # ValueError per miss is measurable at transmit volume).
        q = self._queue_of.get(packet.pid)
        if q is not None and packet in q:
            q.remove(packet)
            return
        for q in self.queues.get(node, {}).values():
            try:
                q.remove(packet)
                return
            except ValueError:
                continue
        raise InvalidScheduleError(
            f"packet {packet.pid} not found at {node} during transmit"
        )

    def _check_capacity(self, node: tuple[int, int]) -> None:
        if not self.validate:
            return
        for key, q in self.queues.get(node, {}).items():
            if len(q) > self.spec.capacity:
                raise QueueOverflowError(
                    self.algorithm.name, node, key, len(q), self.spec.capacity
                )

    def _note_load(self, node: tuple[int, int]) -> None:
        load = 0
        for q in self.queues.get(node, {}).values():
            n = len(q)
            load += n
            if n > self.max_queue_len:
                self.max_queue_len = n
        self._node_load[node] = load
        if load > self.max_node_load:
            self.max_node_load = load

    def _prune_empty(self, candidates: Iterable[tuple[int, int]] | None = None) -> None:
        queues = self.queues
        if candidates is None:  # full sweep
            for node in [n for n, qs in queues.items() if not any(qs.values())]:
                del queues[node]
            self._sorted_nodes = sorted(queues)
            return
        sorted_nodes = self._sorted_nodes
        for node in candidates:
            qs = queues.get(node)
            if qs is not None and not any(qs.values()):
                del queues[node]
                del sorted_nodes[bisect_left(sorted_nodes, node)]

    # -- fault handling (used by repro.faults; no-ops in fault-free runs) -------

    def drop_packet(self, packet: Packet) -> None:
        """Remove an in-network packet and record it as dropped.

        Dropped packets count as resolved for :attr:`done`; the faults
        conservation invariant is ``delivered + queued + pending + dropped
        == total``.
        """
        q = self._queue_of.pop(packet.pid, None)
        if q is not None and packet in q:
            q.remove(packet)
        else:
            self._remove_packet(packet.pos, packet)
        self._node_load[packet.pos] -= 1
        self._in_flight -= 1
        self.dropped[packet.pid] = self.time
        self._prune_empty((packet.pos,))

    def drop_pending(self, pid: int) -> None:
        """Drop a packet still waiting outside the network."""
        for i, p in enumerate(self._pending):
            if p.pid == pid:
                del self._pending[i]
                self.dropped[pid] = self.time
                return
        raise ValueError(f"packet {pid} is not pending")

    def inject_packet(self, packet: Packet) -> None:
        """Add a dynamic packet mid-run (fault-layer retransmissions).

        The packet joins the pending pool and enters the network at the
        first step strictly after its ``injection_time`` at which its
        source queue has space -- the same rule as load-time dynamic
        packets.
        """
        self._check_new_pid(packet)
        self.total_packets += 1
        self._pending.append(packet)
        self._pending.sort(key=lambda p: (p.injection_time, p.pid))

    def reject_packet(self, packet: Packet) -> None:
        """Refuse a packet at admission time (open-loop backpressure).

        The streaming layer offers arrivals to the network and, when the
        source queue is full, *rejects* them instead of letting them pile
        up in the pending pool -- the open-loop analogue of a dropped
        call.  Rejected packets count toward ``total_packets`` and are
        recorded in :attr:`rejected`, so packet conservation still holds
        as delivered + queued + pending + dropped + rejected == total,
        and :attr:`done` treats them as resolved.
        """
        self._check_new_pid(packet)
        self.total_packets += 1
        self.rejected[packet.pid] = self.time

    def _check_new_pid(self, packet: Packet) -> None:
        pid = packet.pid
        if (
            pid in self._queue_of
            or pid in self.delivery_times
            or pid in self.dropped
            or pid in self.rejected
            or any(p.pid == pid for p in self._pending)
        ):
            raise ValueError(f"duplicate packet id {pid}")
        if not self.topology.contains(packet.source) or not self.topology.contains(
            packet.dest
        ):
            raise ValueError(f"packet {pid} endpoints outside topology")

    # -- driving -----------------------------------------------------------------

    @property
    def done(self) -> bool:
        return (
            len(self.delivery_times) + len(self.dropped) + len(self.rejected)
            == self.total_packets
        )

    def run(self, max_steps: int, *, raise_on_limit: bool = False) -> RunResult:
        """Step until all packets are delivered or ``max_steps`` is reached."""
        while not self.done and self.time < max_steps:
            self.step()
        if not self.done and raise_on_limit:
            raise SimulationLimitError(self.time, self.undelivered)
        return self.result()

    def run_steps(self, steps: int) -> None:
        """Run exactly ``steps`` further steps (used by the construction)."""
        for _ in range(steps):
            self.step()

    def counter_snapshot(self) -> dict[str, Any]:
        """The instrumentation counters as of now (see docs/PERFORMANCE.md).

        The scheduling counters are deterministic functions of (spec, seed);
        the wall-clock fields contributed by an attached instrumentation
        probe are not and live under distinct keys.
        """
        counters: dict[str, Any] = {
            "scheduled_moves": self.scheduled_moves,
            "accepted_moves": self.total_moves,
            "refused_moves": self.refused_moves,
            "injected_packets": self.injected_packets,
        }
        if self.instrument is not None:
            counters.update(self.instrument.snapshot())
        return counters

    def result(self) -> RunResult:
        return RunResult(
            completed=self.done,
            steps=self.time,
            total_packets=self.total_packets,
            delivered=len(self.delivery_times),
            max_queue_len=self.max_queue_len,
            max_node_load=self.max_node_load,
            total_moves=self.total_moves,
            delivery_times=dict(self.delivery_times),
            series=list(self.series),
            counters=self.counter_snapshot(),
        )
