"""The synchronous multi-port mesh simulator (Sections 2 and 3).

Each :meth:`Simulator.step` executes the paper's exact phase order:

    (a) every node's outqueue policy schedules at most one packet per
        outlink;
    (b) the interceptor hook runs -- this is where the Section 3 adversary
        performs its destination exchanges;
    (c) every node's inqueue policy accepts or refuses the packets scheduled
        to enter it;
    (d) accepted packets are transmitted (departures before arrivals);
        packets arriving at their destination are delivered and removed;
    (e) node and packet states are updated from end-of-step contents.

The simulator enforces the model: at most one packet per outlink, minimal
moves for minimal algorithms (rechecked *after* the interceptor so adversary
bugs are caught too), and queue capacities after every transmission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.mesh.directions import Direction
from repro.mesh.errors import (
    InvalidScheduleError,
    NonMinimalMoveError,
    QueueOverflowError,
    SimulationLimitError,
)
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.topology import Topology
from repro.mesh.visibility import FullPacketView, Offer, PacketView


class ScheduledMove:
    """One packet scheduled on one outlink during phase (a)."""

    __slots__ = ("packet", "src", "direction", "target")

    def __init__(
        self,
        packet: Packet,
        src: tuple[int, int],
        direction: Direction,
        target: tuple[int, int],
    ) -> None:
        self.packet = packet
        self.src = src
        self.direction = direction
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScheduledMove({self.packet!r} {self.src}-{self.direction.name}->{self.target})"


@dataclass
class StepRecord:
    """Optional per-step series entry (enable with ``record_series=True``)."""

    time: int
    in_flight: int
    delivered_total: int
    moves: int
    max_queue_len: int


@dataclass
class RunResult:
    """Outcome of :meth:`Simulator.run`.

    Attributes:
        completed: True when every packet was delivered within the budget.
        steps: Steps executed (equals the delivery time of the last packet
            when ``completed``).
        total_packets: Number of packets in the problem instance.
        delivered: Number delivered.
        max_queue_len: Maximum occupancy any single queue ever reached.
        max_node_load: Maximum total packets any node ever held at once.
        total_moves: Total packet transmissions (network load).
        delivery_times: pid -> step at which the packet was delivered.
        series: Per-step records when series recording was enabled.
    """

    completed: bool
    steps: int
    total_packets: int
    delivered: int
    max_queue_len: int
    max_node_load: int
    total_moves: int
    delivery_times: dict[int, int] = field(repr=False, default_factory=dict)
    series: list[StepRecord] = field(repr=False, default_factory=list)


Interceptor = Callable[["Simulator", list[ScheduledMove]], None]


class Simulator:
    """Synchronous simulator for one routing problem instance.

    Args:
        topology: The mesh or torus.
        algorithm: The routing algorithm under test.
        packets: The problem instance.  Packets whose source equals their
            destination are delivered at step 0.  Packets with
            ``injection_time > 0`` wait outside the network and enter at the
            first step at or after that time at which their source node has
            queue space (the dynamic setting of Section 5).
        interceptor: Optional phase-(b) hook; the lower-bound adversary.
        validate: Enforce model rules every step -- schedule legality,
            minimality, and queue capacity, raising the typed
            :mod:`repro.mesh.errors` exceptions (small overhead; leave on
            except in the innermost benchmark loops, where the
            :mod:`repro.verify` oracles can re-check independently).
        record_series: Record a :class:`StepRecord` per step.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: RoutingAlgorithm,
        packets: Iterable[Packet],
        *,
        interceptor: Interceptor | None = None,
        validate: bool = True,
        record_series: bool = False,
        record_link_loads: bool = False,
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.interceptor = interceptor
        self.validate = validate
        self.record_series = record_series
        self.record_link_loads = record_link_loads
        #: (node, direction) -> transmissions, when link recording is on.
        self.link_loads: dict[tuple[tuple[int, int], Direction], int] = {}
        #: Optional (src, direction, time) -> bool availability hook; see
        #: repro.mesh.asynchrony.
        self.link_filter: Callable[[tuple[int, int], Direction, int], bool] | None = None
        self.spec = algorithm.queue_spec

        self._default_after_step = (
            type(algorithm).after_step is RoutingAlgorithm.after_step
        )
        self.time = 0
        self.queues: dict[tuple[int, int], dict[Any, list[Packet]]] = {}
        self.node_states: dict[tuple[int, int], Any] = {}
        self.delivery_times: dict[int, int] = {}
        self.total_packets = 0
        self.total_moves = 0
        self.max_queue_len = 0
        self.max_node_load = 0
        self.series: list[StepRecord] = []
        self._pending: list[Packet] = []
        self._in_flight = 0
        self._out_dirs_cache: dict[tuple[int, int], tuple[Direction, ...]] = {}
        #: Hook points for observers (the repro.verify oracle layer).  Pre
        #: hooks run at the top of :meth:`step` (before injection and
        #: scheduling); post hooks run at the very end with the transmitted
        #: moves.  Both lists are empty by default and cost nothing then.
        self.pre_step_hooks: list[Callable[["Simulator"], None]] = []
        self.post_step_hooks: list[
            Callable[["Simulator", list[ScheduledMove]], None]
        ] = []

        self._load(packets)

    # -- setup ---------------------------------------------------------------

    def _load(self, packets: Iterable[Packet]) -> None:
        seen: set[int] = set()
        originating: dict[tuple[int, int], list[Packet]] = {}
        for p in packets:
            if p.pid in seen:
                raise ValueError(f"duplicate packet id {p.pid}")
            seen.add(p.pid)
            if not self.topology.contains(p.source) or not self.topology.contains(p.dest):
                raise ValueError(f"packet {p.pid} endpoints outside topology")
            self.total_packets += 1
            if p.injection_time > 0:
                self._pending.append(p)
                continue
            p.pos = p.source
            if p.source == p.dest:
                self.delivery_times[p.pid] = 0
                continue
            originating.setdefault(p.source, []).append(p)

        self._pending.sort(key=lambda p: (p.injection_time, p.pid))

        for node, plist in originating.items():
            plist.sort(key=lambda p: p.pid)
            node_queues = self.queues.setdefault(node, {})
            views = []
            for p in plist:
                profitable = self.topology.profitable_directions(node, p.dest)
                p.state = self.algorithm.initial_packet_state(self._make_view(p, profitable))
                key = self.spec.initial_key(profitable)
                node_queues.setdefault(key, []).append(p)
                views.append(self._make_view(p, profitable))
                self._in_flight += 1
            state = self.algorithm.initial_node_state(node, views)
            if state is not None:
                self.node_states[node] = state
            self._check_capacity(node)
            self._note_load(node)

    # -- views ---------------------------------------------------------------

    def _make_view(self, packet: Packet, profitable: frozenset[Direction]) -> PacketView:
        if self.algorithm.destination_exchangeable:
            return PacketView(packet, profitable)
        disp = self.topology.displacement(packet.pos, packet.dest)
        return FullPacketView(packet, profitable, disp)

    def _view_at(self, packet: Packet, node: tuple[int, int]) -> PacketView:
        profitable = self.topology.profitable_directions(node, packet.dest)
        if self.algorithm.destination_exchangeable:
            return PacketView(packet, profitable)
        disp = self.topology.displacement(node, packet.dest)
        return FullPacketView(packet, profitable, disp)

    def _context(self, node: tuple[int, int]) -> NodeContext:
        return NodeContext(
            node,
            self.node_states.get(node),
            self._out_directions(node),
            self.time,
            self.queues.get(node, {}),
            lambda p, node=node: self._view_at(p, node),
        )

    def _out_directions(self, node: tuple[int, int]) -> tuple[Direction, ...]:
        dirs = self._out_dirs_cache.get(node)
        if dirs is None:
            dirs = self.topology.out_directions(node)
            self._out_dirs_cache[node] = dirs
        return dirs

    # -- introspection (used by adversaries, tests, and metrics) ---------------

    def iter_packets(self) -> Iterator[Packet]:
        """All undelivered, injected packets."""
        for node_queues in self.queues.values():
            for q in node_queues.values():
                yield from q

    def packets_at(self, node: tuple[int, int]) -> list[Packet]:
        out: list[Packet] = []
        for q in self.queues.get(node, {}).values():
            out.extend(q)
        return out

    @property
    def in_flight(self) -> int:
        """Undelivered packets currently in the network."""
        return self._in_flight

    @property
    def undelivered(self) -> int:
        return self.total_packets - len(self.delivery_times)

    @property
    def pending_count(self) -> int:
        """Dynamic packets waiting outside the network for injection."""
        return len(self._pending)

    def configuration(self) -> tuple:
        """Canonical hashable snapshot of the network configuration.

        Captures, per node, the per-queue packet sequences (pid, source,
        dest, state) plus the node's state -- the paper's "configuration of
        a network" (Section 4.2).  Used to verify Lemma 12 replay equality.
        Packet and node states must be hashable.
        """
        items = []
        for node in sorted(self.queues):
            node_queues = self.queues[node]
            qitems = []
            for key in sorted(node_queues, key=repr):
                q = node_queues[key]
                if q:
                    qitems.append(
                        (repr(key), tuple((p.pid, p.source, p.dest, p.state) for p in q))
                    )
            if qitems:
                items.append((node, tuple(qitems), self.node_states.get(node)))
        return tuple(items)

    # -- the step ---------------------------------------------------------------

    def step(self) -> list[ScheduledMove]:
        """Run one synchronous step; returns the moves that were transmitted."""
        self.time += 1
        if self.pre_step_hooks:
            for hook in self.pre_step_hooks:
                hook(self)
        self._inject_pending()

        # (a) outqueue policies.
        schedule: list[ScheduledMove] = []
        for node in sorted(self.queues):
            if not any(self.queues[node].values()):
                continue
            ctx = self._context(node)
            if not ctx.packets:
                continue
            chosen = self.algorithm.outqueue(ctx)
            if not chosen:
                continue
            if self.validate:
                self._validate_schedule(node, ctx, chosen)
            for direction, view in chosen.items():
                target = self.topology.neighbor(node, direction)
                if target is None:
                    raise InvalidScheduleError(
                        f"{self.algorithm.name}: node {node} scheduled on missing "
                        f"outlink {direction.name}"
                    )
                schedule.append(ScheduledMove(view._packet, node, direction, target))

        # (b) interceptor (the adversary's exchanges happen here).
        if self.interceptor is not None:
            self.interceptor(self, schedule)

        # Minimality is checked against post-exchange destinations: the
        # adversary must leave every scheduled move profitable (Section 3's
        # exchange rules guarantee this; we verify).
        if self.validate and self.algorithm.minimal:
            for mv in schedule:
                profitable = self.topology.profitable_directions(mv.src, mv.packet.dest)
                if mv.direction not in profitable:
                    raise NonMinimalMoveError(
                        f"packet {mv.packet.pid} at {mv.src} scheduled "
                        f"{mv.direction.name}, unprofitable for dest {mv.packet.dest}"
                    )

        # Optional link filter (the asynchronous extension): a scheduled
        # move over an unavailable link silently fails this step, exactly
        # like a refusal -- the policies cannot tell the difference.
        if self.link_filter is not None:
            schedule = [
                mv
                for mv in schedule
                if self.link_filter(mv.src, mv.direction, self.time)
            ]

        # (c) inqueue policies.
        offers_by_target: dict[tuple[int, int], list[tuple[Offer, ScheduledMove]]] = {}
        for mv in schedule:
            view = self._view_at(mv.packet, mv.src)  # profitable from sender
            offer = Offer(view, mv.direction.opposite, mv.src)
            offers_by_target.setdefault(mv.target, []).append((offer, mv))

        accepted_moves: list[ScheduledMove] = []
        touched: set[tuple[int, int]] = set()
        for target in sorted(offers_by_target):
            pairs = offers_by_target[target]
            pairs.sort(key=lambda pair: pair[0].came_from)
            offers = [pair[0] for pair in pairs]
            by_offer = {id(pair[0]): pair[1] for pair in pairs}
            ctx = self._context(target)
            accepted = list(self.algorithm.inqueue(ctx, offers))
            if self.validate:
                ids = {id(o) for o in offers}
                for off in accepted:
                    if id(off) not in ids:
                        raise InvalidScheduleError(
                            f"{self.algorithm.name}: inqueue at {target} accepted "
                            "an offer it was not given"
                        )
                if len({id(o) for o in accepted}) != len(accepted):
                    raise InvalidScheduleError(
                        f"{self.algorithm.name}: inqueue at {target} accepted "
                        "an offer twice"
                    )
            for off in accepted:
                accepted_moves.append(by_offer[id(off)])
            touched.add(target)
            touched.update(pair[1].src for pair in pairs)

        # (d) transmit: departures first, then arrivals.
        accepted_moves.sort(key=lambda mv: (mv.target, mv.direction.opposite))
        for mv in accepted_moves:
            self._remove_packet(mv.src, mv.packet)
        arrivals: set[tuple[int, int]] = set()
        for mv in accepted_moves:
            p = mv.packet
            p.pos = mv.target
            self.total_moves += 1
            if self.record_link_loads:
                key = (mv.src, mv.direction)
                self.link_loads[key] = self.link_loads.get(key, 0) + 1
            if p.pos == p.dest:
                self.delivery_times[p.pid] = self.time
                self._in_flight -= 1
            else:
                key = self.spec.arrival_key(mv.direction.opposite)
                self.queues.setdefault(mv.target, {}).setdefault(key, []).append(p)
                arrivals.add(mv.target)
        for node in sorted(arrivals):
            self._check_capacity(node)
            self._note_load(node)

        # (e) state updates from end-of-step contents.  Skipped entirely for
        # algorithms that keep the base-class no-op after_step: they can
        # neither change node state nor packet states here.
        if not self._default_after_step:
            if self.algorithm.needs_idle_updates:
                update_nodes: Iterable[tuple[int, int]] = self.topology.nodes()
            else:
                touched.update(arrivals)
                occupied = {n for n, qs in self.queues.items() if any(qs.values())}
                update_nodes = sorted(occupied | touched)
            for node in update_nodes:
                ctx = self._context(node)
                new_state = self.algorithm.after_step(ctx)
                if new_state is None:
                    self.node_states.pop(node, None)
                else:
                    self.node_states[node] = new_state

        self._prune_empty()

        if self.record_series:
            self.series.append(
                StepRecord(
                    time=self.time,
                    in_flight=self._in_flight,
                    delivered_total=len(self.delivery_times),
                    moves=len(accepted_moves),
                    max_queue_len=self.max_queue_len,
                )
            )
        if self.post_step_hooks:
            for hook in self.post_step_hooks:
                hook(self, accepted_moves)
        return accepted_moves

    # -- step helpers ---------------------------------------------------------

    def _inject_pending(self) -> None:
        if not self._pending:
            return
        still_pending: list[Packet] = []
        for p in self._pending:
            # A packet with injection_time = t is present from the end of
            # step t, so its first move happens during step t+1 -- matching
            # static packets (t = 0, first move at step 1).
            if p.injection_time >= self.time:
                still_pending.append(p)
                continue
            if p.source == p.dest:
                self.delivery_times[p.pid] = self.time
                continue
            profitable = self.topology.profitable_directions(p.source, p.dest)
            key = self.spec.initial_key(profitable)
            if len(self.queues.get(p.source, {}).get(key, ())) >= self.spec.capacity:
                still_pending.append(p)  # its queue is full; retry next step
                continue
            p.pos = p.source
            p.state = self.algorithm.initial_packet_state(self._make_view(p, profitable))
            self.queues.setdefault(p.source, {}).setdefault(key, []).append(p)
            self._in_flight += 1
            self._check_capacity(p.source)
            self._note_load(p.source)
        self._pending = still_pending

    def _validate_schedule(
        self,
        node: tuple[int, int],
        ctx: NodeContext,
        chosen: dict[Direction, PacketView],
    ) -> None:
        seen_packets: set[int] = set()
        for direction, view in chosen.items():
            p = view._packet
            if p.pos != node:
                raise InvalidScheduleError(
                    f"{self.algorithm.name}: node {node} scheduled packet "
                    f"{p.pid} which is at {p.pos}"
                )
            if p.pid in seen_packets:
                raise InvalidScheduleError(
                    f"{self.algorithm.name}: node {node} scheduled packet "
                    f"{p.pid} on two outlinks"
                )
            seen_packets.add(p.pid)

    def _remove_packet(self, node: tuple[int, int], packet: Packet) -> None:
        for q in self.queues.get(node, {}).values():
            try:
                q.remove(packet)
                return
            except ValueError:
                continue
        raise InvalidScheduleError(
            f"packet {packet.pid} not found at {node} during transmit"
        )

    def _check_capacity(self, node: tuple[int, int]) -> None:
        if not self.validate:
            return
        for key, q in self.queues.get(node, {}).items():
            if len(q) > self.spec.capacity:
                raise QueueOverflowError(
                    self.algorithm.name, node, key, len(q), self.spec.capacity
                )

    def _note_load(self, node: tuple[int, int]) -> None:
        load = 0
        for q in self.queues.get(node, {}).values():
            n = len(q)
            load += n
            if n > self.max_queue_len:
                self.max_queue_len = n
        if load > self.max_node_load:
            self.max_node_load = load

    def _prune_empty(self) -> None:
        for node in [n for n, qs in self.queues.items() if not any(qs.values())]:
            del self.queues[node]

    # -- driving -----------------------------------------------------------------

    @property
    def done(self) -> bool:
        return len(self.delivery_times) == self.total_packets

    def run(self, max_steps: int, *, raise_on_limit: bool = False) -> RunResult:
        """Step until all packets are delivered or ``max_steps`` is reached."""
        while not self.done and self.time < max_steps:
            self.step()
        if not self.done and raise_on_limit:
            raise SimulationLimitError(self.time, self.undelivered)
        return self.result()

    def run_steps(self, steps: int) -> None:
        """Run exactly ``steps`` further steps (used by the construction)."""
        for _ in range(steps):
            self.step()

    def result(self) -> RunResult:
        return RunResult(
            completed=self.done,
            steps=self.time,
            total_packets=self.total_packets,
            delivered=len(self.delivery_times),
            max_queue_len=self.max_queue_len,
            max_node_load=self.max_node_load,
            total_moves=self.total_moves,
            delivery_times=dict(self.delivery_times),
            series=list(self.series),
        )
