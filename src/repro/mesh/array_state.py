"""Structure-of-arrays state for the vectorized array engine.

The reference simulator keeps the network as Python objects: ``Packet``
instances inside per-node dicts of per-queue lists.  The array engine
(:mod:`repro.mesh.array_engine`) keeps the same information as flat numpy
arrays so each simulator phase becomes a handful of batched operations:

- **Packet arrays**, indexed by a dense internal slot id: position
  (coordinates and flat node id), destination, queue key, FIFO sequence
  number, and per-packet age (hot-potato state).  Slots are append-only;
  delivered packets simply leave the active-index set.
- **Queue arrays**, indexed by flat node id: per-(node, key) occupancy,
  per-node load, and -- for the incoming-queue regime -- the queue-key
  *creation-order* bookkeeping that mirrors the reference engine's dict
  insertion order (``key_rank`` / ``key_count``), on which the bounded
  dimension-order fallback scan depends.
- **Geometry tables** derived from the topology once: flat neighbor ids
  per direction and an outlink bitmask per node.

Everything here is layout and geometry; the per-router scheduling kernels
live in :mod:`repro.mesh.array_engine`.  Flat node ids follow
:meth:`repro.mesh.topology.Topology.node_index` (column-major,
``x * height + y``), so sorting by flat id equals sorting by ``(x, y)``
tuples -- the order the reference engine iterates nodes in.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.directions import DIRECTIONS
from repro.mesh.topology import Topology

#: Direction values (N=0, E=1, S=2, W=3) as an indexable array.
DIR_N, DIR_E, DIR_S, DIR_W = 0, 1, 2, 3

#: ``OPP[d]`` is the opposite direction, as a numpy lookup table.
OPP = np.array([DIR_S, DIR_W, DIR_N, DIR_E], dtype=np.int64)

#: Maps an isolated low bit (``b & -b`` of a 4-bit direction mask) to its
#: direction value; index 0 (no bit set) maps to -1.
LOWBIT_DIR = np.full(16, -1, dtype=np.int64)
LOWBIT_DIR[1] = DIR_N
LOWBIT_DIR[2] = DIR_E
LOWBIT_DIR[4] = DIR_S
LOWBIT_DIR[8] = DIR_W


class GridGeometry:
    """Vectorized per-node geometry tables for one mesh or torus.

    Attributes:
        width / height / num_nodes: Grid dimensions.
        wraps: True for the torus.
        nbr_flat: ``(num_nodes, 4)`` flat neighbor ids, -1 where the
            outlink does not exist (mesh boundary).
        out_mask: ``(num_nodes,)`` bitmask of existing outlinks
            (bit ``d`` set when direction ``d`` has a link).
    """

    def __init__(self, topology: Topology) -> None:
        width, height = topology.width, topology.height
        self.width = width
        self.height = height
        self.num_nodes = width * height
        self.wraps = topology.wraps
        xs = np.repeat(np.arange(width, dtype=np.int64), height)
        ys = np.tile(np.arange(height, dtype=np.int64), width)
        nbr = np.full((self.num_nodes, 4), -1, dtype=np.int64)
        for d in DIRECTIONS:
            nx = xs + d.dx
            ny = ys + d.dy
            if self.wraps:
                nbr[:, d] = (nx % width) * height + (ny % height)
            else:
                valid = (nx >= 0) & (nx < width) & (ny >= 0) & (ny < height)
                nbr[valid, d] = nx[valid] * height + ny[valid]
        self.nbr_flat = nbr
        self.out_mask = (
            (nbr >= 0).astype(np.int64) << np.arange(4, dtype=np.int64)
        ).sum(axis=1)


class ArrayState:
    """The packet and queue arrays of one array-engine run.

    Packet slots are dense internal ids (0.., in load/injection order) --
    *not* pids; ``pids[slot]`` carries the external id.  ``num_keys`` is 1
    for the central-queue regime (key index 0) and 4 for the incoming
    regime (key index = ``Direction`` value).

    ``qseq`` is the FIFO tiebreaker: the engine assigns strictly
    increasing sequence numbers in exactly the order the reference engine
    appends packets to queue lists, so ascending ``qseq`` within one
    (node, key) queue *is* the reference queue order.
    """

    def __init__(self, geometry: GridGeometry, num_keys: int, track_age: bool) -> None:
        self.geom = geometry
        self.num_keys = num_keys
        self.track_age = track_age
        cap = 64
        self.pids = np.zeros(cap, dtype=np.int64)
        self.posf = np.zeros(cap, dtype=np.int64)
        self.destf = np.zeros(cap, dtype=np.int64)
        self.qkey = np.zeros(cap, dtype=np.int64)
        self.qseq = np.zeros(cap, dtype=np.int64)
        self.age = np.zeros(cap, dtype=np.int64) if track_age else None
        self.in_net = np.zeros(cap, dtype=bool)
        self.size = 0  # slots in use
        n = geometry.num_nodes
        self.occ = np.zeros((n, num_keys), dtype=np.int64)
        self.load = np.zeros(n, dtype=np.int64)
        if num_keys > 1:
            self.key_rank = np.full((n, num_keys), -1, dtype=np.int64)
            self.key_count = np.zeros(n, dtype=np.int64)
        else:
            self.key_rank = None
            self.key_count = None

    def ensure_capacity(self, extra: int) -> None:
        """Grow the packet arrays to hold ``extra`` more slots (amortized)."""
        need = self.size + extra
        cap = len(self.pids)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("pids", "posf", "destf", "qkey", "qseq", "age", "in_net"):
            arr = getattr(self, name)
            if arr is None:
                continue
            grown = np.zeros(cap, dtype=arr.dtype)
            grown[: self.size] = arr[: self.size]
            setattr(self, name, grown)

    def new_slot(self, pid: int, posf: int, destf: int, qkey: int, qseq: int) -> int:
        """Append one packet slot; returns its dense internal id."""
        self.ensure_capacity(1)
        slot = self.size
        self.size = slot + 1
        self.pids[slot] = pid
        self.posf[slot] = posf
        self.destf[slot] = destf
        self.qkey[slot] = qkey
        self.qseq[slot] = qseq
        self.in_net[slot] = True
        if self.age is not None:
            self.age[slot] = 0
        return slot

    # -- vectorized displacement geometry -----------------------------------

    def displacement(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Signed minimal displacement ``(dx, dy)`` per packet slot.

        Matches :meth:`repro.mesh.topology.Topology.displacement`: on the
        torus the shorter way around is chosen and an exact
        half-circumference tie is reported positive.
        """
        g = self.geom
        h = g.height
        pos = self.posf[slots]
        dest = self.destf[slots]
        px, py = pos // h, pos % h
        dx_, dy_ = dest // h, dest % h
        if g.wraps:
            dx = (dx_ - px) % g.width
            dx -= g.width * (dx > g.width // 2)
            dy = (dy_ - py) % h
            dy -= h * (dy > h // 2)
        else:
            dx = dx_ - px
            dy = dy_ - py
        return dx, dy

    def desired_direction(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """The dimension-order (row-first) move per packet.

        Vectorized :func:`repro.routing.base.desired_dimension_order_direction`
        over signed displacements: horizontal first, ties (torus
        half-circumference, reported positive by :meth:`displacement`)
        break toward the lower direction value (E over W, N over S).
        """
        return np.where(
            dx > 0,
            DIR_E,
            np.where(dx < 0, DIR_W, np.where(dy > 0, DIR_N, DIR_S)),
        )

    def profitable_mask(self, slots: np.ndarray) -> np.ndarray:
        """4-bit profitable-outlink mask per packet (bit ``d`` = profitable).

        Matches :meth:`Topology.profitable_directions`, including the torus
        tie case where *both* directions of an axis are profitable.
        """
        dx, dy = self.displacement(slots)
        g = self.geom
        if g.wraps:
            e = dx > 0
            w = (dx < 0) | ((dx > 0) & (2 * dx == g.width))
            n = dy > 0
            s = (dy < 0) | ((dy > 0) & (2 * dy == g.height))
        else:
            e, w, n, s = dx > 0, dx < 0, dy > 0, dy < 0
        return (
            n.astype(np.int64) * (1 << DIR_N)
            | e.astype(np.int64) * (1 << DIR_E)
            | s.astype(np.int64) * (1 << DIR_S)
            | w.astype(np.int64) * (1 << DIR_W)
        )
