"""Exceptions raised by the simulator when a model rule is violated.

These are *programming errors in a routing algorithm*, not runtime
conditions: the paper's model obliges the inqueue policy to guarantee its
queue never overflows, and a minimal algorithm to schedule packets only on
profitable outlinks.  The simulator enforces both so that every experiment
provably ran inside the model.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for model violations and simulator failures."""


class QueueOverflowError(SimulationError):
    """An inqueue policy accepted more packets than its queue can hold.

    Section 2: "The inqueue policy must guarantee that the queue does not
    overflow."

    Carries the offending node, queue key, occupancy, and capacity so that
    oracles and tests can distinguish an overflow (and localize it) without
    parsing the message.
    """

    def __init__(
        self,
        algorithm: str,
        node: tuple[int, int],
        queue_key: object,
        occupancy: int,
        capacity: int,
    ) -> None:
        super().__init__(
            f"{algorithm}: queue {queue_key!r} at {node} holds "
            f"{occupancy} > capacity {capacity}"
        )
        self.algorithm = algorithm
        self.node = node
        self.queue_key = queue_key
        self.occupancy = occupancy
        self.capacity = capacity


class InvalidScheduleError(SimulationError):
    """An outqueue policy produced an illegal schedule.

    Examples: scheduling a packet that is not in the node, scheduling two
    packets on one outlink, or scheduling along a nonexistent boundary link.
    """


class NonMinimalMoveError(InvalidScheduleError):
    """A minimal algorithm scheduled a packet on an unprofitable outlink."""


class SimulationLimitError(SimulationError):
    """The step budget was exhausted before all packets were delivered."""

    def __init__(self, steps: int, undelivered: int) -> None:
        super().__init__(
            f"{undelivered} packet(s) undelivered after {steps} steps"
        )
        self.steps = steps
        self.undelivered = undelivered


class AdversaryError(SimulationError):
    """The adversary could not find an eligible packet for an exchange.

    Lemmas 3 and 4 prove eligible packets always exist while the
    construction's preconditions hold; hitting this error in a valid
    configuration would falsify the construction (or reveal a bug).
    """
