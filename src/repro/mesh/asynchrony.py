"""Asynchronous links: stress-testing the synchronous-model assumptions.

The paper repeatedly flags that the fast known algorithms are "too
specifically tailored to ... synchronous networks to be practical," and its
closing open problem asks for algorithms that extend "to the asynchronous
and dynamic settings."  This module provides the standard approximation of
asynchrony: each link is independently available each step with probability
``availability`` (seeded, reproducible).  A scheduled transmission over a
down link silently fails -- indistinguishable from a refusal to the
policies.

What this exposes (see tests and bench A5):

- Algorithms whose queue safety rests on *guaranteed* ejection -- Theorem
  15's always-accepting North/South queues, and bufferless hot-potato
  routing -- overflow under asynchrony: the guarantee was synchrony.
- Conservative accept-if-space algorithms remain safe (never overflow) and
  usually just slow down.

Use :func:`make_async` to attach flaky links to any simulator.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.directions import Direction
from repro.mesh.simulator import Simulator
from repro.routing.bounded_dor import BoundedDimensionOrderRouter
from repro.mesh.interfaces import NodeContext
from repro.mesh.visibility import Offer
from typing import Iterable, Sequence


def make_async(
    sim: Simulator, availability: float, seed: int = 0
) -> Simulator:
    """Attach i.i.d. Bernoulli link availability to a simulator.

    Args:
        sim: Any simulator (the hook composes with interceptors).
        availability: Per-link per-step up-probability in (0, 1].
        seed: RNG seed; runs are reproducible.
    """
    if not 0.0 < availability <= 1.0:
        raise ValueError(f"availability must be in (0, 1], got {availability}")
    rng = np.random.default_rng(seed)

    def link_up(src: tuple[int, int], direction: Direction, time: int) -> bool:
        return bool(rng.random() < availability)

    sim.link_filter = link_up
    return sim


class ConservativeBoundedDimensionOrderRouter(BoundedDimensionOrderRouter):
    """Theorem 15's router with the synchrony assumption removed.

    The original's North/South queues accept unconditionally because the
    synchronous model *guarantees* they eject every step.  Under flaky
    links that guarantee is void, so this variant accepts into every queue
    only while it holds fewer than ``k`` packets -- always safe, at the
    price of Theorem 15's termination proof (vertical flows can now suffer
    the refusal stalls the always-accept rule existed to preclude).
    """

    name = "conservative-bounded-dor"

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        accepted = []
        for off in offers:
            if ctx.occupancy(off.came_from) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted
