"""Backward-compatible shim over :mod:`repro.faults`.

This module used to *be* the asynchrony support: a 74-line stub with an
i.i.d. flaky-link hook and the conservative router variant.  Both have
grown into the first-class fault-injection subsystem at
:mod:`repro.faults`; this shim keeps the old import paths and the
:func:`make_async` entry point working.

The move also fixed a determinism bug: the old ``make_async`` drew link
states from one shared sequential RNG, ignoring ``(src, direction,
time)`` entirely -- so a link's availability depended on how many other
moves had been evaluated first, and the same link queried twice in a
step could disagree.  The replacement is a pure counter-based hash of
``(seed, src, direction, time)`` (see
:class:`repro.faults.BernoulliLinkPlan`), reproducible across query
order, worker counts, and simulator fast paths.
"""

from __future__ import annotations

from repro.faults.plan import BernoulliLinkPlan
from repro.faults.resilience import ConservativeBoundedDimensionOrderRouter
from repro.mesh.simulator import Simulator

__all__ = ["ConservativeBoundedDimensionOrderRouter", "make_async"]


def make_async(sim: Simulator, availability: float, seed: int = 0) -> Simulator:
    """Attach i.i.d. Bernoulli link availability to a simulator.

    Equivalent to ``BernoulliLinkPlan(availability, seed).attach(sim)``.

    Args:
        sim: Any simulator (the hook composes with interceptors).
        availability: Per-link per-step up-probability in (0, 1].
        seed: Hash seed; equal seeds give bit-identical fault histories.
    """
    return BernoulliLinkPlan(availability, seed=seed).attach(sim)
