"""Packet views: what a routing policy is allowed to see (Section 2).

The lower bound applies to *destination-exchangeable* algorithms: their
outqueue and inqueue policies may use only each packet's mutable state, its
source address, and its profitable outlinks -- never the destination itself.
We enforce this structurally.  A destination-exchangeable algorithm's
policies receive :class:`PacketView` objects, which do not expose the
destination at all.  Algorithms that legitimately use full destination
addresses (farthest-first dimension order, the Section 6 algorithm) declare
``destination_exchangeable = False`` and receive :class:`FullPacketView`.

This design makes the indistinguishability argument of Lemma 10 a property
of the code: exchanging the destinations of two packets with equal
profitable-outlink sets produces byte-identical views, so no conforming
policy can behave differently.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.mesh.directions import Direction
from repro.mesh.packet import Packet


class PacketView:
    """The destination-exchangeable view of a packet.

    Attributes:
        key: Stable packet identifier.  It travels with the packet (not the
            destination), exactly like the source address, so exposing it
            preserves Lemma 10's indistinguishability.
        source: The packet's source address.
        profitable: The packet's profitable outlinks from the node it
            currently occupies (or, for an :class:`Offer`, from the node it
            is coming from -- the paper's convention for inqueue policies).
    """

    __slots__ = ("_packet", "key", "source", "profitable")

    def __init__(self, packet: Packet, profitable: frozenset[Direction]) -> None:
        self._packet = packet
        self.key = packet.pid
        self.source = packet.source
        self.profitable = profitable

    @property
    def state(self) -> Any:
        """Algorithm-writable packet state."""
        return self._packet.state

    @state.setter
    def state(self, value: Any) -> None:
        self._packet.state = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(#{self.key} src={self.source} "
            f"profitable={{{','.join(d.name for d in sorted(self.profitable))}}})"
        )


class FullPacketView(PacketView):
    """View with full destination knowledge.

    Handed to algorithms that declare ``destination_exchangeable = False``.

    Attributes:
        dest: The packet's destination address.
        displacement: Signed minimal displacement ``(dx, dy)`` from the
            packet's current node to its destination (used e.g. by the
            farthest-first outqueue policy).
    """

    __slots__ = ("dest", "displacement")

    def __init__(
        self,
        packet: Packet,
        profitable: frozenset[Direction],
        displacement: tuple[int, int],
    ) -> None:
        super().__init__(packet, profitable)
        self.dest = packet.dest
        self.displacement = displacement


class Offer(NamedTuple):
    """A packet scheduled to enter a node, as seen by the inqueue policy.

    A NamedTuple: immutable, with C-level construction and field access --
    the simulator allocates one per scheduled move every step.

    Attributes:
        view: The packet's view.  Its ``profitable`` set is measured from
            the *sending* node, per the paper's definition of the inqueue
            policy's inputs.
        came_from: The direction of the inlink the packet arrives on (the
            sender lies in this direction from the receiving node).
        sender: The sending node's coordinates.
    """

    view: PacketView
    came_from: Direction
    sender: tuple[int, int]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Offer({self.view!r} from {self.came_from.name} of {self.sender})"
