"""The routing-algorithm interface (Section 2's model, as an ABC).

A routing algorithm supplies, for every node, an *outqueue policy* (which
packets to attempt to transmit on which outlinks), an *inqueue policy*
(which scheduled packets to accept), and state-transition functions for node
and packet state.  The simulator drives these through the paper's per-step
phase order.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mesh.topology import Topology
    from repro.mesh.transitions import TransitionModel


#: Memoized ``repr`` strings for queue keys.  Queue keys are drawn from a
#: handful of values (``"central"`` or the four directions), but the step
#: loop sorts them constantly; caching the repr preserves the exact
#: ``sorted(..., key=repr)`` ordering contract without re-stringifying.
_KEY_REPRS: dict[Any, str] = {}


def _key_repr(key: Any) -> str:
    s = _KEY_REPRS.get(key)
    if s is None:
        s = _KEY_REPRS.setdefault(key, repr(key))
    return s


@dataclass(frozen=True)
class RoutingContract:
    """The machine-checkable claims a routing algorithm makes about itself.

    The verify layer (:mod:`repro.verify`) reads this to decide which
    oracles apply: a minimal router is held to distance-monotonicity, an
    ``excursion_delta``-bounded router to the Section 5 rectangle bound,
    a router with a ``step_bound`` to its theorem's step budget.

    Attributes:
        name: The algorithm's report name.
        minimal: Never schedules a packet on an unprofitable outlink.
        destination_exchangeable: Policies see :class:`PacketView` only.
        excursion_delta: How far a packet may stray (in hops) beyond the
            rectangle spanned by its source and destination: 0 for minimal
            routers, Section 5's ``delta`` for bounded-excursion routers,
            and None when excursions are unbounded (hot potato).
        queue_kind: ``"central"`` or ``"incoming"`` (the queue regime).
        queue_capacity: The paper's ``k`` -- packets per queue.
        step_bound: Proven worst-case step count for routing any (partial)
            permutation on an ``n x n`` mesh, or None when the paper proves
            no upper bound for this algorithm.
        dimension_ordered: Paths are strictly row-first-then-column; the
            static analyzer derives the permitted turn set from this.
    """

    name: str
    minimal: bool
    destination_exchangeable: bool
    excursion_delta: int | None
    queue_kind: str
    queue_capacity: int
    step_bound: int | None
    dimension_ordered: bool = False


class NodeContext:
    """Everything a policy may see of one node at one step.

    Attributes:
        node: The node's coordinates.  (Positional self-knowledge is
            slightly more than the paper's strictest reading of node state
            grants, but it cannot break Lemma 10: views of exchanged packets
            remain identical regardless of which nodes observe them.  All
            built-in destination-exchangeable policies ignore it.)
        state: The node's algorithm state (read-only here; return a new
            state from :meth:`RoutingAlgorithm.after_step` to change it).
        out_directions: Directions in which the node has outlinks.
        time: Current step number (a global clock; used only by globally
            scheduled algorithms, which are not destination-exchangeable).
    """

    __slots__ = (
        "node",
        "state",
        "out_directions",
        "time",
        "_raw",
        "_view_factory",
        "_views",
        "_packets",
        "_keys",
    )

    def __init__(
        self,
        node: tuple[int, int],
        state: Any,
        out_directions: tuple[Direction, ...],
        time: int,
        raw_queues: dict[Any, list],
        view_factory,
    ) -> None:
        self.node = node
        self.state = state
        self.out_directions = out_directions
        self.time = time
        # Views are materialized lazily: policies that only inspect
        # occupancies (most inqueue policies) never pay for them.
        self._raw = raw_queues
        self._view_factory = view_factory
        self._views: dict[Any, list[PacketView]] = {}
        self._packets: tuple[PacketView, ...] | None = None
        self._keys: list[Any] | None = None

    @property
    def packets(self) -> tuple[PacketView, ...]:
        """All packet views in the node, queue by queue, in arrival order."""
        if self._packets is None:
            flat: list[PacketView] = []
            for key in sorted(self._raw, key=_key_repr):
                flat.extend(self.queue(key))
            self._packets = tuple(flat)
        return self._packets

    def queue(self, key: Any) -> Sequence[PacketView]:
        """Views in one queue, in arrival (FIFO) order."""
        views = self._views.get(key)
        if views is None:
            raw = self._raw.get(key)
            if not raw:
                return ()
            views = self._view_factory(raw)
            self._views[key] = views
        return views

    @property
    def queue_keys(self) -> Iterable[Any]:
        if self._keys is None:
            self._keys = [k for k, q in self._raw.items() if q]
        return self._keys

    def occupancy(self, key: Any) -> int:
        """Number of packets currently in queue ``key``."""
        return len(self._raw.get(key, ()))

    @property
    def total_occupancy(self) -> int:
        return sum(len(q) for q in self._raw.values())


class RoutingAlgorithm(abc.ABC):
    """Base class for routing algorithms in the Section 2 model.

    Class attributes:
        name: Human-readable identifier used in reports.
        destination_exchangeable: When True (the default), policies receive
            :class:`PacketView` objects without destination information and
            the algorithm is subject to the paper's lower bounds.  When
            False, policies receive :class:`FullPacketView`.
        minimal: When True (the default), the simulator rejects any schedule
            that moves a packet along an unprofitable outlink.
        needs_idle_updates: When True, :meth:`after_step` is invoked for
            every node every step, even nodes holding no packets.  All
            built-in algorithms leave this False; their node states evolve
            only in response to local packet activity.

    Instance attribute:
        queue_spec: The node queue organization (set in ``__init__``).
    """

    name: ClassVar[str] = "unnamed"
    destination_exchangeable: ClassVar[bool] = True
    minimal: ClassVar[bool] = True
    needs_idle_updates: ClassVar[bool] = False
    #: Declares that the inqueue policy accepts *every* offer made to a node
    #: holding no packets at all.  Purely an optimization contract: when
    #: True, the simulator may skip the inqueue call for unoccupied target
    #: nodes and accept all offers in inlink order -- exactly what the
    #: policy would return.  Leave False (the default) unless the policy
    #: provably never refuses into an empty node (e.g. Theorem 15's
    #: organization, where every per-inlink queue has capacity >= 1 and
    #: occupancy 0).  Declaring it untruthfully changes behaviour.
    accepts_all_into_empty: ClassVar[bool] = False
    #: True for algorithms that route strictly row-first then column (the
    #: Section 5 dimension-order constructions require this path structure).
    dimension_ordered: ClassVar[bool] = False
    #: True for routers that steer by downstream free space.  The simulator
    #: then calls :meth:`attach_credit_probe` with a destination-free
    #: occupancy reader before the run starts (see docs/TOPOLOGY.md).
    uses_credit: ClassVar[bool] = False

    def __init__(self, queue_spec: QueueSpec) -> None:
        self.queue_spec = queue_spec

    def bind_topology(self, topology: "Topology") -> None:
        """One-time hook: the simulator announces the topology it will run on.

        Called before any packet is loaded.  Routers that adapt to dimension
        metadata (axis count, escape axis, regularity) override this; the
        default does nothing, so 2D routers are unaffected.
        """
        return None

    def attach_credit_probe(self, probe: Any) -> None:
        """Receive the simulator's downstream-occupancy reader.

        ``probe(node, direction)`` returns the occupancy of the queue that a
        packet sent from ``node`` along ``direction`` would land in, read
        from the current configuration.  Occupancy is destination-free
        information, so credit steering preserves destination
        exchangeability.  Only called when :attr:`uses_credit` is True.
        """
        return None

    # -- contract metadata ---------------------------------------------------

    def excursion_delta(self) -> int | None:
        """Max hops beyond the source-destination rectangle (see
        :class:`RoutingContract`).  Minimal routers return 0; nonminimal
        routers must override (a bounded delta, or None for unbounded)."""
        return 0 if self.minimal else None

    def permutation_step_bound(self, n: int) -> int | None:
        """Proven worst-case steps for any permutation on an ``n x n`` mesh.

        None (the default) means the paper proves no upper bound for this
        algorithm; routers with a theorem behind them override this.
        """
        return None

    def contract(self, n: int) -> RoutingContract:
        """This algorithm's claims, instantiated for an ``n x n`` mesh."""
        return RoutingContract(
            name=self.name,
            minimal=self.minimal,
            destination_exchangeable=self.destination_exchangeable,
            excursion_delta=self.excursion_delta(),
            queue_kind=self.queue_spec.kind,
            queue_capacity=self.queue_spec.capacity,
            step_bound=self.permutation_step_bound(n),
            dimension_ordered=self.dimension_ordered,
        )

    def enumerate_transitions(
        self, topology: "Topology", k: int
    ) -> "TransitionModel | None":
        """The symbolic queue-transition model this algorithm can exhibit.

        Used by the static analyzers (:mod:`repro.analysis.static_check`):
        the returned :class:`~repro.mesh.transitions.TransitionModel`
        overapproximates every turn the outqueue policy can schedule, marks
        which queues the inqueue policy may refuse, and declares any
        per-step drain guarantees the scheduling discipline proves.  The
        default derives the turn set from the :class:`RoutingContract`
        (dimension order > minimal > unrestricted), conservatively marks
        *every* queue as blockable, and claims no drain guarantees.

        Routers with provably always-accepting queues (Theorem 15's N/S
        queues, bufferless deflection) override this to shrink
        ``blocking_keys`` and declare ``drain_keys`` / ``drain_all_keys``
        so the queue-bound certifier can bound their occupancy.  Return
        None when no sound static model exists for the algorithm; the
        analyzers then report ``UNKNOWN``.
        """
        from repro.mesh.transitions import model_from_contract

        contract = self.contract(max(topology.width, topology.height))
        return model_from_contract(
            queue_kind=contract.queue_kind,
            minimal=contract.minimal,
            dimension_ordered=contract.dimension_ordered,
            note=f"{contract.name}: contract-derived",
            directions=topology.directions,
        )

    # -- initialization ------------------------------------------------------

    def initial_node_state(
        self, node: tuple[int, int], originating: Sequence[PacketView]
    ) -> Any:
        """Node state at step 0 (default: none)."""
        return None

    def initial_packet_state(self, view: PacketView) -> Any:
        """Packet state at step 0 (default: none).

        ``view.state`` is None at this point; the returned value becomes the
        packet's state.
        """
        return None

    # -- the per-step policies -------------------------------------------------

    #: Declares that :meth:`outqueue_from_views` is implemented and returns
    #: exactly what :meth:`outqueue` would for the same node contents.
    #: Purely an optimization contract (like ``accepts_all_into_empty``):
    #: when True, the simulator may call the views-based variant directly
    #: and skip building a :class:`NodeContext` for the scheduling phase.
    fast_outqueue: ClassVar[bool] = False

    @abc.abstractmethod
    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        """Choose at most one packet per outlink to attempt to transmit.

        Returns a mapping from outlink direction to the view of the packet
        scheduled on it.  A packet may be scheduled on at most one outlink.
        """

    def outqueue_from_views(
        self,
        node: tuple[int, int],
        state: Any,
        out_directions: tuple[Direction, ...],
        time: int,
        views_by_key: Mapping[Any, Sequence[PacketView]],
    ) -> Mapping[Direction, PacketView]:
        """Context-free variant of :meth:`outqueue` (opt-in fast path).

        ``views_by_key`` maps each nonempty queue key to its views in
        arrival (FIFO) order, in the same key order ``ctx.queue_keys``
        would yield.  Everything passed here is information a
        :class:`NodeContext` already exposes, so the visibility discipline
        is unchanged.  Implementations must be observationally equivalent
        to :meth:`outqueue` and set ``fast_outqueue = True``; the simulator
        may then invoke either entry point.
        """
        raise NotImplementedError(
            f"{self.name}: fast_outqueue declared without outqueue_from_views"
        )

    @abc.abstractmethod
    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        """Choose which scheduled packets to accept.

        ``offers`` is ordered by inlink direction (N, E, S, W).  Returns the
        accepted subset.  The policy must guarantee no queue overflows after
        this step's departures and arrivals are applied; the simulator
        verifies and raises :class:`~repro.mesh.errors.QueueOverflowError`
        otherwise.
        """

    # -- state transitions ------------------------------------------------------

    def after_step(self, ctx: NodeContext) -> Any:
        """Compute the node's state for the next step; may update packet states.

        Called after transmission with the node's end-of-step contents.  The
        default keeps the state unchanged.
        """
        return ctx.state
