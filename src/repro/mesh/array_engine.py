"""The vectorized array-backend step engine.

:class:`ArraySimulator` re-implements the reference
:class:`~repro.mesh.simulator.Simulator` step loop over the
structure-of-arrays state of :mod:`repro.mesh.array_state`: each phase
(outqueue selection, inqueue acceptance, transmit) is a handful of batched
numpy operations instead of a Python loop over nodes and packets.  It is
**bit-identical** to the reference engine -- same configurations after
every step, same counters, same ``RunResult`` -- which the equivalence
harness (:mod:`repro.verify.engine_equivalence`), the golden step tables,
and the hypothesis lockstep suite enforce.

Only the *ported* routers run here -- bounded dimension-order,
central-queue dimension-order, hot-potato, greedy-adaptive,
farthest-first, and credit-adaptive, each as a :class:`RouterKernel` --
and only on plain ``Mesh``/``Torus`` topologies without interceptors.
``Simulator(engine="array")`` dispatches through
:func:`resolve_array_class` and silently falls back to the reference
engine for everything else, so callers can request the array engine
unconditionally.  Fault plans (:mod:`repro.faults.plan`) attach through
:meth:`ArraySimulator.attach_fault_plan` and run as a vectorized
per-step availability mask over the scheduled moves, evaluated from the
same pure counter-hash draws as the reference engine's ``link_filter``
path -- so faulty runs are byte-identical across engines too.

The compatibility surface (``queues``, ``configuration()``,
``iter_packets`` and the observer hooks) is provided by materializing
Packet objects on demand; the hot path never touches them, so a run
without observers stays fully vectorized.  See docs/PERFORMANCE.md for
the memory layout, the porting checklist, and the equivalence-gate
protocol.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.mesh.array_state import (
    DIR_E,
    DIR_N,
    DIR_S,
    DIR_W,
    LOWBIT_DIR,
    OPP,
    ArrayState,
    GridGeometry,
)
from repro.mesh.directions import DIRECTIONS, Direction
from repro.mesh.errors import QueueOverflowError
from repro.mesh.packet import Packet
from repro.mesh.queues import CENTRAL
from repro.mesh.simulator import ScheduledMove, Simulator, StepRecord
from repro.mesh.topology import Mesh, Torus, Topology

_EMPTY = np.empty(0, dtype=np.int64)

#: ``NodeContext.packets`` iterates queues in repr-sorted key order -- for
#: the four compass directions that is E, N, S, W -- so kernels that mirror
#: it rank queue keys through this table (index = ``Direction`` value).
_REPR_RANK = np.array([1, 0, 2, 3], dtype=np.int64)

#: Sentinel cost larger than any queue occupancy (credit steering).
_BIG = np.int64(1) << 60


class RouterKernel:
    """Vectorized scheduling policy of one ported router.

    A kernel supplies the router-specific phases over the shared
    :class:`ArrayState`: ``schedule`` (phase (a): at most one packet per
    outlink), ``accept`` (phase (c): which scheduled moves enter their
    target), and ``after_step`` (phase (e): packet-state updates).  The
    engine owns everything else -- injection, transmit, counters, maxima.

    ``num_keys`` (1 central / 4 incoming) and ``track_age`` (packet state
    is an integer age) declare the queue regime.  The engine reads both
    off the *constructed* kernel, so routers that support either queue
    kind set ``num_keys`` per instance in ``__init__``.
    """

    num_keys = 1
    track_age = False

    def __init__(self, engine: "ArraySimulator") -> None:
        self.engine = engine

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Phase (a): return (packet slots, source flat ids, directions)."""
        raise NotImplementedError

    def accept(
        self,
        pkt: np.ndarray,
        src: np.ndarray,
        dirs: np.ndarray,
        tgt: np.ndarray,
        came: np.ndarray,
    ) -> np.ndarray:
        """Phase (c): boolean acceptance mask over the scheduled moves."""
        raise NotImplementedError

    def after_step(self) -> None:
        """Phase (e): packet-state updates from end-of-step contents."""


class BoundedDorKernel(RouterKernel):
    """Theorem 15 bounded dimension-order (four incoming queues of size k).

    Straight-continuing packets (sitting in the queue opposite the
    outlink) have priority per outlink, FIFO within a class; the fallback
    scans the node's *other* queues in queue-creation order -- the
    reference engine's dict insertion order, mirrored by
    ``ArrayState.key_rank``.  N/S inqueues always accept; E/W accept only
    below capacity.
    """

    num_keys = 4

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        st = self.engine._state
        dx, dy = st.displacement(act)
        desired = st.desired_direction(dx, dy)
        # Packed slot (node << 4 | queue key << 2 | desired direction); the
        # FIFO-first packet per slot is the only candidate per slot.
        slot = (st.posf[act] << 4) | (st.qkey[act] << 2) | desired
        order = np.lexsort((st.qseq[act], slot))
        slot_s = slot[order]
        first = np.empty(len(slot_s), dtype=bool)
        first[0] = True
        first[1:] = slot_s[1:] != slot_s[:-1]
        cand = act[order[first]]
        cslot = slot_s[first]
        cnode = cslot >> 4
        ckey = (cslot >> 2) & 3
        cdir = cslot & 3
        # Straight candidates (key is the opposite inlink of the outlink)
        # outrank every fallback; fallbacks tie-break by queue-creation
        # order, exactly the reference outqueue's dict-order scan.
        straight = ckey == OPP[cdir]
        prio = np.where(straight, -1, st.key_rank[cnode, ckey])
        nd = (cnode << 2) | cdir
        order2 = np.lexsort((prio, nd))
        nd_s = nd[order2]
        first2 = np.empty(len(nd_s), dtype=bool)
        first2[0] = True
        first2[1:] = nd_s[1:] != nd_s[:-1]
        sel = order2[first2]
        return cand[sel], cnode[sel], cdir[sel]

    def accept(self, pkt, src, dirs, tgt, came):
        st = self.engine._state
        vertical = (came == Direction.N.value) | (came == Direction.S.value)
        return vertical | (st.occ[tgt, came] < self.engine.spec.capacity)


class CentralDorKernel(RouterKernel):
    """Dimension-order with one central queue: FIFO out, rotating accept."""

    num_keys = 1

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        st = self.engine._state
        dx, dy = st.displacement(act)
        desired = st.desired_direction(dx, dy)
        slot = (st.posf[act] << 2) | desired
        order = np.lexsort((st.qseq[act], slot))
        slot_s = slot[order]
        first = np.empty(len(slot_s), dtype=bool)
        first[0] = True
        first[1:] = slot_s[1:] != slot_s[:-1]
        cand = act[order[first]]
        cslot = slot_s[first]
        return cand, cslot >> 2, cslot & 3

    def accept(self, pkt, src, dirs, tgt, came):
        return _rotating_central_accept(self.engine, tgt, came)


def _rotating_central_accept(
    engine: "ArraySimulator", tgt: np.ndarray, came: np.ndarray
) -> np.ndarray:
    """``accept_up_to_central_space``, batched: per target, the first
    ``capacity - occupancy`` offers in rotating round-robin priority
    (``rotation_order(time)``) are accepted."""
    st = engine._state
    free = engine.spec.capacity - st.occ[tgt, 0]
    prio = (came - (engine.time & 3)) & 3
    order = np.lexsort((prio, tgt))
    tgt_s = tgt[order]
    newg = np.empty(len(tgt_s), dtype=bool)
    newg[0] = True
    newg[1:] = tgt_s[1:] != tgt_s[:-1]
    starts = np.flatnonzero(newg)
    grp = np.cumsum(newg) - 1
    posg = np.arange(len(tgt_s), dtype=np.int64) - starts[grp]
    acc = np.empty(len(tgt_s), dtype=bool)
    acc[order] = posg < free[order]
    return acc


class HotPotatoKernel(RouterKernel):
    """Age-based deflection: oldest first, profitable else rotating free link."""

    num_keys = 1
    track_age = True

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        engine = self.engine
        st = engine._state
        node = st.posf[act]
        # Rank within each node by (-age, pid): the reference outqueue's
        # processing order.  Ranks are 0..(packets at node - 1).
        order = np.lexsort((st.pids[act], -st.age[act], node))
        slots = act[order]
        snode = node[order]
        newg = np.empty(len(snode), dtype=bool)
        newg[0] = True
        newg[1:] = snode[1:] != snode[:-1]
        starts = np.flatnonzero(newg)
        grp = np.cumsum(newg) - 1
        rank = np.arange(len(snode), dtype=np.int64) - starts[grp]
        un = snode[newg]
        pmask = st.profitable_mask(slots)
        taken = np.zeros(len(un), dtype=np.int64)
        cdir = np.full(len(slots), -1, dtype=np.int64)
        max_rank = int(rank.max())
        # Pass 1: in rank order, each packet takes its lowest free
        # profitable outlink (sorted(profitable) is ascending direction
        # value, i.e. the lowest set bit of the 4-bit mask).
        for r in range(max_rank + 1):
            idx = np.flatnonzero(rank == r)
            if len(idx) == 0:
                break  # ranks are contiguous per node
            nn = grp[idx]
            free = pmask[idx] & ~taken[nn]
            d = LOWBIT_DIR[free & -free]
            placed = d >= 0
            cdir[idx[placed]] = d[placed]
            taken[nn[placed]] |= 1 << d[placed]
        # Pass 2: deflection, still in rank order, onto the first free
        # outlink in rotation_order(time) preference.
        out = st.geom.out_mask[un]
        pref = engine.time & 3
        for r in range(max_rank + 1):
            idx = np.flatnonzero((rank == r) & (cdir < 0))
            if len(idx) == 0:
                continue
            nn = grp[idx]
            free = out[nn] & ~taken[nn]
            # Rotate the free mask so bit j means direction (j + pref) % 4;
            # the lowest set bit is then the first free preferred direction.
            rot = ((free >> pref) | (free << (4 - pref))) & 15
            dd = LOWBIT_DIR[rot & -rot]
            placed = dd >= 0
            d = (dd[placed] + pref) & 3
            cdir[idx[placed]] = d
            taken[nn[placed]] |= 1 << d
        sel = cdir >= 0
        return slots[sel], snode[sel], cdir[sel]

    def accept(self, pkt, src, dirs, tgt, came):
        return np.ones(len(pkt), dtype=bool)  # bufferless: accept everything

    def after_step(self) -> None:
        engine = self.engine
        act = engine._act
        if act.size:
            engine._state.age[act] += 1  # everyone in the network ages


class GreedyAdaptiveKernel(RouterKernel):
    """Greedy adaptive: packets claim free profitable outlinks in order.

    Mirrors ``GreedyAdaptiveRouter.outqueue``: packets are processed in
    ``ctx.packets`` order (queues in repr-sorted key order, FIFO within)
    and each claims the first unclaimed profitable outlink in
    ``rotation_order(time)`` preference.  Central accept is the rotating
    accept-up-to-space; incoming accepts below per-queue capacity.
    """

    def __init__(self, engine: "ArraySimulator") -> None:
        super().__init__(engine)
        self.num_keys = 1 if engine._central else 4

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        engine = self.engine
        st = engine._state
        node = st.posf[act]
        if self.num_keys == 1:
            order = np.lexsort((st.qseq[act], node))
        else:
            order = np.lexsort((st.qseq[act], _REPR_RANK[st.qkey[act]], node))
        slots = act[order]
        snode = node[order]
        newg = np.empty(len(snode), dtype=bool)
        newg[0] = True
        newg[1:] = snode[1:] != snode[:-1]
        starts = np.flatnonzero(newg)
        grp = np.cumsum(newg) - 1
        rank = np.arange(len(snode), dtype=np.int64) - starts[grp]
        pmask = st.profitable_mask(slots)
        taken = np.zeros(int(newg.sum()), dtype=np.int64)
        cdir = np.full(len(slots), -1, dtype=np.int64)
        pref = engine.time & 3
        for r in range(int(rank.max()) + 1):
            idx = np.flatnonzero(rank == r)
            if len(idx) == 0:
                break  # ranks are contiguous per node
            nn = grp[idx]
            free = pmask[idx] & ~taken[nn]
            # Rotate so bit j means direction (j + pref) % 4; the lowest
            # set bit is then the first free direction in preference order.
            rot = ((free >> pref) | (free << (4 - pref))) & 15
            dd = LOWBIT_DIR[rot & -rot]
            placed = dd >= 0
            d = (dd[placed] + pref) & 3
            cdir[idx[placed]] = d
            taken[nn[placed]] |= 1 << d
        sel = cdir >= 0
        return slots[sel], snode[sel], cdir[sel]

    def accept(self, pkt, src, dirs, tgt, came):
        engine = self.engine
        if self.num_keys == 1:
            return _rotating_central_accept(engine, tgt, came)
        return engine._state.occ[tgt, came] < engine.spec.capacity


class FarthestFirstKernel(RouterKernel):
    """Farthest-first dimension-order (the Section 5 E4 victim).

    Every packet's sole candidate outlink is its dimension-order desired
    direction; per (node, direction) the packet with the most remaining
    distance in that dimension wins.  Incoming regime: straight-through
    priority -- any candidate from the opposite inlink queue beats every
    turner, and turners rank by the concatenation order of the node's
    other queues (queue-creation order, FIFO within), so the full rank is
    (straight class, -distance, key creation rank, FIFO).  Central
    regime: FIFO index breaks distance ties.  Inqueue: delivering offers
    always accept; incoming N/S always accept; otherwise space-gated
    (central sorts transit offers farthest-first against free space).
    """

    def __init__(self, engine: "ArraySimulator") -> None:
        super().__init__(engine)
        self.num_keys = 1 if engine._central else 4

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        st = self.engine._state
        node = st.posf[act]
        dx, dy = st.displacement(act)
        desired = st.desired_direction(dx, dy)
        # E/W are the odd direction values, so parity selects the axis.
        dist = np.where((desired & 1) == 1, np.abs(dx), np.abs(dy))
        group = (node << 2) | desired
        if self.num_keys == 1:
            order = np.lexsort((st.qseq[act], -dist, group))
        else:
            krank = st.key_rank[node, st.qkey[act]]
            notstraight = (st.qkey[act] != OPP[desired]).astype(np.int64)
            order = np.lexsort((st.qseq[act], krank, -dist, notstraight, group))
        group_s = group[order]
        first = np.empty(len(group_s), dtype=bool)
        first[0] = True
        first[1:] = group_s[1:] != group_s[:-1]
        sel = order[first]
        return act[sel], node[sel], desired[sel]

    def accept(self, pkt, src, dirs, tgt, came):
        engine = self.engine
        st = engine._state
        capacity = engine.spec.capacity
        delivering = tgt == st.destf[pkt]
        if self.num_keys == 4:
            vertical = (came == DIR_N) | (came == DIR_S)
            return delivering | vertical | (st.occ[tgt, came] < capacity)
        # Central: delivering offers consume no space and always accept;
        # transit offers rank farthest-first (total remaining distance,
        # inlink value tie) against beginning-of-step free space.
        acc = delivering.copy()
        transit = np.flatnonzero(~delivering)
        if len(transit):
            dx, dy = st.displacement(pkt[transit])
            totrem = np.abs(dx) + np.abs(dy)
            ttgt = tgt[transit]
            order = np.lexsort((came[transit], -totrem, ttgt))
            tgt_s = ttgt[order]
            newg = np.empty(len(tgt_s), dtype=bool)
            newg[0] = True
            newg[1:] = tgt_s[1:] != tgt_s[:-1]
            starts = np.flatnonzero(newg)
            grp = np.cumsum(newg) - 1
            posg = np.arange(len(tgt_s), dtype=np.int64) - starts[grp]
            free = capacity - st.occ[ttgt, 0]
            acc[transit[order]] = posg < free[order]
        return acc


class CreditAdaptiveKernel(RouterKernel):
    """Credit-steered minimal adaptive with a dimension-ordered escape axis.

    Phase 1 enforces the escape-channel drain invariant: the FIFO head of
    each vertical (escape-axis) queue goes straight when that move is
    profitable.  Phase 2 walks the remaining packets in (queue value,
    FIFO) order; each takes the unclaimed allowed direction with the
    least downstream occupancy -- the credit probe readback, which is
    ``occ[neighbor, opposite(direction)]`` at start of phase (a) -- with
    ties to the smaller direction value.  Negative-first adaptivity: a
    packet with any profitable horizontal direction is restricted to W
    when W is profitable, else E; vertical-only packets use their
    profitable vertical directions.  Incoming-only; escape (vertical)
    inqueues always accept, adaptive queues accept below capacity.
    """

    num_keys = 4

    def schedule(self, act: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        engine = self.engine
        st = engine._state
        node = st.posf[act]
        qkey = st.qkey[act]
        order = np.lexsort((st.qseq[act], qkey, node))
        slots = act[order]
        snode = node[order]
        skey = qkey[order]
        newg = np.empty(len(snode), dtype=bool)
        newg[0] = True
        newg[1:] = snode[1:] != snode[:-1]
        starts = np.flatnonzero(newg)
        grp = np.cumsum(newg) - 1
        rank = np.arange(len(snode), dtype=np.int64) - starts[grp]
        pmask = st.profitable_mask(slots)
        taken = np.zeros(int(newg.sum()), dtype=np.int64)
        cdir = np.full(len(slots), -1, dtype=np.int64)
        done = np.zeros(len(slots), dtype=bool)
        # Phase 1 (escape drain): the FIFO head of each vertical queue
        # goes straight when profitable.  N-heads claim S and S-heads
        # claim N, so the two sweeps can never collide.
        for k in (DIR_N, DIR_S):
            straight = int(OPP[k])
            idxk = np.flatnonzero(skey == k)
            if len(idxk) == 0:
                continue
            nodek = snode[idxk]
            firstk = np.empty(len(idxk), dtype=bool)
            firstk[0] = True
            firstk[1:] = nodek[1:] != nodek[:-1]
            heads = idxk[firstk]
            ok = heads[((pmask[heads] >> straight) & 1) == 1]
            cdir[ok] = straight
            done[ok] = True
            taken[grp[ok]] |= 1 << straight
        # Phase 2 (credit steering): negative-first allowed set per packet.
        wbit = (pmask >> DIR_W) & 1
        ebit = (pmask >> DIR_E) & 1
        amask = np.where(
            wbit == 1,
            1 << DIR_W,
            np.where(ebit == 1, 1 << DIR_E, pmask & ((1 << DIR_N) | (1 << DIR_S))),
        )
        nbr = st.geom.nbr_flat
        occ = st.occ
        for r in range(int(rank.max()) + 1):
            idx = np.flatnonzero((rank == r) & ~done)
            if len(idx) == 0:
                continue  # phase-1 heads may hollow out a rank; keep going
            nn = grp[idx]
            free = amask[idx] & ~taken[nn]
            nodes = snode[idx]
            costs = np.full((len(idx), 4), _BIG, dtype=np.int64)
            for d in range(4):
                has = ((free >> d) & 1) == 1
                if not bool(has.any()):
                    continue
                tgtd = nbr[nodes[has], d]
                costs[has, d] = occ[tgtd, OPP[d]]
            pick = np.argmin(costs, axis=1)  # ties -> smaller direction
            placed = costs[np.arange(len(idx), dtype=np.int64), pick] < _BIG
            d = pick[placed]
            cdir[idx[placed]] = d
            taken[nn[placed]] |= 1 << d
        sel = cdir >= 0
        return slots[sel], snode[sel], cdir[sel]

    def accept(self, pkt, src, dirs, tgt, came):
        st = self.engine._state
        vertical = (came == DIR_N) | (came == DIR_S)
        return vertical | (st.occ[tgt, came] < self.engine.spec.capacity)


class ArraySimulator(Simulator):
    """Array-backend drop-in for :class:`~repro.mesh.simulator.Simulator`.

    Construct through ``Simulator(..., engine="array")`` -- the dispatch
    in ``Simulator.__new__`` instantiates this class when the router is
    ported and the run shape is supported, and silently falls back to the
    reference engine otherwise.  Unsupported at construction time:
    interceptors and link-load recording (the factory never routes those
    here).  Unsupported capabilities fail fast with a message naming the
    fallback: arbitrary ``link_filter`` assignment raises at assignment
    time (fault plans attach through :meth:`attach_fault_plan` instead),
    and packet drops raise at the call.

    The observable surface matches the reference engine exactly:
    ``queues`` materializes Packet objects lazily (cached per step), so
    inherited ``configuration()``/``iter_packets``/``result()`` and the
    verify oracles work unchanged; :meth:`step` returns the transmitted
    ``ScheduledMove`` list only when post-step hooks are attached (it is
    empty otherwise -- building it would put a Python loop back on the
    hot path).
    """

    engine_name = "array"

    def __init__(
        self,
        topology: Topology,
        algorithm: Any,
        packets: Iterable[Packet],
        *,
        interceptor: Any = None,
        validate: bool = True,
        record_series: bool = False,
        record_link_loads: bool = False,
        engine: str = "array",
    ) -> None:
        if interceptor is not None:
            raise ValueError("array engine does not support interceptors")
        if record_link_loads:
            raise ValueError("array engine does not support link-load recording")
        kernel_cls = _KERNELS.get(type(algorithm))
        if kernel_cls is None:
            raise ValueError(
                f"router {algorithm.name!r} is not ported to the array engine"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.interceptor = None
        self.validate = validate
        self.record_series = record_series
        self.record_link_loads = False
        self.link_loads: dict = {}
        self._fault_plan: Any = None
        self._plan_filter: Any = None
        self.spec = algorithm.queue_spec
        self.time = 0
        self.node_states: dict = {}
        self.delivery_times: dict[int, int] = {}
        self.dropped: dict[int, int] = {}
        self.rejected: dict[int, int] = {}
        self.total_packets = 0
        self.total_moves = 0
        self.max_queue_len = 0
        self.max_node_load = 0
        self.scheduled_moves = 0
        self.refused_moves = 0
        self.injected_packets = 0
        self.instrument: Any = None
        self.series: list[StepRecord] = []
        self._pending: list[Packet] = []
        self._pending_dirty = False
        self._in_flight = 0
        self.pre_step_hooks: list = []
        self.post_step_hooks: list = []
        self._central = self.spec.kind == "central"
        self._height = topology.height
        self.spec.bind_directions(topology.directions)
        algorithm.bind_topology(topology)
        # The kernel is constructed first because queue-kind-dependent
        # kernels pick ``num_keys`` per instance.
        self._kernel = kernel_cls(self)
        self._state = ArrayState(
            GridGeometry(topology), self._kernel.num_keys, self._kernel.track_age
        )
        if algorithm.uses_credit:
            algorithm.attach_credit_probe(self._downstream_occupancy)
        self._packet_of: list[Packet] = []  # slot -> Packet
        self._slot_of: dict[int, int] = {}  # pid -> slot (in-network only)
        self._known_pids: set[int] = set()
        self._act = _EMPTY  # slots currently in the network
        self._seq = 0
        self._mat: dict | None = None  # cached materialized queues
        self._load_packets(packets)

    # -- construction ------------------------------------------------------

    def _flat(self, node: tuple[int, int]) -> int:
        return node[0] * self._height + node[1]

    def _node_tuple(self, flat: int) -> tuple[int, int]:
        return (flat // self._height, flat % self._height)

    def _key_object(self, kidx: int) -> Any:
        return CENTRAL if self._central else DIRECTIONS[kidx]

    def _load_packets(self, packets: Iterable[Packet]) -> None:
        topology = self.topology
        st = self._state
        spec = self.spec
        seen: set[int] = set()
        originating: dict[tuple[int, int], list[Packet]] = {}
        for p in packets:
            if p.pid in seen:
                raise ValueError(f"duplicate packet id {p.pid}")
            seen.add(p.pid)
            if not topology.contains(p.source) or not topology.contains(p.dest):
                raise ValueError(f"packet {p.pid} endpoints outside topology")
            self.total_packets += 1
            if p.injection_time > 0:
                self._pending.append(p)
                continue
            p.pos = p.source
            if p.source == p.dest:
                self.delivery_times[p.pid] = 0
                continue
            originating.setdefault(p.source, []).append(p)
        self._known_pids = seen
        self._pending.sort(key=lambda p: (p.injection_time, p.pid))
        act: list[int] = []
        max_pid = -1
        for node, plist in originating.items():
            plist.sort(key=lambda p: p.pid)
            flat = self._flat(node)
            for p in plist:
                profitable = topology.profitable_directions(node, p.dest)
                if st.track_age:
                    p.state = 0
                key = spec.initial_key(profitable)
                kidx = 0 if self._central else int(key)
                # Load-time FIFO sequence = pid: per-queue load order is
                # pid-ascending, matching the reference append order.
                act.append(self._admit(p, flat, kidx, p.pid))
                if p.pid > max_pid:
                    max_pid = p.pid
            if self.validate:
                self._check_node_capacity(flat, node)
            self._note_flat_load(flat)
        self._act = np.array(act, dtype=np.int64) if act else _EMPTY
        self._seq = max_pid + 1

    def _admit(self, p: Packet, flat: int, kidx: int, qseq: int) -> int:
        """Place one packet into (flat, kidx) with sequence ``qseq``."""
        st = self._state
        slot = st.new_slot(p.pid, flat, self._flat(p.dest), kidx, qseq)
        self._packet_of.append(p)
        self._slot_of[p.pid] = slot
        st.occ[flat, kidx] += 1
        st.load[flat] += 1
        self._in_flight += 1
        if st.key_rank is not None and st.key_rank[flat, kidx] < 0:
            # First packet ever queued under this key since the node last
            # emptied: it takes the next creation rank (the reference
            # engine's dict key insertion order).
            st.key_rank[flat, kidx] = st.key_count[flat]
            st.key_count[flat] += 1
        return slot

    def _check_node_capacity(self, flat: int, node: tuple[int, int]) -> None:
        st = self._state
        capacity = self.spec.capacity
        over = [k for k in range(st.num_keys) if st.occ[flat, k] > capacity]
        if over:
            # Report the key the reference engine would: first over-capacity
            # queue in creation order.
            if st.key_rank is not None:
                over.sort(key=lambda k: int(st.key_rank[flat, k]))
            k = over[0]
            raise QueueOverflowError(
                self.algorithm.name,
                node,
                self._key_object(k),
                int(st.occ[flat, k]),
                capacity,
            )

    def _note_flat_load(self, flat: int) -> None:
        st = self._state
        q = int(st.occ[flat].max())
        if q > self.max_queue_len:
            self.max_queue_len = q
        load = int(st.load[flat])
        if load > self.max_node_load:
            self.max_node_load = load

    # -- compatibility surface ---------------------------------------------

    @property
    def queues(self) -> dict:
        """Materialized node -> key -> packet-list view of the array state.

        Built lazily and cached until the arrays next change; mutating the
        returned structure does not affect the simulation.
        """
        mat = self._mat
        if mat is None:
            self._mat = mat = self._materialize()
        return mat

    def _materialize(self) -> dict:
        st = self._state
        act = self._act
        out: dict[tuple[int, int], dict[Any, list[Packet]]] = {}
        if act.size == 0:
            return out
        order = np.lexsort((st.qseq[act], st.qkey[act], st.posf[act]))
        slots = act[order]
        height = self._height
        central = self._central
        packet_of = self._packet_of
        pos_l = st.posf[slots].tolist()
        key_l = st.qkey[slots].tolist()
        age_l = st.age[slots].tolist() if st.track_age else None
        for i, slot in enumerate(slots.tolist()):
            p = packet_of[slot]
            flat = pos_l[i]
            p.pos = (flat // height, flat % height)
            if age_l is not None:
                p.state = age_l[i]
            node_queues = out.get(p.pos)
            if node_queues is None:
                out[p.pos] = node_queues = {}
            key = CENTRAL if central else DIRECTIONS[key_l[i]]
            q = node_queues.get(key)
            if q is None:
                node_queues[key] = [p]
            else:
                q.append(p)
        return out

    def queue_occupancy(self, node: tuple[int, int], key: Any) -> int:
        kidx = 0 if self._central else int(key)
        return int(self._state.occ[self._flat(node), kidx])

    def _downstream_occupancy(self, node: tuple[int, int], direction: Any) -> int:
        """Destination-free credit probe over the array state.

        Parity with the reference simulator's probe: occupancy of the
        queue a packet sent from ``node`` along ``direction`` would land
        in.  The credit kernel reads ``occ`` directly on the hot path;
        this exists so the algorithm object stays introspectable.
        """
        st = self._state
        tgt = int(st.geom.nbr_flat[self._flat(node), int(direction)])
        if tgt < 0:
            return 0
        kidx = 0 if self._central else int(OPP[int(direction)])
        return int(st.occ[tgt, kidx])

    # -- fault plans ---------------------------------------------------------

    @property
    def link_filter(self) -> Any:
        """The scalar equivalent of the attached fault plan (None without).

        The engine itself never calls it -- faults run through the plan's
        vectorized per-step mask in :meth:`step` -- but the readback keeps
        the reference-engine contract for tests and observers.
        """
        return self._plan_filter

    @link_filter.setter
    def link_filter(self, value: Any) -> None:
        if value is not None:
            raise NotImplementedError(
                "array engine does not support arbitrary link filters; "
                "attach a FaultPlan (plan.attach(sim)) for fault support, "
                "or construct with engine='reference'"
            )
        self._fault_plan = None
        self._plan_filter = None

    def attach_fault_plan(self, plan: Any) -> None:
        """Register ``plan`` for the vectorized per-step availability mask.

        The counterpart of the reference engine's scalar ``link_filter``
        installation (see :meth:`repro.faults.plan.FaultPlan.attach`);
        results are byte-identical because the plan's array queries make
        the same pure counter-hash draws.
        """
        self._fault_plan = plan
        self._plan_filter = plan.as_link_filter(self.topology)

    def _check_new_pid(self, packet: Packet) -> None:
        if packet.pid in self._known_pids:
            raise ValueError(f"duplicate packet id {packet.pid}")
        if not self.topology.contains(packet.source) or not self.topology.contains(
            packet.dest
        ):
            raise ValueError(f"packet {packet.pid} endpoints outside topology")

    def inject_packet(self, packet: Packet) -> None:
        """Add a dynamic packet mid-run (same admission rule as load time)."""
        self._check_new_pid(packet)
        self._known_pids.add(packet.pid)
        self.total_packets += 1
        self._pending.append(packet)
        self._pending_dirty = True

    def reject_packet(self, packet: Packet) -> None:
        """Refuse a packet at admission time (open-loop backpressure)."""
        self._check_new_pid(packet)
        self._known_pids.add(packet.pid)
        self.total_packets += 1
        self.rejected[packet.pid] = self.time

    def drop_packet(self, packet: Packet) -> None:
        raise NotImplementedError(
            "array engine does not support packet drops; use engine='reference'"
        )

    def drop_pending(self, pid: int) -> None:
        raise NotImplementedError(
            "array engine does not support packet drops; use engine='reference'"
        )

    # -- the step ----------------------------------------------------------

    def step(self) -> list[ScheduledMove]:
        """Run one synchronous step (the reference phase order, batched)."""
        instr = self.instrument
        if instr is not None:
            instr.begin_step()
        self.time += 1
        # Invalidate the materialized-queue cache up front: even a step
        # with zero accepted moves (every scheduled move refused by a
        # fault plan) advances packet ages in phase (e).
        self._mat = None
        if self.pre_step_hooks:
            for hook in self.pre_step_hooks:
                hook(self)
            if instr is not None:
                instr.mark("hooks")
        if self._pending:
            self._inject_pending()

        # (a) outqueue policies, batched in the kernel.
        act = self._act
        if act.size:
            sched_pkt, sched_src, sched_dir = self._kernel.schedule(act)
        else:
            sched_pkt = sched_src = sched_dir = _EMPTY
        n_scheduled = len(sched_pkt)
        self.scheduled_moves += n_scheduled
        if instr is not None:
            instr.mark("a")

        # (b) no interceptor by construction; minimality holds by kernel
        # construction (desired moves are profitable).  An attached fault
        # plan drops scheduled moves over down links/nodes here, exactly
        # where the reference engine applies its link_filter -- a dropped
        # move counts as a refusal, like a refused offer.
        plan = self._fault_plan
        if plan is not None and n_scheduled:
            t = self.time
            h = self._height
            sx = sched_src // h
            sy = sched_src % h
            keep = plan.link_up_array(sx, sy, sched_dir, t)
            keep &= plan.node_up_array(sx, sy, t)
            # Scheduled moves are profitable, so the target always exists.
            tgt_all = self._state.geom.nbr_flat[sched_src, sched_dir]
            keep &= plan.node_up_array(tgt_all // h, tgt_all % h, t)
            if not bool(keep.all()):
                sched_pkt = sched_pkt[keep]
                sched_src = sched_src[keep]
                sched_dir = sched_dir[keep]
        if instr is not None:
            instr.mark("b")

        # (c) inqueue policies, batched in the kernel.
        if sched_pkt.size:
            tgt = self._state.geom.nbr_flat[sched_src, sched_dir]
            came = OPP[sched_dir]
            acc = self._kernel.accept(sched_pkt, sched_src, sched_dir, tgt, came)
            apkt = sched_pkt[acc]
            asrc = sched_src[acc]
            adir = sched_dir[acc]
            atgt = tgt[acc]
            acame = came[acc]
        else:
            apkt = asrc = adir = atgt = acame = _EMPTY
        self.refused_moves += n_scheduled - len(apkt)
        if instr is not None:
            instr.mark("c")

        # (d) transmit: departures, then arrivals in (target, inlink) order.
        moves = self._transmit(apkt, asrc, adir, atgt, acame)
        if instr is not None:
            instr.mark("d")

        # (e) packet-state updates (reference phase (e) / after_step).
        self._kernel.after_step()
        if instr is not None:
            instr.mark("e")

        if self.record_series:
            self.series.append(
                StepRecord(
                    time=self.time,
                    in_flight=self._in_flight,
                    delivered_total=len(self.delivery_times),
                    moves=len(apkt),
                    max_queue_len=self.max_queue_len,
                )
            )
        if self.post_step_hooks:
            for hook in self.post_step_hooks:
                hook(self, moves)
            if instr is not None:
                instr.mark("hooks")
        if instr is not None:
            instr.end_step()
        return moves

    def _transmit(
        self,
        apkt: np.ndarray,
        asrc: np.ndarray,
        adir: np.ndarray,
        atgt: np.ndarray,
        acame: np.ndarray,
    ) -> list[ScheduledMove]:
        st = self._state
        n_acc = len(apkt)
        self.total_moves += n_acc
        if n_acc == 0:
            return []
        # Arrival order is (target, inlink direction): targets ascending,
        # multi-offer groups by came_from -- the reference accepted_moves
        # order, which fixes FIFO sequence numbers and key creation order.
        order = np.lexsort((acame, atgt))
        apkt = apkt[order]
        asrc = asrc[order]
        adir = adir[order]
        atgt = atgt[order]
        acame = acame[order]
        # Departures first.
        np.subtract.at(st.occ, (asrc, st.qkey[apkt]), 1)
        np.subtract.at(st.load, asrc, 1)
        # Arrivals: split deliveries from survivors.
        delivered = atgt == st.destf[apkt]
        st.posf[apkt] = atgt
        surv = ~delivered
        spkt = apkt[surv]
        stgt = atgt[surv]
        n_surv = len(spkt)
        if n_surv:
            skey = acame[surv] if not self._central else np.zeros(n_surv, dtype=np.int64)
            st.qkey[spkt] = skey
            st.qseq[spkt] = self._seq + np.arange(n_surv, dtype=np.int64)
            self._seq += n_surv
            np.add.at(st.occ, (stgt, skey), 1)
            np.add.at(st.load, stgt, 1)
            qlen = st.occ[stgt, skey]
            max_q = int(qlen.max())
            if max_q > self.max_queue_len:
                self.max_queue_len = max_q
            max_l = int(st.load[stgt].max())
            if max_l > self.max_node_load:
                self.max_node_load = max_l
            if self.validate and max_q > self.spec.capacity:
                i = int(np.argmax(qlen > self.spec.capacity))
                raise QueueOverflowError(
                    self.algorithm.name,
                    self._node_tuple(int(stgt[i])),
                    self._key_object(int(skey[i])),
                    int(qlen[i]),
                    self.spec.capacity,
                )
            if st.key_rank is not None:
                self._record_key_creations(stgt, skey)
        dpkt = apkt[delivered]
        if len(dpkt):
            now = self.time
            delivery_times = self.delivery_times
            slot_of = self._slot_of
            pids_arr = st.pids
            for slot in dpkt.tolist():
                delivery_times[pids_arr[slot]] = now
                slot_of.pop(int(pids_arr[slot]), None)
            self._in_flight -= len(dpkt)
            st.in_net[dpkt] = False
            act = self._act
            self._act = act[st.in_net[act]]
        # Prune bookkeeping: a node that sent and ended the step empty
        # resets its queue-key creation order (the reference engine deletes
        # the node dict, losing key insertion order).
        if st.key_rank is not None:
            sent = np.unique(asrc)
            emptied = sent[st.load[sent] == 0]
            if len(emptied):
                st.key_rank[emptied] = -1
                st.key_count[emptied] = 0
        if not self.post_step_hooks:
            return []
        # Observers attached: materialize real ScheduledMoves (in the same
        # (target, inlink) order the reference engine produces).
        height = self._height
        packet_of = self._packet_of
        moves = []
        for slot, src_f, d, tgt_f in zip(
            apkt.tolist(), asrc.tolist(), adir.tolist(), atgt.tolist()
        ):
            p = packet_of[slot]
            p.pos = (tgt_f // height, tgt_f % height)
            moves.append(
                ScheduledMove(
                    p, (src_f // height, src_f % height), DIRECTIONS[d], p.pos
                )
            )
        return moves

    def _record_key_creations(self, stgt: np.ndarray, skey: np.ndarray) -> None:
        """Assign creation ranks to queue keys first occupied this step.

        ``stgt``/``skey`` are in arrival order; at most one arrival per
        (node, key) in the incoming regime, so each new (node, key) is a
        single creation event, ranked per node in arrival order.
        """
        st = self._state
        is_new = st.key_rank[stgt, skey] < 0
        if not bool(is_new.any()):
            return
        pos = np.flatnonzero(is_new)
        node = stgt[pos]
        key = skey[pos]
        order = np.lexsort((pos, node))
        node_s = node[order]
        key_s = key[order]
        newg = np.empty(len(node_s), dtype=bool)
        newg[0] = True
        newg[1:] = node_s[1:] != node_s[:-1]
        starts = np.flatnonzero(newg)
        grp = np.cumsum(newg) - 1
        rank_in_node = np.arange(len(node_s), dtype=np.int64) - starts[grp]
        st.key_rank[node_s, key_s] = st.key_count[node_s] + rank_in_node
        np.add.at(st.key_count, node_s, 1)

    def _inject_pending(self) -> None:
        if self._pending_dirty:
            self._pending.sort(key=lambda p: (p.injection_time, p.pid))
            self._pending_dirty = False
        st = self._state
        spec = self.spec
        capacity = spec.capacity
        still_pending: list[Packet] = []
        new_slots: list[int] = []
        for p in self._pending:
            if p.injection_time >= self.time:
                still_pending.append(p)
                continue
            if p.source == p.dest:
                self.delivery_times[p.pid] = self.time
                continue
            profitable = self.topology.profitable_directions(p.source, p.dest)
            key = spec.initial_key(profitable)
            kidx = 0 if self._central else int(key)
            flat = self._flat(p.source)
            if st.occ[flat, kidx] >= capacity:
                still_pending.append(p)  # its queue is full; retry next step
                continue
            p.pos = p.source
            if st.track_age:
                p.state = 0
            seq = self._seq
            self._seq = seq + 1
            new_slots.append(self._admit(p, flat, kidx, seq))
            self.injected_packets += 1
            self._note_flat_load(flat)
        self._pending = still_pending
        if new_slots:
            self._mat = None
            self._act = np.concatenate(
                [self._act, np.array(new_slots, dtype=np.int64)]
            )


#: Exact router type -> kernel.  Exact types, not subclasses: a subclass may
#: override policy methods the kernels do not model.
_KERNELS: dict[type, type[RouterKernel]] = {}


def _register_kernels() -> None:
    from repro.routing.adaptive import GreedyAdaptiveRouter
    from repro.routing.bounded_dor import BoundedDimensionOrderRouter
    from repro.routing.credit_adaptive import CreditAdaptiveRouter
    from repro.routing.dimension_order import DimensionOrderRouter
    from repro.routing.farthest_first import FarthestFirstRouter
    from repro.routing.hot_potato import HotPotatoRouter

    _KERNELS[BoundedDimensionOrderRouter] = BoundedDorKernel
    _KERNELS[DimensionOrderRouter] = CentralDorKernel
    _KERNELS[HotPotatoRouter] = HotPotatoKernel
    _KERNELS[GreedyAdaptiveRouter] = GreedyAdaptiveKernel
    _KERNELS[FarthestFirstRouter] = FarthestFirstKernel
    _KERNELS[CreditAdaptiveRouter] = CreditAdaptiveKernel


_register_kernels()


def ported_router_types() -> tuple[type, ...]:
    """The router classes the array engine can run (exact types)."""
    return tuple(_KERNELS)


def resolve_array_class(
    topology: Any, algorithm: Any, kwargs: dict
) -> type[ArraySimulator] | None:
    """The array simulator class when (topology, algorithm, kwargs) is
    supported, else None (caller falls back to the reference engine)."""
    if kwargs.get("interceptor") is not None:
        return None
    if kwargs.get("record_link_loads"):
        return None
    if type(topology) not in (Mesh, Torus):
        return None
    if type(algorithm) not in _KERNELS:
        return None
    return ArraySimulator
