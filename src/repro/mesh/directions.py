"""Compass directions on the mesh.

The paper numbers columns 1..n from west to east and rows 1..n from south to
north (Section 2, "Definitions").  We use 0-indexed coordinates ``(x, y)``
where ``x`` grows eastward and ``y`` grows northward, so moving North adds
``(0, +1)`` and moving East adds ``(+1, 0)``.
"""

from __future__ import annotations

import enum


class Direction(enum.IntEnum):
    """One of the four mesh link directions.

    ``IntEnum`` so directions sort deterministically (N < E < S < W), which
    fixes tie-breaking order everywhere in the simulator.
    """

    N = 0
    E = 1
    S = 2
    W = 3

    @property
    def dx(self) -> int:
        """Change in column index when moving one hop this way."""
        return _DX[self]

    @property
    def dy(self) -> int:
        """Change in row index when moving one hop this way."""
        return _DY[self]

    @property
    def opposite(self) -> "Direction":
        """The reverse direction (N <-> S, E <-> W)."""
        return _OPPOSITE[self]

    @property
    def is_horizontal(self) -> bool:
        return self in (Direction.E, Direction.W)

    @property
    def is_vertical(self) -> bool:
        return self in (Direction.N, Direction.S)

    @property
    def axis(self) -> int:
        """Coordinate axis this direction moves along (x = 0, y = 1).

        Shared with :class:`repro.mesh.ndtopology.Port` so d-dimensional
        code can treat the four 2D directions as ports of a 2-axis grid.
        """
        return _AXIS[self]

    @property
    def sign(self) -> int:
        """+1 for the coordinate-increasing direction, -1 for the other."""
        return _SIGN[self]

    def step(self, node: tuple[int, int]) -> tuple[int, int]:
        """The coordinates one hop from ``node`` in this direction.

        Pure arithmetic; does not check mesh bounds (see
        :meth:`repro.mesh.topology.Topology.neighbor` for that).
        """
        x, y = node
        return (x + _DX[self], y + _DY[self])


_DX = {Direction.N: 0, Direction.E: 1, Direction.S: 0, Direction.W: -1}
_DY = {Direction.N: 1, Direction.E: 0, Direction.S: -1, Direction.W: 0}
_OPPOSITE = {
    Direction.N: Direction.S,
    Direction.S: Direction.N,
    Direction.E: Direction.W,
    Direction.W: Direction.E,
}
_AXIS = {Direction.N: 1, Direction.E: 0, Direction.S: 1, Direction.W: 0}
_SIGN = {Direction.N: 1, Direction.E: 1, Direction.S: -1, Direction.W: -1}

#: ``OPPOSITE[d]`` is the reverse of ``d``, indexed by ``IntEnum`` value.
#: Hot paths use this instead of the :attr:`Direction.opposite` property,
#: whose descriptor-protocol call is measurable in the step loop.
OPPOSITE: tuple[Direction, ...] = (
    Direction.S,
    Direction.W,
    Direction.N,
    Direction.E,
)

#: All four directions in deterministic (N, E, S, W) order.
DIRECTIONS: tuple[Direction, ...] = (
    Direction.N,
    Direction.E,
    Direction.S,
    Direction.W,
)

#: The two horizontal directions.
HORIZONTAL: tuple[Direction, ...] = (Direction.E, Direction.W)

#: The two vertical directions.
VERTICAL: tuple[Direction, ...] = (Direction.N, Direction.S)
