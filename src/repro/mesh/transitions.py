"""Symbolic queue-transition models for static deadlock analysis.

A routing algorithm's dynamic behaviour is driven by packet destinations,
but the *set* of queue-to-queue transitions it can ever perform is decidable
statically from its contract: which turns its path discipline permits, and
which queues its inqueue policy may refuse.  A :class:`TransitionModel`
captures exactly that, and :meth:`repro.mesh.interfaces.RoutingAlgorithm.
enumerate_transitions` produces one per (router, topology, k).

The channel-dependency-graph analyzer (:mod:`repro.analysis.static_check`)
consumes these models: a packet occupying queue ``q`` of node ``v`` may
request queue ``q'`` of a neighbour ``w`` iff the model permits the turn,
and a deadlock cycle can only thread through queues whose inqueue policy
may refuse an offer (``blocking_keys``).  Queues that always accept -- the
North/South queues of the Theorem 15 router, or every queue of a bufferless
deflection router -- can never be waited on forever, so they are excluded
from the wait-for graph.

Conventions.  A packet travelling in direction ``t`` arrives on the inlink
from ``t.opposite`` and (in the incoming-queue regime) is stored under the
queue key ``t.opposite``; the default injection rule of
:func:`repro.mesh.queues.default_incoming_initial_key` places injected
packets in the queue of the inlink they *would* have arrived on, so
injected packets are covered by the same travel-direction analysis.  A turn
is a pair ``(travel_in, travel_out)`` where ``travel_in is None`` stands
for a freshly injected packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.directions import DIRECTIONS, HORIZONTAL, VERTICAL, Direction
from repro.mesh.queues import CENTRAL, KIND_CENTRAL, KIND_INCOMING

#: A queue key: the central-queue sentinel or an incoming direction.
QueueKey = Direction | str

#: ``(travel_in, travel_out)``; ``travel_in`` None means freshly injected.
Turn = tuple[Direction | None, Direction]

#: Drain-guarantee strengths a model may declare for always-accepting
#: queues (consumed by the static queue-bound certifier,
#: :mod:`repro.analysis.static_check.bounds`):
#: ``DRAIN_ONE`` -- at least one occupant departs every step the queue is
#: nonempty (Theorem 15's N/S invariant); ``DRAIN_ALL`` -- every occupant
#: departs every step (bufferless deflection).
DRAIN_ONE = "one"
DRAIN_ALL = "all"


@dataclass(frozen=True)
class TransitionModel:
    """Everything the static analyzers need to know about one router.

    Attributes:
        queue_kind: ``"central"`` or ``"incoming"`` (mirrors the
            :class:`~repro.mesh.queues.QueueSpec`).
        turns: Every ``(travel_in, travel_out)`` pair the router's outqueue
            policy can ever produce, over all destinations and states.
        blocking_keys: Queue keys whose inqueue policy may *refuse* an
            offer.  Only these queues can participate in a deadlock cycle.
        drain_keys: Always-accepting queue keys guaranteed to transmit at
            least one occupant every step they are nonempty
            (:data:`DRAIN_ONE`).  This is how the Theorem 15 proof
            invariant -- a nonempty N/S queue ejects every step -- reaches
            the queue-bound certifier: without a drain guarantee an
            always-accepting queue has no static occupancy bound at all.
        drain_all_keys: Always-accepting queue keys whose *every* occupant
            departs each step (:data:`DRAIN_ALL`, bufferless deflection).
        note: Free-text provenance (which argument produced the model).

    Drain guarantees are claims the certifier re-validates structurally
    (every onward target of a draining queue must itself always accept);
    declaring a drain guarantee on a blockable key is contradictory and
    rejected at construction.
    """

    queue_kind: str
    turns: frozenset[tuple[Direction | None, Direction]]
    blocking_keys: frozenset[object]
    note: str = ""
    drain_keys: frozenset[object] = frozenset()
    drain_all_keys: frozenset[object] = frozenset()

    def __post_init__(self) -> None:
        claimed = self.drain_keys | self.drain_all_keys
        contradictory = claimed & self.blocking_keys
        if contradictory:
            raise ValueError(
                "a queue cannot both refuse offers and guarantee a drain: "
                f"{sorted(str(key) for key in contradictory)}"
            )
        if self.drain_keys & self.drain_all_keys:
            raise ValueError(
                "a key cannot carry both DRAIN_ONE and DRAIN_ALL guarantees"
            )

    def drain_for(self, key: object) -> str | None:
        """The declared drain guarantee for ``key`` (None = no guarantee)."""
        if key in self.drain_all_keys:
            return DRAIN_ALL
        if key in self.drain_keys:
            return DRAIN_ONE
        return None

    def outs_for(self, travel_in: Direction | None) -> tuple[Direction, ...]:
        """Travel directions a packet that arrived travelling ``travel_in``
        (None = injected) may depart in, in deterministic value order --
        (N, E, S, W) in 2D, port order on d-dimensional topologies."""
        outs = {out for t_in, out in self.turns if t_in == travel_in}
        return tuple(sorted(outs))

    @property
    def never_blocks(self) -> bool:
        """True when no queue can refuse (e.g. bufferless deflection)."""
        return not self.blocking_keys


def _dimension_order_turns(
    directions: tuple[Direction, ...] = DIRECTIONS,
) -> frozenset[tuple[Direction | None, Direction]]:
    """Axis-ordered turns: a packet may continue straight or turn onto any
    strictly higher axis, never back to a lower one.  In 2D this is exactly
    the XY discipline of Sections 1.1 and 2 (horizontal may continue or
    turn vertical; vertical never turns back)."""
    turns: set[tuple[Direction | None, Direction]] = set()
    for out in directions:
        turns.add((None, out))  # injection may start in any direction
    for t_in in directions:
        turns.add((t_in, t_in))
        for out in directions:
            if out.axis > t_in.axis:
                turns.add((t_in, out))
    return frozenset(turns)


def _minimal_adaptive_turns(
    directions: tuple[Direction, ...] = DIRECTIONS,
) -> frozenset[tuple[Direction | None, Direction]]:
    """All turns except reversal: a minimal move strictly decreases the
    distance to the destination, so the direction just travelled can never
    be profitable on the next hop (on the mesh and the torus alike)."""
    turns: set[tuple[Direction | None, Direction]] = set()
    for out in directions:
        turns.add((None, out))
        for t_in in directions:
            if out != t_in.opposite:
                turns.add((t_in, out))
    return frozenset(turns)


def _unrestricted_turns(
    directions: tuple[Direction, ...] = DIRECTIONS,
) -> frozenset[tuple[Direction | None, Direction]]:
    """Every turn including reversal (nonminimal routers may backtrack)."""
    turns: set[tuple[Direction | None, Direction]] = set()
    for out in directions:
        turns.add((None, out))
        for t_in in directions:
            turns.add((t_in, out))
    return frozenset(turns)


def escape_channel_turns(
    directions: tuple[Direction, ...],
) -> frozenset[tuple[Direction | None, Direction]]:
    """The credit-adaptive discipline: negative-first adaptive axes with a
    dimension-ordered escape channel on the highest axis.

    Packets correct the adaptive axes (all but the highest) first, taking
    every profitable *negative* adaptive direction before any positive one,
    and enter the escape axis only when the adaptive axes are done; escape
    traffic runs strictly straight.  The resulting turn relation is

    - injection -> anything;
    - negative adaptive in -> any non-reversal adaptive out, or escape;
    - positive adaptive in -> positive adaptive out (no reversal), or
      escape;
    - escape in -> straight only.

    On the mesh the blockable (adaptive) sub-relation is acyclic: chains of
    negative moves strictly decrease the coordinate sum, positive chains
    strictly increase it, and the bridge is one-way (negative -> positive),
    so no wait-for cycle can close -- the d-dimensional generalisation of
    the Theorem 15 argument.  In 2D this set coincides exactly with
    :func:`_dimension_order_turns`.
    """
    last_axis = max(d.axis for d in directions)
    turns: set[tuple[Direction | None, Direction]] = set()
    for out in directions:
        turns.add((None, out))
    for t_in in directions:
        if t_in.axis == last_axis:
            turns.add((t_in, t_in))  # escape channel: straight only
            continue
        for out in directions:
            if out == t_in.opposite:
                continue
            if out.axis == last_axis or t_in.sign < 0 or out.sign > 0:
                turns.add((t_in, out))
    return frozenset(turns)


def model_from_contract(
    *,
    queue_kind: str,
    minimal: bool,
    dimension_ordered: bool,
    blocking_keys: "frozenset[object] | None" = None,
    note: str = "",
    drain_keys: "frozenset[object]" = frozenset(),
    drain_all_keys: "frozenset[object]" = frozenset(),
    directions: tuple[Direction, ...] = DIRECTIONS,
) -> TransitionModel:
    """The symbolic transition model implied by a router's contract.

    The turn set follows the strongest path discipline the contract
    advertises (dimension order > minimal > unrestricted); ``blocking_keys``
    defaults to *every* queue of the regime -- the conservative choice --
    and routers whose inqueue policies provably always accept on some
    queues override it.  Drain guarantees default to none (again the
    conservative choice); routers whose scheduling discipline proves a
    per-step ejection invariant declare it via ``drain_keys`` /
    ``drain_all_keys`` (see :class:`TransitionModel`).
    """
    if dimension_ordered:
        turns = _dimension_order_turns(directions)
        discipline = "dimension-order"
    elif minimal:
        turns = _minimal_adaptive_turns(directions)
        discipline = "minimal-adaptive"
    else:
        turns = _unrestricted_turns(directions)
        discipline = "unrestricted"
    if blocking_keys is None:
        if queue_kind == KIND_CENTRAL:
            blocking_keys = frozenset({CENTRAL})
        elif queue_kind == KIND_INCOMING:
            blocking_keys = frozenset(directions)
        else:  # pragma: no cover - QueueSpec rejects other kinds already
            raise ValueError(f"unknown queue kind {queue_kind!r}")
    return TransitionModel(
        queue_kind=queue_kind,
        turns=turns,
        blocking_keys=blocking_keys,
        note=note or f"{discipline} turns, {queue_kind} queues",
        drain_keys=drain_keys,
        drain_all_keys=drain_all_keys,
    )
