"""Topology export to networkx graphs.

Provided for downstream analysis (spectral properties, cut computation,
visualization) and used by the test suite to cross-validate our closed-form
distances and diameters against a reference shortest-path implementation.
"""

from __future__ import annotations

from repro.mesh.directions import DIRECTIONS
from repro.mesh.topology import Topology


def to_networkx(topology: Topology):
    """The topology as an undirected :class:`networkx.Graph`.

    Nodes are ``(x, y)`` tuples; every mesh/torus link appears once.
    """
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(topology.nodes())
    for node in topology.nodes():
        for d in DIRECTIONS:
            nb = topology.neighbor(node, d)
            if nb is not None:
                graph.add_edge(node, nb)
    return graph


def bisection_width(topology: Topology) -> int:
    """Links crossing the vertical midline -- the mesh/torus bisection.

    The classic capacity argument: uniform traffic at per-node rate r needs
    r * N / 2 packets to cross the bisection per step, so the saturating
    rate is about ``2 * bisection / N`` (cf. examples/dynamic_traffic.py).
    """
    left = topology.width // 2 - 1
    crossings = 0
    for y in range(topology.height):
        crossings += 1  # the (left, y) -- (left+1, y) link
    if topology.wraps:
        crossings += topology.height  # the wraparound links also cross
    return crossings
