"""Queue models (Section 2 and the "Other Queue Types" extension of Section 5).

The paper's base model gives each node one *central* queue holding up to
``k`` packets.  Section 5 extends the lower bound to nodes with four
*incoming* queues (one per inlink) of size ``k`` each; Theorem 15's
algorithm uses exactly that organization.  :class:`QueueSpec` describes
which queues a node has, their capacity, and how packets map to queues on
arrival and at injection time.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mesh.directions import DIRECTIONS, Direction

#: Queue key used by the central-queue model.
CENTRAL = "central"

#: Queue kinds.
KIND_CENTRAL = "central"
KIND_INCOMING = "incoming"


def default_incoming_initial_key(profitable: frozenset[Direction]) -> Direction:
    """Queue for a freshly injected packet in the incoming-queue model.

    The packet is placed in the queue of the inlink it *would* have arrived
    on if it were already travelling dimension-order: an east-bound packet
    sits in the West queue, and so on.  This depends only on the packet's
    profitable outlinks, so it is a legal initial assignment for a
    destination-exchangeable algorithm (Section 2 allows the initial state
    of a node to depend on the profitable outlinks of the packet that
    originates there).

    The rule is dimension-agnostic (works for :class:`Direction` and for
    d-dimensional :class:`~repro.mesh.ndtopology.Port` keys alike): take the
    profitable direction on the lowest axis, positive side first, and use
    its opposite as the inlink — which reduces to the historical
    E->W, W->E, N->S, S->N table in 2D.
    """
    if profitable:
        travel = min(profitable, key=lambda d: (d.axis, -d.sign))
        return travel.opposite
    # Delivered-at-source packets never actually enter a queue.
    return Direction.S


class QueueSpec:
    """Describes the queue organization of every node.

    Args:
        capacity: Maximum number of packets per queue (the paper's ``k``).
        kind: ``"central"`` (one queue per node) or ``"incoming"`` (one
            queue per inlink direction).
        initial_key: For the incoming model, maps a packet's profitable
            outlinks to the queue it is injected into.  Ignored for the
            central model.
    """

    def __init__(
        self,
        capacity: int,
        kind: str = KIND_CENTRAL,
        initial_key: Callable[[frozenset[Direction]], Any] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if kind not in (KIND_CENTRAL, KIND_INCOMING):
            raise ValueError(f"unknown queue kind {kind!r}")
        self.capacity = capacity
        self.kind = kind
        self._initial_key = initial_key or default_incoming_initial_key
        # Hot-path tables: arrival_key / initial_key are called once per
        # transmitted packet per step, so precompute the per-direction
        # arrival map and memoize initial keys per profitable set (the
        # profitable frozensets are interned by the topology layer, so this
        # cache stays tiny).
        self._central = self.kind == KIND_CENTRAL
        self._directions: tuple[Any, ...] = DIRECTIONS
        self._arrival_map: dict[Any, Any] = {
            d: (CENTRAL if self._central else d) for d in DIRECTIONS
        }
        self._initial_cache: dict[frozenset[Any], Any] = {}

    def bind_directions(self, directions: tuple[Any, ...]) -> None:
        """Rebuild the per-direction tables for a topology's link set.

        Called once by the simulator before any packet is loaded, so specs
        written for the 2D compass directions work unchanged on
        d-dimensional topologies whose links are ports.  Binding the same
        direction tuple again is a no-op.
        """
        directions = tuple(directions)
        if directions == self._directions:
            return
        self._directions = directions
        self._arrival_map = {
            d: (CENTRAL if self._central else d) for d in directions
        }
        self._initial_cache = {}

    @property
    def keys(self) -> tuple[Any, ...]:
        """All queue keys a node may use."""
        if self.kind == KIND_CENTRAL:
            return (CENTRAL,)
        return self._directions

    @property
    def node_capacity(self) -> int:
        """Total packets a node can hold across all of its queues."""
        return self.capacity * len(self.keys)

    def arrival_key(self, came_from: Direction) -> Any:
        """Queue for a packet arriving on the inlink from ``came_from``."""
        return self._arrival_map[came_from]

    def initial_key(self, profitable: frozenset[Direction]) -> Any:
        """Queue for a packet injected at its source node."""
        if self._central:
            return CENTRAL
        key = self._initial_cache.get(profitable)
        if key is None:
            key = self._initial_cache.setdefault(
                profitable, self._initial_key(profitable)
            )
        return key

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"QueueSpec(capacity={self.capacity}, kind={self.kind!r})"
