"""Packets (Section 2).

A packet carries an immutable source address, a destination address (mutable
*only* through :meth:`Packet.exchange_destinations`, the operation the
adversary of Section 3 is permitted), and a mutable state that routing
algorithms may read and write while the packet sits in a node.
"""

from __future__ import annotations

from typing import Any


class Packet:
    """A routed packet.

    Attributes:
        pid: Unique integer id.  Stays with the packet across destination
            exchanges, like the source address.
        source: The node where the packet was injected.
        dest: The node the packet must reach.  Only the adversary's
            exchange operation may modify it.
        state: Algorithm-writable per-packet state (Section 2's "state of a
            packet").  Travels with the packet.
        pos: Current node, maintained by the simulator.
        injection_time: Step at which the packet enters the network
            (0 for static problems; used by dynamic workloads).
    """

    __slots__ = ("pid", "source", "dest", "state", "pos", "injection_time")

    def __init__(
        self,
        pid: int,
        source: tuple[int, int],
        dest: tuple[int, int],
        state: Any = None,
        injection_time: int = 0,
    ) -> None:
        self.pid = pid
        self.source = source
        self.dest = dest
        self.state = state
        self.pos = source
        self.injection_time = injection_time

    def exchange_destinations(self, other: "Packet") -> None:
        """Swap destination addresses with ``other``.

        This is the adversary's *exchange* (Section 2, "Definitions"):
        "a switching of their destination addresses.  The remaining packet
        information (state and source address) remains unchanged."
        """
        self.dest, other.dest = other.dest, self.dest

    def copy(self) -> "Packet":
        """An independent snapshot (used by replay/equivalence checking)."""
        clone = Packet(self.pid, self.source, self.dest, self.state, self.injection_time)
        clone.pos = self.pos
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet(#{self.pid} {self.source}->{self.dest} @{self.pos})"
