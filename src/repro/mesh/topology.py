"""Mesh and torus topologies (Section 2 and the torus extension of Section 5).

A topology answers purely geometric questions: which nodes exist, which
links exist, what is the minimal distance between two nodes, and -- the
quantity the whole paper revolves around -- which outlinks of a node are
*profitable* for a packet, i.e. bring it strictly closer to its destination.
"""

from __future__ import annotations

from typing import Iterator

from repro.mesh.directions import DIRECTIONS, OPPOSITE, Direction

#: Canonical instances of every profitable-outlink set.  At most one
#: direction per axis can ever be profitable, so few distinct sets exist
#: per topology family (nine on the 2D mesh, plus the torus's exact-halfway
#: ties); interning them lets every (node, dest) cache entry share one
#: frozenset object and keeps downstream dict lookups cheap.  The table is
#: keyed by ``dims`` as well: d-dimensional ``Port`` keys are value-equal
#: (and hence hash-equal) to the 2D compass ``Direction`` keys, but a
#: port's axis/sign meaning depends on the dimension count, so sets from
#: different dimensionalities must never share a canonical instance.
_INTERNED_DIRSETS: dict[
    tuple[int, frozenset[Direction]], frozenset[Direction]
] = {}


def _intern_dirset(dirs: frozenset[Direction], dims: int = 2) -> frozenset[Direction]:
    key = (dims, dirs)
    canon = _INTERNED_DIRSETS.get(key)
    if canon is None:
        canon = _INTERNED_DIRSETS.setdefault(key, dirs)
    return canon


class Topology:
    """Base class for rectangular grid topologies.

    Subclasses define edge behaviour (:class:`Mesh` clips at the boundary,
    :class:`Torus` wraps around).  Coordinates are ``(x, y)`` with
    ``0 <= x < width`` (west to east) and ``0 <= y < height`` (south to
    north).
    """

    #: Set by subclasses: True when links wrap around the boundary.
    wraps: bool = False

    #: Topology data contract (see docs/TOPOLOGY.md).  A topology is a data
    #: object: a node set, a per-node link table indexed by its ``directions``
    #: tuple, and dimension metadata.  The 2D classes keep the historical
    #: compass vocabulary; d-dimensional grids override these with ports.
    dims: int = 2
    #: All link directions in deterministic order; ``directions[i]`` has
    #: integer value ``i`` so link tables can be indexed positionally.
    directions: tuple[Direction, ...] = DIRECTIONS
    #: ``opposites[d]`` reverses direction ``d`` (hot-path table form).
    opposites: tuple[Direction, ...] = OPPOSITE
    #: False for irregular variants whose link set is node-dependent beyond
    #: plain boundary clipping (e.g. the sparse-pillar mesh).  Regularity is
    #: what routers rely on for axis-based escape-channel arguments.
    regular: bool = True

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 1 or height < 1:
            raise ValueError(f"topology must be at least 1x1, got {width}x{height}")
        self.width = width
        self.height = height
        # Hot-path caches (see docs/PERFORMANCE.md).  Geometry is immutable,
        # so these are pure memoizations: the profitable-direction cache maps
        # (node, dest) to an interned frozenset, and the neighbor/outlink
        # tables are precomputed per node (flat ids via :meth:`node_index`).
        self._profitable_cache: dict[
            tuple[tuple[int, int], tuple[int, int]], frozenset[Direction]
        ] = {}
        self._neighbor_flat: list[tuple[tuple[int, int] | None, ...]] | None = None
        self._out_dirs_flat: list[tuple[Direction, ...]] | None = None

    # -- precomputed tables -------------------------------------------------

    def node_index(self, node: tuple[int, int]) -> int:
        """Flat id of ``node`` in column-major (:meth:`nodes`) order."""
        return node[0] * self.height + node[1]

    def _build_tables(self) -> None:
        nbr: list[tuple[tuple[int, int] | None, ...]] = []
        outs: list[tuple[Direction, ...]] = []
        for node in self.nodes():
            row = tuple(self._neighbor_uncached(node, d) for d in self.directions)
            nbr.append(row)
            outs.append(tuple(d for d in self.directions if row[d] is not None))
        self._neighbor_flat = nbr
        self._out_dirs_flat = outs

    def neighbor_table(self) -> list[tuple[tuple[int, int] | None, ...]]:
        """Per-node outlink targets, indexed ``[node_index][direction]``.

        Entry ``None`` means the outlink does not exist (mesh boundary).
        Built once on first use; the simulator's transmit phase reads this
        instead of recomputing :meth:`neighbor` arithmetic per move.
        """
        if self._neighbor_flat is None:
            self._build_tables()
        return self._neighbor_flat  # type: ignore[return-value]

    def out_directions_table(self) -> list[tuple[Direction, ...]]:
        """Per-node outlink directions in (N, E, S, W) order, by flat id."""
        if self._out_dirs_flat is None:
            self._build_tables()
        return self._out_dirs_flat  # type: ignore[return-value]

    # -- basic geometry ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def shape(self) -> tuple[int, ...]:
        """Side length per coordinate axis (``(width, height)`` in 2D)."""
        return (self.width, self.height)

    def nodes(self) -> Iterator[tuple[int, int]]:
        """All nodes in column-major (west-to-east, south-to-north) order."""
        for x in range(self.width):
            for y in range(self.height):
                yield (x, y)

    def contains(self, node: tuple[int, int]) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    # -- links -------------------------------------------------------------

    def neighbor(self, node: tuple[int, int], direction: Direction) -> tuple[int, int] | None:
        """The node at the far end of ``node``'s outlink ``direction``.

        Returns None when the outlink does not exist (mesh boundary).
        """
        return self._neighbor_uncached(node, direction)

    def _neighbor_uncached(
        self, node: tuple[int, int], direction: Direction
    ) -> tuple[int, int] | None:
        """Subclass geometry behind :meth:`neighbor` and the tables."""
        raise NotImplementedError

    def out_directions(self, node: tuple[int, int]) -> tuple[Direction, ...]:
        """The directions in which ``node`` has outlinks, in (N, E, S, W) order."""
        return self.out_directions_table()[self.node_index(node)]

    def neighbors(self, node: tuple[int, int]) -> list[tuple[int, int]]:
        out = []
        for d in self.directions:
            nb = self.neighbor(node, d)
            if nb is not None:
                out.append(nb)
        return out

    # -- distance and profitability -----------------------------------------

    def distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Length of a shortest path from ``a`` to ``b``."""
        raise NotImplementedError

    def profitable_directions(
        self, node: tuple[int, int], dest: tuple[int, int]
    ) -> frozenset[Direction]:
        """Outlinks of ``node`` that move a packet strictly closer to ``dest``.

        This is the only destination-derived information a
        destination-exchangeable algorithm may use (Section 2).  Results are
        memoized per (node, dest) with interned frozensets: this is the
        single most-called geometric query in the simulator's step loop.
        """
        key = (node, dest)
        cached = self._profitable_cache.get(key)
        if cached is None:
            cached = _intern_dirset(self._profitable_uncached(node, dest), self.dims)
            self._profitable_cache[key] = cached
        return cached

    def _profitable_uncached(
        self, node: tuple[int, int], dest: tuple[int, int]
    ) -> frozenset[Direction]:
        """Subclass geometry behind :meth:`profitable_directions`."""
        raise NotImplementedError

    def displacement(
        self, node: tuple[int, int], dest: tuple[int, int]
    ) -> tuple[int, int]:
        """Signed minimal displacement ``(dx, dy)`` from ``node`` to ``dest``.

        ``dx > 0`` means the destination lies to the east along a shortest
        path, etc.  On the torus the shorter way around is chosen; an exact
        half-circumference tie is reported as positive.
        """
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.width}x{self.height})"


#: Mesh profitable-direction sets, indexed ``[sign(dx) + 1][sign(dy) + 1]``
#: where ``(dx, dy)`` is the displacement from node to destination.  On the
#: mesh the profitable set depends on nothing but those two signs, so the
#: whole query collapses to one table lookup (shared interned instances).
_MESH_PROFITABLE: tuple[tuple[frozenset[Direction], ...], ...] = tuple(
    tuple(
        _intern_dirset(
            frozenset(
                ([Direction.N] if sy > 0 else [Direction.S] if sy < 0 else [])
                + ([Direction.E] if sx > 0 else [Direction.W] if sx < 0 else [])
            )
        )
        for sy in (-1, 0, 1)
    )
    for sx in (-1, 0, 1)
)


class Mesh(Topology):
    """The ``width x height`` mesh: bidirectional links between grid neighbours."""

    wraps = False

    def profitable_directions(
        self, node: tuple[int, int], dest: tuple[int, int]
    ) -> frozenset[Direction]:
        # Overrides the base memo: the sign table needs no per-pair cache.
        dx = dest[0] - node[0]
        dy = dest[1] - node[1]
        return _MESH_PROFITABLE[(dx > 0) - (dx < 0) + 1][(dy > 0) - (dy < 0) + 1]

    def _neighbor_uncached(self, node: tuple[int, int], direction: Direction) -> tuple[int, int] | None:
        x, y = node
        nx, ny = x + direction.dx, y + direction.dy
        if 0 <= nx < self.width and 0 <= ny < self.height:
            return (nx, ny)
        return None

    def distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def displacement(self, node: tuple[int, int], dest: tuple[int, int]) -> tuple[int, int]:
        return (dest[0] - node[0], dest[1] - node[1])

    def _profitable_uncached(
        self, node: tuple[int, int], dest: tuple[int, int]
    ) -> frozenset[Direction]:
        dirs = []
        dx = dest[0] - node[0]
        dy = dest[1] - node[1]
        if dy > 0:
            dirs.append(Direction.N)
        elif dy < 0:
            dirs.append(Direction.S)
        if dx > 0:
            dirs.append(Direction.E)
        elif dx < 0:
            dirs.append(Direction.W)
        return frozenset(dirs)

    @property
    def diameter(self) -> int:
        return (self.width - 1) + (self.height - 1)


class Torus(Topology):
    """The ``width x height`` torus: the mesh with wraparound links."""

    wraps = True

    def _neighbor_uncached(self, node: tuple[int, int], direction: Direction) -> tuple[int, int] | None:
        x, y = node
        return ((x + direction.dx) % self.width, (y + direction.dy) % self.height)

    @staticmethod
    def _axis_delta(src: int, dst: int, size: int) -> int:
        """Signed shortest displacement along one wrapping axis.

        A tie (``|delta| == size/2`` for even ``size``) is reported as
        positive so results stay deterministic.
        """
        delta = (dst - src) % size
        if delta > size // 2:
            delta -= size
        return delta

    def displacement(self, node: tuple[int, int], dest: tuple[int, int]) -> tuple[int, int]:
        return (
            self._axis_delta(node[0], dest[0], self.width),
            self._axis_delta(node[1], dest[1], self.height),
        )

    def distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        dx, dy = self.displacement(a, b)
        return abs(dx) + abs(dy)

    def _profitable_uncached(
        self, node: tuple[int, int], dest: tuple[int, int]
    ) -> frozenset[Direction]:
        dirs: list[Direction] = []
        dxr = (dest[0] - node[0]) % self.width
        dyr = (dest[1] - node[1]) % self.height
        if dyr != 0:
            # Moving north reduces distance iff the northward way is at most
            # as long as the southward way.
            if dyr < self.height - dyr:
                dirs.append(Direction.N)
            elif dyr > self.height - dyr:
                dirs.append(Direction.S)
            else:  # exact tie: both ways are shortest
                dirs.append(Direction.N)
                dirs.append(Direction.S)
        if dxr != 0:
            if dxr < self.width - dxr:
                dirs.append(Direction.E)
            elif dxr > self.width - dxr:
                dirs.append(Direction.W)
            else:
                dirs.append(Direction.E)
                dirs.append(Direction.W)
        return frozenset(dirs)

    @property
    def diameter(self) -> int:
        return self.width // 2 + self.height // 2
