"""Packet path tracing: record every hop of selected packets.

A :class:`PathTracer` wraps a simulator's interceptor slot (or chains onto
an existing interceptor such as an adversary) and snapshots positions after
scheduling, reconstructing each packet's full trajectory.  Used by tests to
verify path properties (minimality, dimension order, box confinement) and
handy for debugging new algorithms.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.mesh.simulator import ScheduledMove, Simulator


class PathTracer:
    """Records trajectories of selected packets.

    Args:
        pids: Packets to trace (None = all).
        chain: Optional interceptor to run first (e.g. an adversary); the
            tracer observes positions *after* any destination exchanges.

    Use as ``Simulator(..., interceptor=tracer)``; trajectories accumulate
    in :attr:`paths` as lists of nodes (including the start), and
    destination changes (adversary exchanges) in :attr:`retargets`.
    """

    def __init__(
        self,
        pids: Iterable[int] | None = None,
        chain: Callable[[Simulator, list[ScheduledMove]], None] | None = None,
    ) -> None:
        self.filter = set(pids) if pids is not None else None
        self.chain = chain
        self.paths: dict[int, list[tuple[int, int]]] = {}
        self.retargets: dict[int, list[tuple[int, tuple[int, int]]]] = {}
        self._last_dest: dict[int, tuple[int, int]] = {}

    def _wants(self, pid: int) -> bool:
        return self.filter is None or pid in self.filter

    def __call__(self, sim: Simulator, schedule: list[ScheduledMove]) -> None:
        if self.chain is not None:
            self.chain(sim, schedule)
        for p in sim.iter_packets():
            if not self._wants(p.pid):
                continue
            path = self.paths.setdefault(p.pid, [p.pos])
            if path[-1] != p.pos:
                path.append(p.pos)
            last = self._last_dest.get(p.pid)
            if last is not None and last != p.dest:
                self.retargets.setdefault(p.pid, []).append((sim.time, p.dest))
            self._last_dest[p.pid] = p.dest

    def finalize(self, sim: Simulator) -> None:
        """Append final (delivered) positions; call after the run."""
        for pid, path in self.paths.items():
            # Delivered packets rest at their destination.
            dest = self._last_dest.get(pid)
            if dest is not None and sim.delivery_times.get(pid) is not None:
                if path[-1] != dest:
                    path.append(dest)

    def hops(self, pid: int) -> int:
        """Number of link traversals recorded for a packet."""
        return max(0, len(self.paths.get(pid, [])) - 1)
