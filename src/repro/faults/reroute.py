"""Fault-aware rerouting: bounded nonminimal excursions around dead links.

Section 5 proves that allowing packets to stray up to ``delta`` hops
beyond the rectangle spanned by source and destination only weakens the
lower bound to ``Omega(n^2 / ((delta + 1)^3 k^2))`` -- nonminimal slack
buys routing power.  Faults are where that power pays: a minimal router
facing a dead profitable link can only wait, while a ``delta``-bounded
router may step *around* the failure and keep the packet moving.

:class:`FaultAwareRerouteRouter` wraps any mesh router.  Scheduling is
delegated to the inner router; any chosen move whose link the fault plan
reports down is re-aimed at an alternate up outlink, preferring
profitable directions and never taking the packet more than ``delta``
hops outside its source-destination rectangle (so the
:class:`~repro.verify.oracles.MinimalityOracle` excursion check, and with
it the Section 5 accounting, still applies to every faulty run).

The adapter is deliberately *not* destination-exchangeable: deciding
whether a sidestep stays within the rectangle requires the destination,
exactly the information the paper's lower-bound model withholds.  Fault
awareness is bought with model power, and the contract metadata says so.
Mesh only -- on a wrapping topology the excursion rectangle is undefined.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.faults.plan import FaultPlan
from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.visibility import FullPacketView, Offer, PacketView


def rectangle_excess(
    pos: tuple[int, int], a: tuple[int, int], b: tuple[int, int]
) -> int:
    """Manhattan distance from ``pos`` to the rectangle spanned by a and b."""
    (x, y), (ax, ay), (bx, by) = pos, a, b
    lo_x, hi_x = min(ax, bx), max(ax, bx)
    lo_y, hi_y = min(ay, by), max(ay, by)
    return max(lo_x - x, 0, x - hi_x) + max(lo_y - y, 0, y - hi_y)


class FaultAwareRerouteRouter(RoutingAlgorithm):
    """Wrap a mesh router with dead-link sidesteps bounded by ``delta``.

    Args:
        inner: The router whose policies are delegated to.  Its inqueue
            policy must keep queues safe on its own (use the conservative
            variant, not Theorem 15's always-accept organization).
        plan: The fault plan the adapter consults.  Must be the same plan
            attached to the simulator, or the adapter would be dodging
            imaginary failures while running into real ones.
        delta: Maximum hops a packet may stray beyond the rectangle
            spanned by its source and destination (Section 5's ``delta``).
    """

    name = "fault-reroute"
    destination_exchangeable = False  # rectangle checks need the dest
    minimal = False

    def __init__(
        self, inner: RoutingAlgorithm, plan: FaultPlan, delta: int = 1
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        super().__init__(inner.queue_spec)
        self.inner = inner
        self.plan = plan
        self.delta = delta

    # -- contract metadata ---------------------------------------------------

    def excursion_delta(self) -> int | None:
        return self.delta

    def enumerate_transitions(self, topology, k):
        # Sidesteps can take any turn the topology offers, so no static
        # model tighter than "unrestricted" is sound; report UNKNOWN
        # rather than a verdict the reroutes could violate.
        return None

    # -- delegated state -----------------------------------------------------

    def initial_node_state(self, node, originating):
        return self.inner.initial_node_state(node, originating)

    def initial_packet_state(self, view: PacketView) -> Any:
        return self.inner.initial_packet_state(view)

    def after_step(self, ctx: NodeContext) -> Any:
        return self.inner.after_step(ctx)

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        return self.inner.inqueue(ctx, offers)

    # -- the fault-aware outqueue --------------------------------------------

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen = dict(self.inner.outqueue(ctx))
        if not chosen:
            return chosen
        node, now = ctx.node, ctx.time
        dead = [d for d in chosen if not self._link_ok(node, d, now)]
        for direction in dead:
            view = chosen.pop(direction)
            alt = self._sidestep(ctx, view, direction, chosen)
            if alt is not None:
                chosen[alt] = view
        return chosen

    def _link_ok(self, node: tuple[int, int], direction: Direction, now: int) -> bool:
        plan = self.plan
        if not plan.link_up(node, direction, now) or not plan.node_up(node, now):
            return False
        target = (node[0] + direction.dx, node[1] + direction.dy)
        return plan.node_up(target, now)

    def _sidestep(
        self,
        ctx: NodeContext,
        view: PacketView,
        dead: Direction,
        chosen: dict[Direction, PacketView],
    ) -> Direction | None:
        """The best live outlink for ``view``, or None to wait in place.

        Candidates must be up, unclaimed this step, and keep the packet
        within ``delta`` of its source-destination rectangle.  The exact
        reverse of the dead direction is never a candidate: it strictly
        regresses and leaves the packet facing the same failure, so a
        persistent outage would livelock the packet on one link (observed
        with a flat source-destination rectangle, where the backward hop
        has excess 0 and outranked the useful perpendicular sidestep).
        Profitable directions win over excursions; among excursions,
        smaller excess wins; direction order breaks remaining ties
        deterministically.
        """
        if not isinstance(view, FullPacketView):
            raise TypeError(
                "fault-reroute needs full packet visibility to compute "
                f"rectangle excursions, got {type(view).__name__}"
            )
        node, now = ctx.node, ctx.time
        best: tuple[tuple[int, int, int], Direction] | None = None
        for d in ctx.out_directions:
            if d == dead.opposite or d in chosen or not self._link_ok(node, d, now):
                continue
            target = (node[0] + d.dx, node[1] + d.dy)
            excess = rectangle_excess(target, view.source, view.dest)
            if excess > self.delta:
                continue
            rank = (0 if d in view.profitable else 1, excess, int(d))
            if best is None or rank < best[0]:
                best = (rank, d)
        return best[1] if best is not None else None
