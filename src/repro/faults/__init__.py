"""Fault injection and resilience (the paper's "dynamic setting").

Three layers (see ``docs/FAULTS.md``):

- :mod:`repro.faults.plan` -- deterministic fault plans.  Link and node
  up/down state is a pure counter-based hash of ``(seed, entity, time)``,
  so runs are bit-reproducible across query order, worker counts, and
  simulator fast paths.
- :mod:`repro.faults.resilience` -- end-to-end recovery: the
  conservative accept-if-space router and the retransmission manager.
- :mod:`repro.faults.reroute` -- the delta-bounded fault-aware routing
  adapter (Section 5's nonminimal excursion class put to work).
- :mod:`repro.faults.run` -- orchestration: attach a plan, record-mode
  oracles, and optional resilience to one simulator and report
  degradation metrics.
"""

from repro.faults.plan import (
    BernoulliLinkPlan,
    CompositeFaultPlan,
    FaultPlan,
    Outage,
    RenewalOutagePlan,
    ScheduledOutagePlan,
    counter_draw,
    link_draw,
)
from repro.faults.reroute import FaultAwareRerouteRouter
from repro.faults.resilience import (
    ConservativeBoundedDimensionOrderRouter,
    ResilienceManager,
)
from repro.faults.run import FaultyRunReport, percentile, run_faulty

__all__ = [
    "BernoulliLinkPlan",
    "CompositeFaultPlan",
    "ConservativeBoundedDimensionOrderRouter",
    "FaultAwareRerouteRouter",
    "FaultPlan",
    "FaultyRunReport",
    "Outage",
    "RenewalOutagePlan",
    "ResilienceManager",
    "ScheduledOutagePlan",
    "counter_draw",
    "link_draw",
    "percentile",
    "run_faulty",
]
