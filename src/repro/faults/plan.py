"""Deterministic fault plans: link and node failures as pure functions.

The paper's closing open problem asks for algorithms that extend "to the
asynchronous and dynamic settings".  This module supplies the *dynamic*
half of the environment: a :class:`FaultPlan` answers, for any link or
node and any step, whether it is up -- and it answers as a **pure
function of (seed, entity, time)**.

That purity is the whole design.  The previous asynchrony stub drew link
states from one shared sequential RNG, so a link's availability depended
on how many *other* moves had been evaluated first: querying the same
link twice in a step could disagree, and the fast-outqueue and
NodeContext simulator paths could in principle observe different
networks.  Here every draw is a counter-based hash of
``(seed, src, direction, time)`` (splitmix64 finalizer), so:

- the same link queried twice in a step always agrees;
- query *order* is irrelevant -- runs are bit-identical across worker
  counts and across simulator fast paths;
- any (link, step) state can be recomputed in isolation (replay, tests).

Three plan families are provided:

- :class:`BernoulliLinkPlan` -- each link is independently up each step
  with probability ``availability`` (the i.i.d. model of the stub).
- :class:`ScheduledOutagePlan` -- explicit outage windows for named
  links and nodes (reproducible "this link dies at step 100" scripts).
- :class:`RenewalOutagePlan` -- MTTF/MTTR-style alternating up/down
  windows per entity, with exponential-ish window lengths unfolded
  deterministically from the seed.

Plans compose with :class:`CompositeFaultPlan` (an entity is up only if
every constituent plan says so) and attach to a simulator with
:meth:`FaultPlan.attach`.  On the reference engine that installs a
scalar ``link_filter`` closure; on the array engine the plan is queried
through the vectorized ``link_up_array``/``node_up_array`` methods,
which evaluate the *same* pure counter-hash draws batch-wise -- both
paths also fail every link into or out of a down *node*, and stay
byte-identical to each other.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.mesh.directions import Direction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mesh.simulator import Simulator
    from repro.mesh.topology import Topology

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_GOLDEN_U64 = np.uint64(_GOLDEN)


def _mix(h: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit avalanche."""
    h &= _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


def _mix_u64(h: np.ndarray) -> np.ndarray:
    """:func:`_mix` over uint64 arrays (wrapping arithmetic is mod 2**64)."""
    h = h ^ (h >> np.uint64(30))
    h = h * np.uint64(0xBF58476D1CE4E5B9)
    h = h ^ (h >> np.uint64(27))
    h = h * np.uint64(0x94D049BB133111EB)
    return h ^ (h >> np.uint64(31))


def link_draw_array(
    seed: int, xs: np.ndarray, ys: np.ndarray, dirs: np.ndarray, time: int
) -> np.ndarray:
    """Vectorized :func:`link_draw`: bit-identical draws for whole arrays.

    Element ``i`` equals ``counter_draw(seed, xs[i], ys[i], dirs[i],
    time)`` exactly: uint64 arithmetic wraps mod 2**64 like the masked
    Python-int path, and ``(h >> 11) / 2**53`` is exact in float64.
    """
    h: np.ndarray = np.uint64(_mix(seed ^ _GOLDEN))  # scalar prefix
    with np.errstate(over="ignore"):
        for c in (xs, ys, dirs):
            h = _mix_u64(h ^ (c.astype(np.uint64) + _GOLDEN_U64))
        h = _mix_u64(h ^ np.uint64((time + _GOLDEN) & _MASK64))
    return (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def counter_draw(seed: int, *counters: int) -> float:
    """A uniform draw in [0, 1) as a pure function of its arguments.

    Unlike a sequential RNG there is no hidden stream position: equal
    arguments give equal draws regardless of how many other draws
    happened in between.  The 53 high bits feed the mantissa, matching
    the resolution of ``random.random``.
    """
    h = _mix(seed ^ _GOLDEN)
    for c in counters:
        h = _mix(h ^ ((c + _GOLDEN) & _MASK64))
    return (h >> 11) / float(1 << 53)


def link_draw(
    seed: int, src: tuple[int, int], direction: Direction, time: int
) -> float:
    """The canonical per-``(seed, link, time)`` uniform draw."""
    return counter_draw(seed, src[0], src[1], int(direction), time)


class FaultPlan:
    """Base class: everything is up.  Subclasses override either query.

    Both queries must be pure functions of their arguments (given the
    plan's construction parameters); the simulator and the resilience
    layer are allowed to call them any number of times in any order.
    """

    def link_up(self, src: tuple[int, int], direction: Direction, time: int) -> bool:
        """Is the outlink of ``src`` in ``direction`` up during ``time``?"""
        return True

    def node_up(self, node: tuple[int, int], time: int) -> bool:
        """Is ``node`` up during step ``time``?  A down node fails every
        link into and out of it; resident packets are dropped by the
        resilience layer (see :mod:`repro.faults.resilience`)."""
        return True

    def link_up_array(
        self, xs: np.ndarray, ys: np.ndarray, dirs: np.ndarray, time: int
    ) -> np.ndarray:
        """Vectorized :meth:`link_up` over parallel coordinate arrays.

        The default answers element-wise through the scalar query, so
        any plan is automatically correct on the array engine; plans
        with a closed form (Bernoulli) override this with a batched
        computation that is bit-identical to the scalar path.
        """
        if type(self).link_up is FaultPlan.link_up:
            return np.ones(len(xs), dtype=bool)
        return np.fromiter(
            (
                self.link_up((x, y), Direction(d), time)
                for x, y, d in zip(xs.tolist(), ys.tolist(), dirs.tolist())
            ),
            dtype=bool,
            count=len(xs),
        )

    def node_up_array(
        self, xs: np.ndarray, ys: np.ndarray, time: int
    ) -> np.ndarray:
        """Vectorized :meth:`node_up` over parallel coordinate arrays."""
        if type(self).node_up is FaultPlan.node_up:
            return np.ones(len(xs), dtype=bool)
        return np.fromiter(
            (self.node_up((x, y), time) for x, y in zip(xs.tolist(), ys.tolist())),
            dtype=bool,
            count=len(xs),
        )

    def as_link_filter(
        self, topology: "Topology"
    ) -> Callable[[tuple[int, int], Direction, int], bool]:
        """The scalar link filter this plan induces on ``topology``.

        The filter fails a scheduled move when the link itself is down,
        or when either endpoint node is down -- so node failures need no
        simulator support beyond the existing link hook.
        """
        neighbor = topology.neighbor

        def link_filter(
            src: tuple[int, int], direction: Direction, time: int
        ) -> bool:
            if not self.link_up(src, direction, time):
                return False
            if not self.node_up(src, time):
                return False
            target = neighbor(src, direction)
            return target is None or self.node_up(target, time)

        return link_filter

    def attach(self, sim: "Simulator") -> "Simulator":
        """Install this plan on ``sim`` and return ``sim``.

        The reference engine installs the scalar :meth:`as_link_filter`
        closure; the array engine keeps the plan itself and evaluates
        the same draws through the vectorized ``*_array`` queries, so
        both paths stay byte-identical.
        """
        sim.attach_fault_plan(self)
        return sim


class BernoulliLinkPlan(FaultPlan):
    """Each link is independently up each step with probability
    ``availability`` -- the i.i.d. approximation of asynchrony.

    Args:
        availability: Per-link per-step up-probability in (0, 1].
        seed: Hash seed; equal seeds give bit-identical fault histories.
    """

    def __init__(self, availability: float, seed: int = 0) -> None:
        if not 0.0 < availability <= 1.0:
            raise ValueError(
                f"availability must be in (0, 1], got {availability}"
            )
        self.availability = availability
        self.seed = seed

    def link_up(self, src: tuple[int, int], direction: Direction, time: int) -> bool:
        if self.availability >= 1.0:
            return True
        return link_draw(self.seed, src, direction, time) < self.availability

    def link_up_array(
        self, xs: np.ndarray, ys: np.ndarray, dirs: np.ndarray, time: int
    ) -> np.ndarray:
        if self.availability >= 1.0:
            return np.ones(len(xs), dtype=bool)
        return link_draw_array(self.seed, xs, ys, dirs, time) < self.availability


@dataclass(frozen=True)
class Outage:
    """One scheduled outage window, ``start <= time < end``.

    ``direction`` is None for a node outage, or the failed outlink's
    direction for a link outage (the reverse link is independent).
    """

    node: tuple[int, int]
    start: int
    end: int
    direction: Direction | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"outage window must satisfy 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )


class ScheduledOutagePlan(FaultPlan):
    """Explicit outage windows for named links and nodes.

    The deterministic "script" plan: tests and examples state exactly
    which entity is down when, with no randomness at all.
    """

    def __init__(self, outages: Iterable[Outage]) -> None:
        self._link_windows: dict[tuple[tuple[int, int], Direction], list[Outage]] = {}
        self._node_windows: dict[tuple[int, int], list[Outage]] = {}
        for outage in outages:
            if outage.direction is None:
                self._node_windows.setdefault(outage.node, []).append(outage)
            else:
                key = (outage.node, outage.direction)
                self._link_windows.setdefault(key, []).append(outage)

    @staticmethod
    def _covered(windows: list[Outage] | None, time: int) -> bool:
        if windows is None:
            return False
        return any(w.start <= time < w.end for w in windows)

    def link_up(self, src: tuple[int, int], direction: Direction, time: int) -> bool:
        return not self._covered(self._link_windows.get((src, direction)), time)

    def node_up(self, node: tuple[int, int], time: int) -> bool:
        return not self._covered(self._node_windows.get(node), time)


class RenewalOutagePlan(FaultPlan):
    """MTTF/MTTR-style faults: per-entity alternating up/down windows.

    Every entity (node or link, per ``scope``) runs its own renewal
    process: up for ``1 + floor(Exp(mttf))`` steps, then down for
    ``1 + floor(Exp(mttr))`` steps, repeating.  Window lengths are drawn
    with :func:`counter_draw` keyed on ``(seed, entity, cycle index)``
    and unfolded lazily into cached breakpoints -- a pure unfold, so the
    state at any time is independent of query order.

    Args:
        mttf: Mean steps up per cycle (mean time to failure), >= 1.
        mttr: Mean steps down per cycle (mean time to repair), >= 1.
        seed: Hash seed.
        scope: ``"node"`` (default) or ``"link"`` -- which entity kind
            this plan fails.
    """

    def __init__(
        self, mttf: float, mttr: float, seed: int = 0, scope: str = "node"
    ) -> None:
        if mttf < 1 or mttr < 1:
            raise ValueError(f"mttf and mttr must be >= 1, got {mttf}, {mttr}")
        if scope not in ("node", "link"):
            raise ValueError(f"scope must be 'node' or 'link', got {scope!r}")
        self.mttf = float(mttf)
        self.mttr = float(mttr)
        self.seed = seed
        self.scope = scope
        # Per-entity breakpoints: _starts[key][i] is the first step of
        # window i; even windows are up, odd are down.  Extended lazily.
        self._starts: dict[tuple[int, ...], list[int]] = {}

    def _window_len(self, key: tuple[int, ...], index: int) -> int:
        mean = self.mttf if index % 2 == 0 else self.mttr
        u = counter_draw(self.seed, *key, index)
        # Inverse-CDF exponential, floored to whole steps, minimum 1.
        return 1 + int(-mean * math.log1p(-u))

    def _up_at(self, key: tuple[int, ...], time: int) -> bool:
        starts = self._starts.get(key)
        if starts is None:
            starts = self._starts.setdefault(key, [0])
        while starts[-1] <= time:
            starts.append(starts[-1] + self._window_len(key, len(starts) - 1))
        # The window containing ``time`` is the last one starting at or
        # before it; even-indexed windows are up.
        return (bisect_left(starts, time + 1) - 1) % 2 == 0

    def node_up(self, node: tuple[int, int], time: int) -> bool:
        if self.scope != "node":
            return True
        return self._up_at((0, node[0], node[1]), time)

    def link_up(self, src: tuple[int, int], direction: Direction, time: int) -> bool:
        if self.scope != "link":
            return True
        return self._up_at((1, src[0], src[1], int(direction)), time)


class CompositeFaultPlan(FaultPlan):
    """Intersection of several plans: an entity is up only if every
    constituent plan reports it up (e.g. Bernoulli link flakiness plus a
    renewal node-outage process)."""

    def __init__(self, *plans: FaultPlan) -> None:
        if not plans:
            raise ValueError("CompositeFaultPlan needs at least one plan")
        self.plans = plans

    def link_up(self, src: tuple[int, int], direction: Direction, time: int) -> bool:
        return all(p.link_up(src, direction, time) for p in self.plans)

    def node_up(self, node: tuple[int, int], time: int) -> bool:
        return all(p.node_up(node, time) for p in self.plans)

    def link_up_array(
        self, xs: np.ndarray, ys: np.ndarray, dirs: np.ndarray, time: int
    ) -> np.ndarray:
        up = np.ones(len(xs), dtype=bool)
        for p in self.plans:
            up &= p.link_up_array(xs, ys, dirs, time)
        return up

    def node_up_array(
        self, xs: np.ndarray, ys: np.ndarray, time: int
    ) -> np.ndarray:
        up = np.ones(len(xs), dtype=bool)
        for p in self.plans:
            up &= p.node_up_array(xs, ys, time)
        return up
