"""The resilience layer: surviving faults instead of merely observing them.

Two mechanisms, both end-to-end (the routing algorithms stay oblivious):

- :class:`ConservativeBoundedDimensionOrderRouter` -- Theorem 15's router
  with the synchrony assumption removed: every queue accepts only while it
  holds fewer than ``k`` packets, so queue safety survives arbitrary link
  failures (at the price of Theorem 15's termination proof).
- :class:`ResilienceManager` -- per-packet delivery timeouts with source
  retransmission and duplicate suppression, plus node-failure handling:
  packets resident at a node when it goes down are *dropped* (recorded in
  ``Simulator.dropped``), and their sources re-inject fresh copies after
  the timeout.  The first copy of a packet to arrive counts as the
  delivery; surviving duplicates are suppressed (dropped) as soon as the
  original is resolved, so conservation-modulo-dropped always holds:
  ``delivered + queued + pending + dropped == total``.

The manager attaches through the simulator's pre/post-step hook points
(the same mechanism the verify oracles use) and never reaches into a
policy: retransmitted copies are ordinary dynamic packets with fresh ids.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.faults.plan import FaultPlan
from repro.mesh.interfaces import NodeContext
from repro.mesh.packet import Packet
from repro.mesh.simulator import ScheduledMove, Simulator
from repro.mesh.visibility import Offer
from repro.routing.bounded_dor import BoundedDimensionOrderRouter


class ConservativeBoundedDimensionOrderRouter(BoundedDimensionOrderRouter):
    """Theorem 15's router with the synchrony assumption removed.

    The original's North/South queues accept unconditionally because the
    synchronous model *guarantees* they eject every step.  Under flaky
    links that guarantee is void, so this variant accepts into every queue
    only while it holds fewer than ``k`` packets -- always safe, at the
    price of Theorem 15's termination proof (vertical flows can now suffer
    the refusal stalls the always-accept rule existed to preclude).
    """

    name = "conservative-bounded-dor"
    # An empty node's queues all hold 0 < k packets, so the inherited
    # accepts_all_into_empty contract still holds for this inqueue too.

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        capacity = self.queue_spec.capacity
        if len(offers) == 1:
            if ctx.occupancy(offers[0].came_from) < capacity:
                return offers
            return ()
        return [
            off for off in offers if ctx.occupancy(off.came_from) < capacity
        ]

    def enumerate_transitions(self, topology, k):
        # Unlike Theorem 15's organization, *every* queue may refuse here,
        # so the contract-derived model (all queues blockable) is the
        # sound one -- skip the always-accepting N/S override.
        from repro.mesh.transitions import model_from_contract

        return model_from_contract(
            queue_kind=self.queue_spec.kind,
            minimal=self.minimal,
            dimension_ordered=self.dimension_ordered,
            note=f"{self.name}: every queue accept-if-space (no synchrony)",
        )


class ResilienceManager:
    """Source retransmission with duplicate suppression, on one simulator.

    Args:
        sim: The simulator to protect.  Must be freshly constructed (the
            manager snapshots the instance's packets at attach time).
        plan: The fault plan driving the run.  Node outages are read from
            it: packets resident at a down node are dropped at the top of
            the step.
        timeout: Steps a source waits after (re-)injection before
            re-injecting a fresh copy of an undelivered packet.
        max_retransmits: Retransmission budget per original packet.

    Attributes:
        delivered_at: original pid -> step its first copy arrived.
        retransmissions: Total copies injected.
        dropped_by_outage: Packets dropped because their node went down.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        timeout: int,
        max_retransmits: int = 3,
    ) -> None:
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {timeout}")
        if max_retransmits < 0:
            raise ValueError(
                f"max_retransmits must be >= 0, got {max_retransmits}"
            )
        if getattr(sim, "engine_name", "reference") != "reference":
            raise NotImplementedError(
                "ResilienceManager needs packet drops and dynamic"
                " retransmission, which the array engine does not support;"
                " construct the simulator with engine='reference'"
            )
        self.sim = sim
        self.plan = plan
        self.timeout = timeout
        self.max_retransmits = max_retransmits

        #: copy pid -> original pid (originals map to themselves).
        self.origin_of: dict[int, int] = {}
        #: original pid -> (source, dest, injection_time).
        self._original: dict[int, tuple[tuple[int, int], tuple[int, int], int]] = {}
        #: original pid -> live copy pids (queued or pending, undelivered).
        self._live: dict[int, set[int]] = {}
        #: pid -> Packet for every packet the manager may need to drop.
        self._packet_of: dict[int, Packet] = {}
        self.delivered_at: dict[int, int] = {}
        self._deadline: dict[int, int] = {}
        self._attempts: dict[int, int] = {}
        self.retransmissions = 0
        self.dropped_by_outage = 0
        self._seen_delivered: set[int] = set(sim.delivery_times)

        for p in list(sim.iter_packets()) + list(sim._pending):
            self._register_original(p)
        for pid, t in sim.delivery_times.items():  # delivered at load
            self.origin_of[pid] = pid
            self._original[pid] = ((0, 0), (0, 0), 0)
            self._live[pid] = set()
            self.delivered_at[pid] = t
        self._next_pid = max(self.origin_of, default=-1) + 1

        sim.pre_step_hooks.append(self._pre_step)
        sim.post_step_hooks.append(self._post_step)

    def _register_original(self, p: Packet) -> None:
        self.origin_of[p.pid] = p.pid
        self._original[p.pid] = (p.source, p.dest, p.injection_time)
        self._live[p.pid] = {p.pid}
        self._packet_of[p.pid] = p
        self._deadline[p.pid] = p.injection_time + self.timeout
        self._attempts[p.pid] = 0

    # -- step hooks ----------------------------------------------------------

    def _pre_step(self, sim: Simulator) -> None:
        now = sim.time
        self._drop_at_down_nodes(now)
        for orig, deadline in self._deadline.items():
            if (
                orig not in self.delivered_at
                and now >= deadline
                and self._attempts[orig] < self.max_retransmits
            ):
                self._retransmit(orig, now)

    def _drop_at_down_nodes(self, now: int) -> None:
        sim = self.sim
        for node in list(sim.queues):
            if self.plan.node_up(node, now):
                continue
            for p in sim.packets_at(node):
                sim.drop_packet(p)
                self._forget_copy(p.pid)
                self.dropped_by_outage += 1

    def _retransmit(self, orig: int, now: int) -> None:
        source, dest, _ = self._original[orig]
        pid = self._next_pid
        self._next_pid += 1
        copy = Packet(pid, source, dest, injection_time=now)
        self.sim.inject_packet(copy)
        self.origin_of[pid] = orig
        self._live[orig].add(pid)
        self._packet_of[pid] = copy
        self._attempts[orig] += 1
        self._deadline[orig] = now + self.timeout
        self.retransmissions += 1

    def _post_step(self, sim: Simulator, moves: list[ScheduledMove]) -> None:
        newly = [
            pid for pid in sim.delivery_times if pid not in self._seen_delivered
        ]
        for pid in newly:
            self._seen_delivered.add(pid)
            orig = self.origin_of[pid]
            self.delivered_at.setdefault(orig, sim.delivery_times[pid])
            self._forget_copy(pid)
            self._suppress_duplicates(orig)

    def _forget_copy(self, pid: int) -> None:
        self._live[self.origin_of[pid]].discard(pid)
        self._packet_of.pop(pid, None)

    def _suppress_duplicates(self, orig: int) -> None:
        """Drop every still-live copy of a resolved original."""
        for pid in sorted(self._live[orig]):
            packet = self._packet_of.pop(pid)
            if pid in self.sim._queue_of:
                self.sim.drop_packet(packet)
            else:
                self.sim.drop_pending(pid)
        self._live[orig].clear()

    # -- reporting -----------------------------------------------------------

    @property
    def settled(self) -> bool:
        """No future retransmission can occur: every original is either
        delivered or out of retransmission budget.  The faulty run loop
        keeps stepping past ``Simulator.done`` until this holds (dropped
        packets count as resolved there, but their sources may still owe
        a retransmit)."""
        return all(
            orig in self.delivered_at
            or self._attempts.get(orig, self.max_retransmits)
            >= self.max_retransmits
            for orig in self._original
        )

    @property
    def originals(self) -> int:
        return len(self._original)

    @property
    def delivered_fraction(self) -> float:
        if not self._original:
            return 1.0
        return len(self.delivered_at) / len(self._original)

    def latencies(self) -> list[int]:
        """Per delivered original: first-arrival step minus injection."""
        return sorted(
            t - self._original[orig][2] for orig, t in self.delivered_at.items()
        )

    def counters(self) -> dict[str, float | int]:
        return {
            "originals": self.originals,
            "delivered_originals": len(self.delivered_at),
            "retransmissions": self.retransmissions,
            "dropped_by_outage": self.dropped_by_outage,
        }
