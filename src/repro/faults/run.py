"""Faulty-run orchestration: one simulator, one fault plan, full telemetry.

:func:`run_faulty` wires the pieces the rest of the package provides into
a single measured run:

- the plan attaches as the simulator's ``link_filter`` (a scheduled move
  over a down link silently fails, like a refusal);
- the verify oracles attach in ``record`` mode by default, so invariant
  violations (queue overflow under flakiness, broken conservation) are
  *detected and counted* instead of aborting the run -- exactly what an
  availability sweep wants;
- optionally a :class:`~repro.faults.resilience.ResilienceManager`
  provides retransmission and node-outage drops;
- degradation metrics -- delivered fraction and latency percentiles --
  are computed over *original* packets (retransmitted copies count toward
  their original's delivery, never as extra traffic).

The result is a :class:`FaultyRunReport` whose :meth:`~FaultyRunReport.to_metrics`
dict is deterministic: a pure function of (topology, algorithm, packets,
plan, parameters), byte-identical across worker counts and runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.analysis.stats import degradation_metrics, percentile, violation_counts
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResilienceManager
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import RunResult, Simulator
from repro.mesh.topology import Topology
from repro.verify.oracles import (
    MinimalityOracle,
    PacketConservationOracle,
    QueueBoundOracle,
    Violation,
    attach_checker,
)


# ``percentile`` moved to :mod:`repro.analysis.stats` (shared with the
# streaming layer); re-exported here for existing importers.
__all__ = ["FaultyRunReport", "percentile", "run_faulty"]


@dataclass
class FaultyRunReport:
    """Everything one faulty run produced.

    Attributes:
        result: The simulator's :class:`RunResult` (``total_packets``
            includes retransmitted copies; the degradation metrics below
            are per-original).
        violations: Invariant violations the oracles recorded.
        degradation: The per-original degradation metrics (also merged
            into ``result.counters``).
    """

    result: RunResult
    violations: list[Violation]
    degradation: dict[str, Any]

    @property
    def ok(self) -> bool:
        """No invariant was violated (delivery may still be partial)."""
        return not self.violations

    @property
    def overflowed(self) -> bool:
        """Some queue exceeded its capacity ``k`` during the run."""
        return any(v.oracle == QueueBoundOracle.name for v in self.violations)

    def to_metrics(self) -> dict[str, Any]:
        """Flat, JSON-serializable, deterministic metrics row."""
        r = self.result
        counts = violation_counts(self.violations)
        return {
            "completed": r.completed,
            "steps": r.steps,
            "delivered": r.delivered,
            "total_packets": r.total_packets,
            "max_queue_len": r.max_queue_len,
            "max_node_load": r.max_node_load,
            "total_moves": r.total_moves,
            "queue_bound_violations": counts.get(QueueBoundOracle.name, 0),
            "conservation_violations": counts.get(
                PacketConservationOracle.name, 0
            ),
            "minimality_violations": counts.get(MinimalityOracle.name, 0),
            **self.degradation,
        }


def run_faulty(
    topology: Topology,
    algorithm: RoutingAlgorithm,
    packets: Iterable[Packet],
    plan: FaultPlan,
    *,
    max_steps: int,
    retransmit_timeout: int = 0,
    max_retransmits: int = 3,
    oracle_mode: str = "record",
    engine: str = "reference",
) -> FaultyRunReport:
    """Run ``algorithm`` on ``packets`` under ``plan`` and measure it.

    Args:
        retransmit_timeout: 0 disables the resilience layer entirely;
            otherwise sources re-inject undelivered packets every
            ``retransmit_timeout`` steps (at most ``max_retransmits``
            times each) and node outages drop resident packets.
            Requires the reference engine (ResilienceManager raises on
            any other).
        oracle_mode: ``record`` (default) counts violations without
            aborting; ``strict`` raises on the first one (tests).
        engine: Step-engine to run on (``reference`` or ``array``);
            fault plans evaluate the same pure counter-hash draws on
            either, so results are byte-identical.

    The simulator runs with ``validate=False``: enforcement is exactly
    the oracles' job here, and record mode must be able to observe a
    queue overflow rather than die on the simulator's own check.
    """
    original_packets = list(packets)
    injection_time = {p.pid: p.injection_time for p in original_packets}

    sim = Simulator(
        topology, algorithm, original_packets, validate=False, engine=engine
    )
    plan.attach(sim)
    checker = attach_checker(
        sim,
        [PacketConservationOracle(), QueueBoundOracle(), MinimalityOracle()],
        mode=oracle_mode,
    )
    manager = (
        ResilienceManager(
            sim,
            plan,
            timeout=retransmit_timeout,
            max_retransmits=max_retransmits,
        )
        if retransmit_timeout > 0
        else None
    )

    if manager is None:
        result = sim.run(max_steps=max_steps)
    else:
        # ``Simulator.done`` counts dropped packets as resolved, but their
        # sources may still owe a retransmit whose deadline has not passed
        # -- keep stepping until the manager has no future work either.
        while sim.time < max_steps and not (sim.done and manager.settled):
            sim.step()
        result = sim.result()
    checker.finish()

    if manager is not None:
        delivered, total = len(manager.delivered_at), manager.originals
        latencies = manager.latencies()
        extra = dict(manager.counters())
    else:
        delivered, total = result.delivered, result.total_packets
        latencies = sorted(
            t - injection_time[pid] for pid, t in result.delivery_times.items()
        )
        extra = {"retransmissions": 0, "dropped_by_outage": 0}
    # Report the engine that actually ran: "array" silently falls back to
    # "reference" for unported routers, and a fault sweep must not claim
    # array-engine coverage it did not get.
    extra["engine"] = sim.engine_name

    degradation = degradation_metrics(
        delivered=delivered,
        total=total,
        latencies=latencies,
        dropped=len(sim.dropped),
        extra=extra,
    )
    result.counters.update(degradation)
    return FaultyRunReport(
        result=result, violations=list(checker.violations), degradation=degradation
    )
