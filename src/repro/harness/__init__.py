"""Campaign harness: parallel, cached, resumable experiment orchestration.

The experiment scripts under ``benchmarks/`` all share one shape: sweep a
grid over mesh size ``n``, queue bound ``k``, algorithm, and workload, run
one deterministic trial per grid point, and tabulate the results.  This
package turns that shape into infrastructure:

- :mod:`repro.harness.specs` -- declarative :class:`TrialSpec` /
  :class:`CampaignSpec` descriptions of a sweep, JSON-loadable, with a
  content-addressed cache key per trial;
- :mod:`repro.harness.execute` -- the single entrypoint that turns a
  ``TrialSpec`` into a deterministic metrics dict;
- :mod:`repro.harness.runner` -- a ``multiprocessing`` worker pool that
  shards trials across cores with per-trial timeout and error capture;
- :mod:`repro.harness.store` -- the JSONL result store under
  ``campaigns/`` that makes re-runs skip completed trials;
- :mod:`repro.harness.telemetry` -- the stderr progress reporter and the
  manifest summary.

See ``docs/HARNESS.md`` for the file formats and cache-key semantics.
"""

from repro.harness.execute import build_router, build_workload, execute_trial
from repro.harness.runner import CampaignRunResult, TrialResult, run_campaign
from repro.harness.specs import CampaignSpec, TrialSpec, code_version, trial_key
from repro.harness.store import ResultStore
from repro.harness.telemetry import ProgressReporter

__all__ = [
    "CampaignSpec",
    "TrialSpec",
    "code_version",
    "trial_key",
    "execute_trial",
    "build_router",
    "build_workload",
    "run_campaign",
    "CampaignRunResult",
    "TrialResult",
    "ResultStore",
    "ProgressReporter",
]
