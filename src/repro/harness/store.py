"""Content-addressed result store under ``campaigns/``.

Layout::

    campaigns/
      cache/<key>.json           one completed trial per file, key =
                                 SHA-256(canonical spec + code version)
      <name>/results.jsonl       the campaign's ordered result rows
      <name>/manifest.json       run telemetry: per-trial status, wall
                                 time, cached flags, failure messages

Cache entries are written as each trial completes, so an interrupted
campaign loses nothing: the next run (``--resume`` or a plain re-run)
looks every trial up by key and re-executes only the missing ones.  Only
successful trials are cached -- failures and timeouts always re-run.

``results.jsonl`` rows contain only the trial's identity and its
deterministic metrics (never wall time), so a 4-worker run and a serial
run of the same campaign produce byte-identical files.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any

DEFAULT_BASE_DIR = "campaigns"


class ResultStore:
    """Filesystem-backed cache + per-campaign results and manifests."""

    def __init__(self, base_dir: str | pathlib.Path = DEFAULT_BASE_DIR) -> None:
        self.base_dir = pathlib.Path(base_dir)
        self.cache_dir = self.base_dir / "cache"

    # -- trial cache --------------------------------------------------------

    def cache_path(self, key: str) -> pathlib.Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached record for ``key``, or None (corrupt entries miss)."""
        path = self.cache_path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("key") != key or "metrics" not in record:
            return None
        return record

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Atomically persist one completed trial."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.cache_path(key), record)

    def evict(self, key: str) -> None:
        self.cache_path(key).unlink(missing_ok=True)

    # -- per-campaign artifacts ---------------------------------------------

    def campaign_dir(self, name: str) -> pathlib.Path:
        return self.base_dir / name

    def results_path(self, name: str) -> pathlib.Path:
        return self.campaign_dir(name) / "results.jsonl"

    def manifest_path(self, name: str) -> pathlib.Path:
        return self.campaign_dir(name) / "manifest.json"

    def write_results(self, name: str, records: list[dict[str, Any]]) -> pathlib.Path:
        """Write the ordered result rows; one canonical-JSON object per line."""
        path = self.results_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in records
        )
        _atomic_write_text(path, text)
        return path

    def read_results(self, name: str) -> list[dict[str, Any]]:
        path = self.results_path(name)
        if not path.exists():
            raise FileNotFoundError(
                f"no results for campaign {name!r} under {self.base_dir} "
                f"(expected {path}); run it first"
            )
        return [json.loads(line) for line in path.read_text().splitlines() if line]

    def write_manifest(self, name: str, manifest: dict[str, Any]) -> pathlib.Path:
        path = self.manifest_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(path, manifest, indent=2)
        return path

    def read_manifest(self, name: str) -> dict[str, Any]:
        path = self.manifest_path(name)
        if not path.exists():
            raise FileNotFoundError(
                f"no manifest for campaign {name!r} under {self.base_dir} "
                f"(expected {path}); run it first"
            )
        return json.loads(path.read_text())

    def list_campaigns(self) -> list[str]:
        if not self.base_dir.exists():
            return []
        return sorted(
            p.name
            for p in self.base_dir.iterdir()
            if p.is_dir() and p.name != "cache" and (p / "manifest.json").exists()
        )


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        pathlib.Path(tmp).unlink(missing_ok=True)
        raise


def _atomic_write_json(path: pathlib.Path, data: Any, indent: int | None = None) -> None:
    _atomic_write_text(path, json.dumps(data, sort_keys=True, indent=indent) + "\n")
