"""Declarative experiment specs and their content-addressed cache keys.

A :class:`TrialSpec` is one deterministic experiment: a trial kind plus
every parameter that influences its outcome.  A :class:`CampaignSpec` is an
ordered list of trials, written either explicitly or as a grid sweep that
is expanded at load time.  Both are plain dataclasses with a canonical JSON
form, so a trial's identity can be hashed: the cache key is the SHA-256 of
the canonical spec plus the current code-version tag, which means editing
the routing code invalidates every cached result automatically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
from dataclasses import dataclass, field, fields
from typing import Any, Iterable

TRIAL_KINDS = (
    "route",
    "lower_bound",
    "section6",
    "sort_route",
    "verify",
    "analyze",
    "bounds",
    "bench",
    "faults",
    "streaming",
)

#: Arrival-process names a ``streaming`` trial may use (mirrors
#: ``repro.streaming.arrivals.PROCESS_NAMES``; duplicated literally so the
#: spec layer stays import-light -- a test asserts the two agree).
STREAMING_ARRIVALS = ("poisson", "onoff", "hotspot")

ROUTE_ALGORITHMS = (
    "dor",
    "bounded-dor",
    "farthest-first",
    "greedy-adaptive",
    "alternating-adaptive",
    "hot-potato",
    "randomized-adaptive",
    "bounded-excursion",
    "credit-adaptive",
)

#: Named analysis topologies a ``route``/``bench`` trial may select
#: (mirrors ``repro.mesh.ndtopology.TOPOLOGY_NAMES``; duplicated literally
#: so the spec layer stays import-light -- a test asserts the two agree).
TOPOLOGY_CHOICES = ("mesh", "torus", "mesh3d", "torus3d", "pillar")

#: Topologies beyond the classic 2D pair.  The historical routers hard-code
#: the four compass directions, so only dimension-generic algorithms are
#: valid here (mirrors ``RouterEntry.topologies`` in the differential
#: registry; a test asserts the two agree).
ND_TOPOLOGIES = ("mesh3d", "torus3d", "pillar")
ND_ALGORITHMS = ("credit-adaptive",)

#: Algorithms a ``faults`` trial may exercise: every route algorithm plus
#: the resilience-layer routers (see repro.faults).
FAULT_ALGORITHMS = ROUTE_ALGORITHMS + ("conservative-bounded-dor", "fault-reroute")

CONSTRUCTIONS = ("adaptive", "dor", "ff", "torus", "hh")

#: Victim algorithm used by each construction when the spec leaves
#: ``algorithm`` empty.
DEFAULT_VICTIMS = {
    "adaptive": "greedy-adaptive",
    "torus": "greedy-adaptive",
    "dor": "bounded-dor",
    "ff": "farthest-first",
    "hh": "greedy-adaptive",
}

WORKLOADS = ("random", "partial", "transpose", "bit-reversal", "rotation")

#: Workload families a ``verify`` trial may fuzz (see repro.verify).
VERIFY_FAMILIES = (
    "permutation",
    "hh",
    "torus",
    "dynamic",
    "mesh3d",
    "torus3d",
    "pillar",
)

#: Step engines a simulator-driving trial may request (see
#: ``Simulator(engine=...)``; "array" falls back to "reference" for
#: unported routers).
ENGINES = ("reference", "array")

#: Engines an ``analyze`` trial may run (see repro.analysis.static_check).
ANALYZE_ENGINES = ("cdg", "bounds", "lint", "all")


@dataclass(frozen=True)
class TrialSpec:
    """One deterministic experiment, fully described by its parameters.

    Every field except ``label`` participates in the cache key, so two
    trials with equal canonical forms are interchangeable.  ``label`` is a
    cosmetic annotation carried through to tables and manifests.
    """

    kind: str
    n: int
    k: int = 1
    algorithm: str = ""
    construction: str = ""
    workload: str = "random"
    seed: int = 0
    queues: str = "central"
    delta: int = 1
    h: int = 2
    torus: bool = False
    #: ``route``/``bench`` trials: a named analysis topology
    #: (TOPOLOGY_CHOICES).  Empty keeps the historical behaviour where
    #: ``torus`` alone picks between the two 2D topologies; setting both
    #: ``topology`` and ``torus`` is rejected as contradictory.
    topology: str = ""
    improved: bool = False
    availability: float = 1.0
    max_steps: int = 1_000_000
    run_to_completion: bool = True
    #: ``faults`` trials only: steps a source waits before re-injecting an
    #: undelivered packet (0 disables the resilience layer).
    retransmit_timeout: int = 0
    #: ``faults`` trials only: retransmission budget per original packet.
    max_retransmits: int = 3
    #: ``faults`` trials only: mean steps up / down per node-outage renewal
    #: cycle (both 0 disables node outages; see repro.faults.plan).
    mttf: int = 0
    mttr: int = 0
    #: ``streaming`` trials only: nominal injection rate in packets per node
    #: per step offered by the arrival process.
    rate: float = 0.1
    #: ``streaming`` trials only: arrival-process name (STREAMING_ARRIVALS).
    arrival: str = "poisson"
    #: ``streaming`` trials only: warmup / measured / drain window lengths
    #: in steps (see repro.streaming.run).
    warmup: int = 64
    measure: int = 256
    drain: int = 512
    #: Step engine: "reference" (the per-packet-object simulator) or
    #: "array" (the vectorized backend; silently falls back to the
    #: reference engine for routers it has not ported).  Honoured by
    #: ``route``, ``bench``, and ``streaming`` trials.
    engine: str = "reference"
    label: str = ""

    def validate(self) -> None:
        if self.kind not in TRIAL_KINDS:
            raise ValueError(f"unknown trial kind {self.kind!r}; expected one of {TRIAL_KINDS}")
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if self.kind in ("route", "bench") and self.algorithm not in ROUTE_ALGORITHMS:
            raise ValueError(
                f"unknown {self.kind} algorithm {self.algorithm!r}; "
                f"expected one of {ROUTE_ALGORITHMS}"
            )
        if self.topology:
            if self.topology not in TOPOLOGY_CHOICES:
                raise ValueError(
                    f"unknown topology {self.topology!r}; "
                    f"expected one of {TOPOLOGY_CHOICES}"
                )
            if self.kind not in ("route", "bench"):
                raise ValueError(
                    f"the topology field applies to route/bench trials only, "
                    f"got kind {self.kind!r}"
                )
            if self.torus:
                raise ValueError(
                    "set either 'topology' or 'torus', not both "
                    "(torus=True is shorthand for topology='torus')"
                )
            if self.topology in ND_TOPOLOGIES and self.algorithm not in ND_ALGORITHMS:
                raise ValueError(
                    f"algorithm {self.algorithm!r} is 2D-only; topologies in "
                    f"{ND_TOPOLOGIES} need one of {ND_ALGORITHMS}"
                )
        if self.kind == "lower_bound":
            if self.construction not in CONSTRUCTIONS:
                raise ValueError(
                    f"unknown construction {self.construction!r}; expected one of {CONSTRUCTIONS}"
                )
            victim = self.algorithm or DEFAULT_VICTIMS[self.construction]
            allowed = _victim_choices(self.construction)
            if victim not in allowed:
                raise ValueError(
                    f"construction {self.construction!r} cannot attack {victim!r}; "
                    f"expected one of {allowed}"
                )
        if (
            self.kind in ("route", "section6", "sort_route", "bench")
            and self.workload not in WORKLOADS
        ):
            raise ValueError(f"unknown workload {self.workload!r}; expected one of {WORKLOADS}")
        if self.kind == "verify":
            if self.workload not in VERIFY_FAMILIES:
                raise ValueError(
                    f"verify trials fuzz a workload family, one of {VERIFY_FAMILIES}; "
                    f"got {self.workload!r}"
                )
            if self.algorithm and self.algorithm not in ROUTE_ALGORITHMS:
                raise ValueError(
                    f"unknown verify router {self.algorithm!r}; "
                    f"expected one of {ROUTE_ALGORITHMS} (or empty for all)"
                )
        if self.kind == "analyze":
            if self.workload not in ANALYZE_ENGINES:
                raise ValueError(
                    f"analyze trials name an engine in ``workload``, one of "
                    f"{ANALYZE_ENGINES}; got {self.workload!r}"
                )
            if self.algorithm and self.algorithm not in ROUTE_ALGORITHMS:
                raise ValueError(
                    f"unknown analyze router {self.algorithm!r}; "
                    f"expected one of {ROUTE_ALGORITHMS} (or empty for all)"
                )
        if self.kind == "bounds":
            if self.algorithm and self.algorithm not in ROUTE_ALGORITHMS:
                raise ValueError(
                    f"unknown bounds router {self.algorithm!r}; "
                    f"expected one of {ROUTE_ALGORITHMS} (or empty for all)"
                )
        if self.kind == "faults":
            if self.algorithm not in FAULT_ALGORITHMS:
                raise ValueError(
                    f"unknown faults algorithm {self.algorithm!r}; "
                    f"expected one of {FAULT_ALGORITHMS}"
                )
            if self.workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {self.workload!r}; expected one of {WORKLOADS}"
                )
            if self.algorithm == "fault-reroute" and self.torus:
                raise ValueError(
                    "fault-reroute requires a mesh: the excursion rectangle "
                    "is undefined on a wrapping topology"
                )
        if self.kind == "streaming":
            if self.algorithm not in ROUTE_ALGORITHMS:
                raise ValueError(
                    f"unknown streaming algorithm {self.algorithm!r}; "
                    f"expected one of {ROUTE_ALGORITHMS}"
                )
            if self.arrival not in STREAMING_ARRIVALS:
                raise ValueError(
                    f"unknown arrival process {self.arrival!r}; "
                    f"expected one of {STREAMING_ARRIVALS}"
                )
        if self.rate < 0.0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.measure < 1:
            raise ValueError(f"measure must be >= 1, got {self.measure}")
        if self.drain < 0:
            raise ValueError(f"drain must be >= 0, got {self.drain}")
        if self.retransmit_timeout < 0:
            raise ValueError(
                f"retransmit_timeout must be >= 0, got {self.retransmit_timeout}"
            )
        if self.max_retransmits < 0:
            raise ValueError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )
        if self.mttf < 0 or self.mttr < 0:
            raise ValueError(
                f"mttf and mttr must be >= 0, got {self.mttf}, {self.mttr}"
            )
        if (self.mttf > 0) != (self.mttr > 0):
            raise ValueError(
                "mttf and mttr must be set together (a renewal outage "
                f"process needs both), got mttf={self.mttf}, mttr={self.mttr}"
            )
        if self.queues not in ("central", "incoming"):
            raise ValueError(f"queues must be 'central' or 'incoming', got {self.queues!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(f"availability must be in (0, 1], got {self.availability}")
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")

    def canonical(self) -> dict[str, Any]:
        """The identity-defining dict: every field except ``label``."""
        return {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "label"
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> dict[str, Any]:
        data = self.canonical()
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrialSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TrialSpec fields: {sorted(unknown)}")
        spec = cls(**data)
        spec.validate()
        return spec


def _victim_choices(construction: str) -> tuple[str, ...]:
    if construction in ("adaptive", "torus", "hh"):
        return ("greedy-adaptive", "alternating-adaptive")
    if construction == "dor":
        return ("bounded-dor",)
    return ("farthest-first",)


def code_version() -> str:
    """A short tag identifying the current source tree.

    The tag is the SHA-256 over every ``repro`` source file, so any code
    edit changes every cache key and stale results are never reused.  Set
    ``REPRO_CODE_VERSION`` to pin the tag explicitly (used in tests and for
    cross-machine reproducibility checks).
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_dir = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:12]
    return _CODE_VERSION


_CODE_VERSION: str | None = None


def trial_key(spec: TrialSpec, version: str | None = None) -> str:
    """Content-addressed cache key: SHA-256(canonical spec + code version)."""
    payload = spec.canonical_json() + "\n" + (version or code_version())
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CampaignSpec:
    """An ordered list of trials plus campaign-level settings.

    JSON form (see ``docs/HARNESS.md``)::

        {
          "name": "e1_lower_bound_adaptive",
          "description": "...",
          "timeout_s": 600,
          "trials": [ {...trial...}, ... ],
          "sweep": [ {"kind": "route", "n": [8, 16], "seeds": 3}, ... ]
        }

    ``trials`` entries are literal :class:`TrialSpec` dicts.  ``sweep``
    entries are grids: any field may be a list, and the cartesian product is
    expanded in the order the fields appear; ``"seeds": m`` is shorthand for
    ``"seed": [0, ..., m-1]``.  Explicit trials come first, then each grid's
    expansion, preserving order -- trial order defines result-row order.
    """

    name: str
    trials: list[TrialSpec]
    description: str = ""
    timeout_s: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not all(c.isalnum() or c in "-_." for c in self.name):
            raise ValueError(
                f"campaign name must be a nonempty filesystem-safe slug, got {self.name!r}"
            )
        if not self.trials:
            raise ValueError(f"campaign {self.name!r} has no trials")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        known = {"name", "description", "timeout_s", "trials", "sweep", "metadata"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CampaignSpec fields: {sorted(unknown)}")
        trials = [TrialSpec.from_dict(entry) for entry in data.get("trials", [])]
        for grid in data.get("sweep", []):
            trials.extend(expand_grid(grid))
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            timeout_s=data.get("timeout_s"),
            metadata=data.get("metadata", {}),
            trials=trials,
        )

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "CampaignSpec":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed campaign spec {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"campaign spec {path} must be a JSON object")
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name}
        if self.description:
            data["description"] = self.description
        if self.timeout_s is not None:
            data["timeout_s"] = self.timeout_s
        if self.metadata:
            data["metadata"] = self.metadata
        data["trials"] = [t.to_dict() for t in self.trials]
        return data

    def keys(self, version: str | None = None) -> list[str]:
        version = version or code_version()
        return [trial_key(t, version) for t in self.trials]


def expand_grid(grid: dict[str, Any]) -> list[TrialSpec]:
    """Expand one sweep grid into trials, cartesian-product in field order."""
    grid = dict(grid)
    if "seeds" in grid:
        if "seed" in grid:
            raise ValueError("a sweep grid cannot set both 'seed' and 'seeds'")
        grid["seed"] = list(range(int(grid.pop("seeds"))))
    names = list(grid)
    axes: list[Iterable[Any]] = [
        value if isinstance(value, list) else [value] for value in grid.values()
    ]
    return [
        TrialSpec.from_dict(dict(zip(names, combo))) for combo in itertools.product(*axes)
    ]
