"""Trial execution: turn one :class:`TrialSpec` into a metrics dict.

This is the single entrypoint worker processes call.  Every value in the
returned dict is JSON-serializable and fully determined by the spec, so
equal specs produce byte-identical stored rows regardless of which worker
(or how many workers) ran them.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core import (
    AdaptiveLowerBoundConstruction,
    DorLowerBoundConstruction,
    FfLowerBoundConstruction,
    replay_constructed_permutation,
)
from repro.core.bounds import diameter_bound
from repro.core.extensions import HhLowerBoundConstruction, TorusLowerBoundConstruction
from repro.harness.specs import DEFAULT_VICTIMS, TrialSpec
from repro.mesh import Mesh, Simulator, Torus
from repro.mesh.interfaces import RoutingAlgorithm
from repro.routing import (
    AlternatingAdaptiveRouter,
    BoundedDimensionOrderRouter,
    BoundedExcursionRouter,
    CreditAdaptiveRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
    RandomizedAdaptiveRouter,
    ShearsortRouter,
)
from repro.workloads import (
    bit_reversal_permutation,
    random_partial_permutation,
    random_permutation,
    rotation_permutation,
    transpose_permutation,
)


def build_workload(name: str, topology, seed: int):
    """The named workload on ``topology`` (shared with the CLI)."""
    if name == "random":
        return random_permutation(topology, seed=seed)
    if name == "partial":
        return random_partial_permutation(topology, 0.5, seed=seed)
    if name == "transpose":
        return transpose_permutation(topology)
    if name == "bit-reversal":
        return bit_reversal_permutation(topology)
    if name == "rotation":
        # One shift per axis; in 2D this is the historical (w // 2, h // 3).
        shifts = (side // (axis + 2) for axis, side in enumerate(topology.shape))
        return rotation_permutation(topology, *shifts)
    raise ValueError(f"unknown workload {name!r}")


def build_trial_topology(spec: TrialSpec):
    """The topology a simulator-driving trial runs on.

    ``spec.topology`` names any registered analysis topology (the validated
    spec guarantees the algorithm can route on it); empty falls back to the
    historical ``torus`` flag choosing between the two 2D topologies.
    """
    if spec.topology:
        from repro.mesh import build_topology

        return build_topology(spec.topology, spec.n)
    return Torus(spec.n) if spec.torus else Mesh(spec.n)


def build_router(spec: TrialSpec) -> RoutingAlgorithm:
    """The routing algorithm a ``route`` trial exercises."""
    a = spec.algorithm
    if a == "dor":
        return DimensionOrderRouter(spec.k)
    if a == "bounded-dor":
        return BoundedDimensionOrderRouter(spec.k)
    if a == "farthest-first":
        return FarthestFirstRouter(spec.k, spec.queues)
    if a == "greedy-adaptive":
        return GreedyAdaptiveRouter(spec.k, spec.queues)
    if a == "alternating-adaptive":
        return AlternatingAdaptiveRouter(spec.k, spec.queues)
    if a == "hot-potato":
        return HotPotatoRouter()
    if a == "randomized-adaptive":
        return RandomizedAdaptiveRouter(spec.k, spec.seed, spec.queues)
    if a == "bounded-excursion":
        return BoundedExcursionRouter(spec.k, spec.delta, spec.queues)
    if a == "credit-adaptive":
        return CreditAdaptiveRouter(spec.k)
    raise ValueError(f"unknown route algorithm {a!r}")


def _victim_factory(spec: TrialSpec) -> Callable[[], RoutingAlgorithm]:
    victim = spec.algorithm or DEFAULT_VICTIMS[spec.construction]
    k = max(spec.k, spec.h) if spec.construction == "hh" else spec.k
    if victim == "greedy-adaptive":
        return lambda: GreedyAdaptiveRouter(k)
    if victim == "alternating-adaptive":
        return lambda: AlternatingAdaptiveRouter(k)
    if victim == "bounded-dor":
        return lambda: BoundedDimensionOrderRouter(k)
    if victim == "farthest-first":
        return lambda: FarthestFirstRouter(k)
    raise ValueError(f"unknown victim algorithm {victim!r}")


def _run_route(spec: TrialSpec) -> dict[str, Any]:
    topology = build_trial_topology(spec)
    algorithm = build_router(spec)
    packets = build_workload(spec.workload, topology, spec.seed)
    sim = Simulator(topology, algorithm, packets, engine=spec.engine)
    if spec.availability < 1.0:
        from repro.mesh.asynchrony import make_async

        make_async(sim, spec.availability, seed=spec.seed)
    result = sim.run(max_steps=spec.max_steps)
    return {
        "algorithm_name": algorithm.name,
        "engine": sim.engine_name,
        "completed": result.completed,
        "steps": result.steps,
        "delivered": result.delivered,
        "total_packets": result.total_packets,
        "max_queue_len": result.max_queue_len,
        "max_node_load": result.max_node_load,
        "total_moves": result.total_moves,
        "diameter": topology.diameter,
    }


def _run_lower_bound(spec: TrialSpec) -> dict[str, Any]:
    factory = _victim_factory(spec)
    topology = None
    if spec.construction == "adaptive":
        con = AdaptiveLowerBoundConstruction(spec.n, factory)
    elif spec.construction == "torus":
        con = TorusLowerBoundConstruction(spec.n, factory)
        topology = con.topology
    elif spec.construction == "dor":
        con = DorLowerBoundConstruction(spec.n, factory)
    elif spec.construction == "ff":
        con = FfLowerBoundConstruction(spec.n, factory)
    elif spec.construction == "hh":
        con = HhLowerBoundConstruction(spec.n, spec.h, factory)
    else:
        raise ValueError(f"unknown construction {spec.construction!r}")

    result = con.run()
    report = replay_constructed_permutation(
        result,
        factory,
        topology=topology,
        run_to_completion=spec.run_to_completion,
        max_steps=spec.max_steps,
    )
    return {
        "victim": spec.algorithm or DEFAULT_VICTIMS[spec.construction],
        "bound_steps": result.bound_steps,
        "exchange_count": result.exchange_count,
        "undelivered_at_bound": report.undelivered_at_bound,
        "configuration_matches": report.configuration_matches,
        "delivery_times_match": report.delivery_times_match,
        "completed": report.completed,
        "measured_steps": report.total_steps if report.completed else None,
        "max_queue_len": report.max_queue_len,
        "k_node": con.k,
        "diameter": diameter_bound(spec.n),
    }


def _run_section6(spec: TrialSpec) -> dict[str, Any]:
    from repro.tiling import Section6Router

    mesh = Mesh(spec.n)
    packets = build_workload(spec.workload, mesh, spec.seed)
    result = Section6Router(spec.n, improved=spec.improved, record_phases=False).route(
        packets
    )
    return {
        "completed": result.completed,
        "delivered": result.delivered,
        "total_packets": result.total_packets,
        "actual_steps": result.actual_steps,
        "scheduled_steps": result.scheduled_steps,
        "paper_time_bound": result.paper_time_bound,
        "max_node_load": result.max_node_load,
        "paper_queue_bound": result.paper_queue_bound,
    }


def _run_sort_route(spec: TrialSpec) -> dict[str, Any]:
    mesh = Mesh(spec.n)
    packets = build_workload(spec.workload, mesh, spec.seed)
    result = ShearsortRouter(spec.n).route(packets)
    return {
        "completed": result.completed,
        "total_steps": result.total_steps,
        "max_node_load": result.max_node_load,
    }


def _run_verify(spec: TrialSpec) -> dict[str, Any]:
    """One differential-verification cell (see repro.verify.differential).

    ``workload`` names the family, and ``algorithm`` may pin the sweep to a
    single registered router (empty = all).  The trial *fails* (raises) when
    the cell has findings, so campaign telemetry surfaces broken invariants
    the same way it surfaces crashed trials.
    """
    from repro.verify import cross_check

    report = cross_check(
        spec.workload,
        spec.n,
        spec.k,
        spec.seed,
        routers=[spec.algorithm] if spec.algorithm else None,
        mode="record",
    )
    metrics = report.to_metrics()
    if not report.ok:
        raise AssertionError(
            f"verify cell {spec.workload} n={spec.n} k={spec.k} seed={spec.seed}: "
            + "; ".join(report.findings)
        )
    return metrics


def _run_analyze(spec: TrialSpec) -> dict[str, Any]:
    """One static-analysis cell (see repro.analysis.static_check).

    ``workload`` names the engine (``cdg``, ``bounds``, ``lint`` or
    ``all``) and ``algorithm`` may pin the CDG/bounds sweep to one
    registered router.  Like ``verify`` trials, a cell with findings
    *fails* (raises) so campaign telemetry surfaces static regressions
    like crashed trials.
    """
    from repro.analysis.static_check import (
        analyze_registry,
        check_agreement,
        diff_against_baseline,
        run_lint,
    )

    metrics: dict[str, Any] = {}
    findings: list[str] = []
    if spec.workload in ("cdg", "all"):
        verdicts = analyze_registry(
            ns=(spec.n,),
            ks=(spec.k,),
            routers=[spec.algorithm] if spec.algorithm else None,
        )
        metrics["verdicts"] = len(verdicts)
        metrics["cyclic"] = sum(v.verdict == "CYCLIC" for v in verdicts)
        metrics["deadlock_free"] = sum(
            v.verdict == "DEADLOCK_FREE" for v in verdicts
        )
        findings.extend(check_agreement(verdicts))
    if spec.workload in ("bounds", "all"):
        bounds_metrics, bounds_findings = _bounds_cell(spec)
        metrics.update(bounds_metrics)
        findings.extend(bounds_findings)
    if spec.workload in ("lint", "all"):
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).resolve().parents[2]
        new, _fixed = diff_against_baseline(run_lint(root))
        metrics["lint_new"] = len(new)
        findings.extend(str(v) for v in new)
    if findings:
        raise AssertionError(
            f"analyze {spec.workload} n={spec.n} k={spec.k}: "
            + "; ".join(findings)
        )
    return metrics


def _bounds_cell(spec: TrialSpec) -> tuple[dict[str, Any], list[str]]:
    """Shared body of ``bounds`` trials and ``analyze`` bounds cells."""
    from repro.analysis.static_check import (
        certify_registry,
        check_bounds_agreement,
    )

    verdicts = certify_registry(
        ns=(spec.n,),
        ks=(spec.k,),
        routers=(spec.algorithm,) if spec.algorithm else None,
    )
    metrics = {
        "bounds_verdicts": len(verdicts),
        "bounded": sum(v.verdict == "BOUNDED" for v in verdicts),
        "unbounded": sum(v.verdict == "UNBOUNDED" for v in verdicts),
    }
    findings = check_bounds_agreement(verdicts, n=spec.n, ks=(spec.k,))
    return metrics, findings


def _run_bounds(spec: TrialSpec) -> dict[str, Any]:
    """One queue-bound certification cell (repro.analysis.static_check.bounds).

    Certifies every registered router (or the one pinned by
    ``algorithm``) at the cell's ``(n, k)`` and cross-checks the verdicts
    against the runtime ``QueueBoundOracle``; a disagreement raises, like
    a failed ``verify`` trial.
    """
    metrics, findings = _bounds_cell(spec)
    if findings:
        raise AssertionError(
            f"bounds n={spec.n} k={spec.k}: " + "; ".join(findings)
        )
    return metrics


def _run_bench(spec: TrialSpec) -> dict[str, Any]:
    """One throughput cell of the tracked benchmark (docs/PERFORMANCE.md).

    Routes the same instance a ``route`` trial would, but in benchmark
    configuration: validation off, series recording off, and a
    :class:`repro.perf.StepInstrumentation` probe attached.  The returned
    metrics keep the two regimes apart: the top-level fields are
    deterministic functions of the spec, while everything under
    ``"timing"`` is wall-clock and machine-dependent.  Because of that
    ``timing`` block, bench trials must be run with ``fresh=True`` (the
    ``repro bench`` command always does) -- a cached timing is not a
    measurement.

    Repetition policy: best-of-3 at every size (the former single-run
    policy at n >= 128 made large-cell baselines noisier than small ones).
    """
    from repro.perf import StepInstrumentation

    topology = build_trial_topology(spec)
    repeats = 3
    best_result = None
    best_name = ""
    engine_name = spec.engine
    for _ in range(repeats):
        algorithm = build_router(spec)
        packets = build_workload(spec.workload, topology, spec.seed)
        sim = Simulator(topology, algorithm, packets, validate=False, engine=spec.engine)
        sim.instrument = StepInstrumentation()
        engine_name = sim.engine_name
        result = sim.run(max_steps=spec.max_steps)
        if (
            best_result is None
            or result.counters["wall_s"] < best_result.counters["wall_s"]
        ):
            best_result = result
            best_name = algorithm.name
    counters = best_result.counters
    deterministic_keys = (
        "scheduled_moves",
        "accepted_moves",
        "refused_moves",
        "injected_packets",
    )
    return {
        "algorithm_name": best_name,
        "engine": engine_name,
        "completed": best_result.completed,
        "steps": best_result.steps,
        "delivered": best_result.delivered,
        "total_packets": best_result.total_packets,
        "total_moves": best_result.total_moves,
        "max_queue_len": best_result.max_queue_len,
        "max_node_load": best_result.max_node_load,
        "scheduled_moves": counters["scheduled_moves"],
        "refused_moves": counters["refused_moves"],
        "injected_packets": counters["injected_packets"],
        "repeats": repeats,
        "timing": {
            key: value
            for key, value in counters.items()
            if key not in deterministic_keys
        },
    }


def _run_faults(spec: TrialSpec) -> dict[str, Any]:
    """One fault-injection cell (see repro.faults and docs/FAULTS.md).

    ``availability`` drives an i.i.d. Bernoulli link plan; ``mttf``/
    ``mttr`` add a renewal node-outage process; ``retransmit_timeout``
    enables the resilience layer.  The oracles run in record mode, so an
    overflow under faults is *reported* in the metrics
    (``queue_bound_violations``), not raised -- detecting which algorithms
    break is the point of the sweep.
    """
    from repro.faults import (
        BernoulliLinkPlan,
        CompositeFaultPlan,
        ConservativeBoundedDimensionOrderRouter,
        FaultAwareRerouteRouter,
        FaultPlan,
        RenewalOutagePlan,
        run_faulty,
    )

    topology = Torus(spec.n) if spec.torus else Mesh(spec.n)
    plans: list[FaultPlan] = [BernoulliLinkPlan(spec.availability, seed=spec.seed)]
    if spec.mttf > 0:
        plans.append(
            RenewalOutagePlan(spec.mttf, spec.mttr, seed=spec.seed + 1, scope="node")
        )
    plan = plans[0] if len(plans) == 1 else CompositeFaultPlan(*plans)

    if spec.algorithm == "conservative-bounded-dor":
        algorithm: RoutingAlgorithm = ConservativeBoundedDimensionOrderRouter(spec.k)
    elif spec.algorithm == "fault-reroute":
        algorithm = FaultAwareRerouteRouter(
            ConservativeBoundedDimensionOrderRouter(spec.k), plan, delta=spec.delta
        )
    else:
        algorithm = build_router(spec)

    packets = build_workload(spec.workload, topology, spec.seed)
    report = run_faulty(
        topology,
        algorithm,
        packets,
        plan,
        max_steps=spec.max_steps,
        retransmit_timeout=spec.retransmit_timeout,
        max_retransmits=spec.max_retransmits,
        engine=spec.engine,
    )
    return {"algorithm_name": algorithm.name, **report.to_metrics()}


def _run_streaming(spec: TrialSpec) -> dict[str, Any]:
    """One open-loop streaming cell (see repro.streaming, docs/STREAMING.md).

    ``rate``/``arrival`` configure the arrival process, ``warmup``/
    ``measure``/``drain`` the windows.  Oracles run in record mode: a
    wedged or overflowing network is a *result* of the sweep
    (``stalled`` / ``queue_bound_violations``), not an error.
    """
    from repro.streaming import build_process, run_streaming

    topology = Torus(spec.n) if spec.torus else Mesh(spec.n)
    algorithm = build_router(spec)
    process = build_process(spec.arrival, spec.rate, seed=spec.seed)
    report = run_streaming(
        topology,
        algorithm,
        process,
        warmup=spec.warmup,
        measure=spec.measure,
        drain=spec.drain,
        engine=spec.engine,
    )
    return {"algorithm_name": algorithm.name, **report.to_metrics()}


_RUNNERS = {
    "route": _run_route,
    "lower_bound": _run_lower_bound,
    "section6": _run_section6,
    "sort_route": _run_sort_route,
    "verify": _run_verify,
    "analyze": _run_analyze,
    "bounds": _run_bounds,
    "bench": _run_bench,
    "faults": _run_faults,
    "streaming": _run_streaming,
}


def execute_trial(spec: TrialSpec) -> dict[str, Any]:
    """Run one trial to completion and return its deterministic metrics."""
    spec.validate()
    return _RUNNERS[spec.kind](spec)
