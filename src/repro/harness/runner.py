"""The campaign runner: shard trials across a worker pool, cache, resume.

Execution model:

- trials are numbered by their position in the campaign spec; results are
  always reported and stored in that order, regardless of completion order;
- each trial runs inside a worker process with a POSIX-alarm timeout and
  full error capture -- a crashing or overrunning trial records a failure
  row instead of killing the campaign;
- completed trials are written to the content-addressed cache as they
  finish, so an interrupted campaign resumes from where it stopped;
- ``workers=1`` runs everything inline in the calling process (no pool),
  which is also what the determinism regression test compares against.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.harness.execute import execute_trial
from repro.harness.specs import CampaignSpec, TrialSpec, code_version, trial_key
from repro.harness.store import ResultStore
from repro.harness.telemetry import ProgressReporter


class TrialTimeoutError(Exception):
    """Raised inside a worker when a trial exceeds its wall-clock budget."""


@dataclass
class TrialResult:
    """One trial's outcome as recorded in the manifest.

    ``metrics`` is the deterministic payload (present when ``status`` is
    ``"ok"``); ``error`` carries the traceback summary otherwise.
    """

    index: int
    key: str
    spec: TrialSpec
    status: str  # "ok" | "error" | "timeout"
    metrics: dict[str, Any] | None
    error: str | None
    wall_s: float
    cached: bool

    def result_row(self) -> dict[str, Any]:
        """The deterministic row stored in ``results.jsonl``."""
        row: dict[str, Any] = {
            "index": self.index,
            "key": self.key,
            "label": self.spec.label,
            "spec": self.spec.canonical(),
            "status": self.status,
            "metrics": self.metrics,
        }
        if self.error is not None:
            row["error"] = self.error
        return row


@dataclass
class CampaignRunResult:
    """Everything one ``run_campaign`` call produced, in trial order."""

    name: str
    results: list[TrialResult]
    manifest: dict[str, Any]
    results_path: Any = None
    manifest_path: Any = None

    @property
    def ok(self) -> int:
        return sum(1 for r in self.results if r.status == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.status != "ok")

    @property
    def cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def metrics_rows(self) -> list[dict[str, Any] | None]:
        return [r.metrics for r in self.results]


@contextmanager
def _alarm(timeout_s: float | None) -> Iterator[None]:
    """Raise :class:`TrialTimeoutError` after ``timeout_s`` wall seconds."""
    if not timeout_s or not hasattr(signal, "setitimer"):
        yield
        return

    def _on_alarm(signum, frame):
        raise TrialTimeoutError(f"trial exceeded {timeout_s}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    deadline = time.monotonic() + timeout_s
    try:
        yield
        # If the alarm lands while the interpreter is inside a context
        # that swallows exceptions (a GC callback, some C extension
        # code), the raise is silently discarded ("Exception ignored
        # in ...") and the trial runs on.  Reaching this point past the
        # deadline means exactly that happened, so enforce the budget
        # here, where the raise cannot be swallowed.
        if time.monotonic() >= deadline:
            raise TrialTimeoutError(f"trial exceeded {timeout_s}s")
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _run_one(payload: tuple[int, dict[str, Any], float | None]) -> tuple[int, str, dict | None, str | None, float]:
    """Worker entrypoint: execute one trial with timeout and error capture."""
    index, spec_dict, timeout_s = payload
    spec = TrialSpec(**spec_dict)
    start = time.perf_counter()
    try:
        with _alarm(timeout_s):
            metrics = execute_trial(spec)
        status, error = "ok", None
    except TrialTimeoutError as exc:
        metrics, status, error = None, "timeout", str(exc)
    except Exception as exc:
        metrics, status = None, "error"
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=8)}"
    return index, status, metrics, error, time.perf_counter() - start


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_campaign(
    campaign: CampaignSpec,
    *,
    workers: int = 1,
    base_dir: str = "campaigns",
    timeout_s: float | None = None,
    fresh: bool = False,
    progress: bool = True,
    reporter: ProgressReporter | None = None,
) -> CampaignRunResult:
    """Run every trial of ``campaign``, reusing cached results.

    Args:
        campaign: The spec; trial order defines result order.
        workers: Worker processes; 1 runs inline with no pool.
        base_dir: Root of the store (``campaigns/`` by default).
        timeout_s: Per-trial wall-clock budget; overrides the spec's
            ``timeout_s`` when given.
        fresh: Ignore and overwrite cached results.
        progress: Stream per-trial progress lines to stderr.
        reporter: Inject a reporter (tests); overrides ``progress``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for spec in campaign.trials:
        spec.validate()
    timeout_s = timeout_s if timeout_s is not None else campaign.timeout_s

    store = ResultStore(base_dir)
    version = code_version()
    keys = campaign.keys(version)
    reporter = reporter or ProgressReporter(len(campaign.trials), enabled=progress)

    results: dict[int, TrialResult] = {}
    pending: list[tuple[int, dict[str, Any], float | None]] = []
    for index, (spec, key) in enumerate(zip(campaign.trials, keys)):
        record = None if fresh else store.get(key)
        if record is not None:
            results[index] = TrialResult(
                index=index,
                key=key,
                spec=spec,
                status="ok",
                metrics=record["metrics"],
                error=None,
                wall_s=0.0,
                cached=True,
            )
            reporter.trial_done(results[index])
        else:
            pending.append((index, spec.canonical(), timeout_s))

    def _collect(outcome: tuple[int, str, dict | None, str | None, float]) -> None:
        index, status, metrics, error, wall = outcome
        spec = campaign.trials[index]
        result = TrialResult(
            index=index,
            key=keys[index],
            spec=spec,
            status=status,
            metrics=metrics,
            error=error,
            wall_s=wall,
            cached=False,
        )
        results[index] = result
        if status == "ok":
            store.put(
                keys[index],
                {
                    "key": keys[index],
                    "code_version": version,
                    "spec": spec.canonical(),
                    "metrics": metrics,
                },
            )
        reporter.trial_done(result)

    if pending:
        if workers == 1:
            for payload in pending:
                _collect(_run_one(payload))
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(workers, len(pending))) as pool:
                for outcome in pool.imap_unordered(_run_one, pending):
                    _collect(outcome)

    ordered = [results[i] for i in range(len(campaign.trials))]
    manifest = {
        "name": campaign.name,
        "description": campaign.description,
        "code_version": version,
        "workers": workers,
        "timeout_s": timeout_s,
        "telemetry": reporter.summary(),
        "trials": [
            {
                "index": r.index,
                "key": r.key,
                "label": r.spec.label,
                "status": r.status,
                "cached": r.cached,
                "wall_s": round(r.wall_s, 3),
                **({"error": r.error} if r.error else {}),
            }
            for r in ordered
        ],
    }
    results_path = store.write_results(campaign.name, [r.result_row() for r in ordered])
    manifest_path = store.write_manifest(campaign.name, manifest)
    return CampaignRunResult(
        name=campaign.name,
        results=ordered,
        manifest=manifest,
        results_path=results_path,
        manifest_path=manifest_path,
    )
