"""Campaign progress reporting and run-level telemetry.

The reporter streams one line per completed trial to stderr (never stdout,
which belongs to result tables) and accumulates the aggregate summary that
ends up in the campaign manifest: trial counts by status, cache hits,
total/max wall time, and the largest queue any trial observed.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO


class ProgressReporter:
    """Streams ``[done/total]`` lines with an ETA; aggregates a summary."""

    def __init__(
        self,
        total: int,
        stream: TextIO | None = None,
        enabled: bool = True,
        clock=time.monotonic,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._clock = clock
        self._started = clock()
        self._done = 0
        self._counts = {"ok": 0, "error": 0, "timeout": 0}
        self._cached = 0
        self._executed_wall = 0.0
        self._max_wall = 0.0
        self._max_queue_len = 0

    def trial_done(self, result) -> None:
        """Record one finished trial (a :class:`~repro.harness.runner.TrialResult`)."""
        self._done += 1
        self._counts[result.status] = self._counts.get(result.status, 0) + 1
        if result.cached:
            self._cached += 1
        else:
            self._executed_wall += result.wall_s
            self._max_wall = max(self._max_wall, result.wall_s)
        if result.metrics:
            queue_len = result.metrics.get("max_queue_len") or 0
            self._max_queue_len = max(self._max_queue_len, queue_len)
        if self.enabled:
            self.stream.write(self._format_line(result) + "\n")
            self.stream.flush()

    def _format_line(self, result) -> str:
        label = result.spec.label or _describe(result.spec)
        state = "cached" if result.cached else result.status
        parts = [
            f"[{self._done}/{self.total}]",
            label,
            state,
            f"{result.wall_s:.2f}s",
        ]
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if result.error:
            parts.append(f"({result.error.splitlines()[0]})")
        return " ".join(parts)

    def eta_s(self) -> float | None:
        """Projected seconds remaining, from the mean pace so far."""
        if self._done == 0 or self._done >= self.total:
            return None
        elapsed = self._clock() - self._started
        return elapsed / self._done * (self.total - self._done)

    def summary(self) -> dict[str, Any]:
        """The aggregate block stored in the campaign manifest."""
        return {
            "total": self.total,
            "ok": self._counts.get("ok", 0),
            "error": self._counts.get("error", 0),
            "timeout": self._counts.get("timeout", 0),
            "cached": self._cached,
            "wall_s": round(self._clock() - self._started, 3),
            "executed_wall_s": round(self._executed_wall, 3),
            "max_trial_wall_s": round(self._max_wall, 3),
            "max_queue_len": self._max_queue_len,
        }


def _describe(spec) -> str:
    if spec.kind == "lower_bound":
        return f"lower_bound[{spec.construction} n={spec.n} k={spec.k}]"
    if spec.kind == "route":
        return f"route[{spec.algorithm} n={spec.n} k={spec.k} {spec.workload}/{spec.seed}]"
    return f"{spec.kind}[n={spec.n} {spec.workload}/{spec.seed}]"
