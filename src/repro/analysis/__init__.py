"""Measurement and analysis utilities for the experiment harness."""

from repro.analysis.scaling import fit_power_law, crossover_point, PowerLawFit
from repro.analysis.metrics import (
    RoutingMeasurement,
    measure_routing,
    compare_algorithms,
)
from repro.analysis.report import format_table, format_series
from repro.analysis.campaigns import (
    load_recorded_result,
    load_recorded_results,
    summarize_manifest,
    summarize_rows,
)
from repro.analysis.turning_intervals import TurningInterval, TurningIntervalMonitor
from repro.analysis.latency import LatencyStats, latency_stats, peak_throughput, throughput_series
from repro.analysis.stats import (
    degradation_metrics,
    delivered_fraction,
    latency_percentiles,
    percentile,
    violation_counts,
)

__all__ = [
    "fit_power_law",
    "crossover_point",
    "PowerLawFit",
    "RoutingMeasurement",
    "measure_routing",
    "compare_algorithms",
    "format_table",
    "format_series",
    "load_recorded_result",
    "load_recorded_results",
    "summarize_manifest",
    "summarize_rows",
    "TurningInterval",
    "TurningIntervalMonitor",
    "LatencyStats",
    "latency_stats",
    "peak_throughput",
    "throughput_series",
    "degradation_metrics",
    "delivered_fraction",
    "latency_percentiles",
    "percentile",
    "violation_counts",
]
