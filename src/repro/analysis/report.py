"""Plain-text tables for the benchmark harness.

Every bench prints the rows/series the corresponding paper claim implies;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(label: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One labelled series as `label: x=y, x=y, ...`."""
    pairs = ", ".join(f"{x}={_fmt(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
