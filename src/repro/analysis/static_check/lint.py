"""AST lint pass enforcing the simulator's reproducibility contract.

The simulator promises bit-identical replays given (spec, seed).  That
promise dies quietly: an unseeded RNG, a wall-clock read, or iteration
order of a ``set`` leaking into packet scheduling all produce runs that
differ across processes while every test still passes on the machine that
wrote it.  These rules make the contract mechanically checkable:

====== ======================================================================
Rule   Meaning
====== ======================================================================
SC001  No unseeded randomness: calls into the global ``random`` /
       ``numpy.random`` state, or constructing ``random.Random()`` /
       ``numpy.random.default_rng()`` / ``RandomState()`` without a seed.
SC002  No wall clock in step logic: ``time.time`` & friends,
       ``datetime.now`` / ``utcnow`` / ``today``.
SC003  No bare ``assert`` for runtime invariants: ``python -O`` strips
       asserts, so invariants must raise real exceptions (the repo's
       ``Section6Violation`` / ``InvariantViolation`` pattern).
SC004  No iteration over unordered sets: ``for``/comprehension iteration or
       ``list()`` / ``tuple()`` / ``enumerate()`` materialisation of a
       set-typed value.  Wrap in ``sorted()`` (order-insensitive reducers
       such as ``len``/``sum``/``min``/``max``/``any``/``all`` are fine).
SC005  Docstring coverage: every module and every class must carry a
       docstring.  Applies to the infrastructure packages (``perf``,
       ``harness``), whose contracts -- measurement protocols, cache-key
       semantics -- live in prose the code alone cannot carry, plus the
       array-backend modules listed in ``DOCSTRING_MODULES``.
SC006  No in-place mutation through array parameters: subscript stores,
       augmented assigns, in-place ndarray methods, or ``ufunc.at`` on a
       function parameter (or a basic-slice view of one).  The array
       kernels receive views that alias engine state; mutating them breaks
       the lockstep bit-identity contract.  Copy first.
SC007  Order-sensitive reductions must pin stability: ``np.sort`` /
       ``np.argsort`` without ``kind="stable"`` (or ``"mergesort"``), and
       ``np.unique(..., return_index=True)``, whose tie order is
       implementation-defined.  ``np.lexsort`` is always stable and bare
       value-only ``np.unique`` returns a sorted set; both are exempt.
SC008  No implicit dtypes in array construction: ``np.zeros`` / ``ones`` /
       ``empty`` / ``full`` / ``arange`` / ``array`` without an explicit
       ``dtype=``.  Platform-default integer widths silently change
       occupancy arithmetic across OSes, breaking bit-identity.
SC009  No silent engine fallback: a function calling
       ``Simulator(..., engine=...)`` with anything but the literal
       ``"reference"`` must read ``engine_name`` somewhere in the same
       function -- the engine argument is a *hint* that can silently fall
       back to the reference engine, and an unreported fallback turns a
       20-60x array-engine run into a slow reference run no metric
       records.
====== ======================================================================

SC003 applies to all of ``src/repro``; SC001/SC002/SC004 to the simulation
packages (``mesh``, ``routing``, ``tiling``, ``workloads``), where
nondeterminism can reach packet scheduling; SC005 to the infrastructure
packages (``perf``, ``harness``) and the ``DOCSTRING_MODULES`` list
(array engine/state, transition models, engine-equivalence harness);
SC006/SC007/SC008 to the numpy kernel modules in ``ARRAY_MODULES``; SC009
to all of ``src/repro`` (dispatch sites live in the CLI, harness, and
streaming layers, not just the kernels).  A finding can be waived in
place with a ``# noqa: SC00x`` comment on the offending line; waivers with
no rule list (bare ``# noqa``) waive every rule on that line.  Pre-existing
findings live in the checked-in baseline (see ``baseline.py``) so CI fails
only on *new* violations.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Rule catalog: id -> one-line summary (the long rationale is above and in
#: docs/ANALYSIS.md).
RULES: Dict[str, str] = {
    "SC001": "unseeded random / numpy.random use",
    "SC002": "wall-clock read in step logic",
    "SC003": "bare assert used for a runtime invariant",
    "SC004": "iteration over an unordered set",
    "SC005": "missing module or class docstring",
    "SC006": "in-place mutation of an array parameter that may alias state",
    "SC007": "order-sensitive reduction without a stable sort kind",
    "SC008": "numpy array construction without an explicit dtype",
    "SC009": "engine-hinted Simulator call without an engine_name readback",
}

#: Packages (under src/repro) where SC001/SC002/SC004 apply.
SCOPED_PACKAGES: Tuple[str, ...] = ("mesh", "routing", "tiling", "workloads")

#: Packages (under src/repro) where SC005 docstring coverage applies.
DOCSTRING_PACKAGES: Tuple[str, ...] = ("perf", "harness", "streaming", "analysis")

#: Individual modules (repro-relative) that get SC005 on top of their
#: package's rule set: the array backend and its equivalence gate live in
#: packages outside DOCSTRING_PACKAGES but are infrastructure in the same
#: sense -- their memory-layout and bit-identity contracts must be written
#: down where the code is.
DOCSTRING_MODULES: Tuple[str, ...] = (
    "mesh/array_engine.py",
    "mesh/array_state.py",
    "mesh/transitions.py",
    "verify/engine_equivalence.py",
)

#: The numpy kernel modules (repro-relative) where the array-hazard rules
#: SC006/SC007/SC008 apply: the performance-critical surface whose aliasing,
#: sort-stability, and dtype discipline the lockstep gate depends on.
ARRAY_MODULES: Tuple[str, ...] = (
    "mesh/array_engine.py",
    "mesh/array_state.py",
)

#: numpy constructors whose dtype must be explicit (SC008).
_DTYPE_CONSTRUCTORS = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "array"}
)

#: ndarray methods that mutate their receiver in place (SC006).
_INPLACE_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "setfield"}
)

#: Functions on the time module that read the wall clock.
_TIME_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime"}
)
#: Methods on datetime/date classes that read the wall clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Builtins that reduce an iterable order-insensitively (safe on sets).
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9,\s]+))?", re.IGNORECASE)


def normalize_snippet(code: str) -> str:
    """The whitespace-collapsed form of a source line used for fingerprints.

    Collapsing runs of whitespace makes baseline entries survive pure
    reformatting (re-indentation, alignment churn) that used to strand
    them as stale.
    """
    return " ".join(code.split())


@dataclass(frozen=True, order=True)
class LintViolation:
    """One finding: a rule violated at a specific source location."""

    path: str  # repo-relative, posix separators
    line: int
    col: int
    rule: str
    message: str
    code: str  # the offending source line, stripped

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity that survives line renumbering and reformatting:
        (rule, path, normalized source snippet)."""
        return (self.rule, self.path, normalize_snippet(self.code))

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "code": self.code,
        }


# -- the visitor ---------------------------------------------------------------


class _Checker(ast.NodeVisitor):
    """Single-module AST walk applying the SC rules enabled for its path."""

    def __init__(self, path: str, lines: Sequence[str], rules: Set[str]) -> None:
        self.path = path
        self.lines = lines
        self.rules = rules
        self.violations: List[LintViolation] = []
        # Names bound to whole modules / classes of interest.
        self.random_modules: Set[str] = set()  # `import random as r` -> {"r"}
        self.numpy_modules: Set[str] = set()  # `import numpy as np` -> {"np"}
        self.numpy_random_modules: Set[str] = set()  # from numpy import random
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()  # from datetime import datetime
        # Names imported straight off the random module: from random import x.
        self.random_funcs: Set[str] = set()
        self.time_funcs: Set[str] = set()  # from time import time
        # `from numpy.random import default_rng` style constructors.
        self.rng_constructors: Set[str] = set()
        # Per-scope map of local names known to be set-valued.
        self.setish_stack: List[Dict[str, bool]] = [{}]
        # Per-scope set of names aliasing a function parameter (SC006):
        # the parameters themselves plus any basic-slice views of them.
        self.alias_stack: List[Set[str]] = [set()]

    # -- helpers ------------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.rules:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        code = self.lines[line - 1].strip() if line - 1 < len(self.lines) else ""
        self.violations.append(
            LintViolation(self.path, line, col, rule, message, code)
        )

    def _is_seed_call(self, node: ast.Call) -> bool:
        """True when the call carries an explicit seed argument."""
        return bool(node.args) or any(
            kw.arg in ("seed", "x") or kw.arg is None for kw in node.keywords
        )

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_modules.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                self.numpy_modules.add(bound)
            elif alias.name == "time":
                self.time_modules.add(bound)
            elif alias.name == "datetime":
                self.datetime_modules.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "random":
                if alias.name == "Random":
                    self.rng_constructors.add(bound)
                else:
                    self.random_funcs.add(bound)
            elif module == "numpy":
                if alias.name == "random":
                    self.numpy_random_modules.add(bound)
            elif module == "numpy.random":
                if alias.name in ("default_rng", "RandomState", "Generator"):
                    self.rng_constructors.add(bound)
                else:
                    self.random_funcs.add(bound)
            elif module == "time":
                if alias.name in _TIME_FUNCS:
                    self.time_funcs.add(bound)
            elif module == "datetime":
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(bound)
        self.generic_visit(node)

    # -- SC001 / SC002: calls ------------------------------------------------

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.random_funcs:
                self._emit(node, "SC001", f"call to unseeded random.{func.id}()")
            elif func.id in self.rng_constructors and not self._is_seed_call(node):
                self._emit(node, "SC001", f"{func.id}() constructed without a seed")
            elif func.id in self.time_funcs:
                self._emit(node, "SC002", f"wall-clock call {func.id}()")
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in self.random_modules:
                if func.attr == "Random":
                    if not self._is_seed_call(node):
                        self._emit(node, "SC001", "random.Random() without a seed")
                elif func.attr != "seed":
                    self._emit(
                        node, "SC001", f"global-state call random.{func.attr}()"
                    )
                return
            if base.id in self.numpy_random_modules:
                self._numpy_random_call(node, func.attr)
                return
            if base.id in self.time_modules and func.attr in _TIME_FUNCS:
                self._emit(node, "SC002", f"wall-clock call time.{func.attr}()")
                return
            if base.id in self.datetime_classes and func.attr in _DATETIME_FUNCS:
                self._emit(
                    node, "SC002", f"wall-clock call datetime.{func.attr}()"
                )
                return
        # np.random.<func>() and datetime.datetime.now().
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            if base.value.id in self.numpy_modules and base.attr == "random":
                self._numpy_random_call(node, func.attr)
            elif (
                base.value.id in self.datetime_modules
                and base.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                self._emit(
                    node, "SC002", f"wall-clock call datetime.{func.attr}()"
                )

    def _numpy_random_call(self, node: ast.Call, attr: str) -> None:
        if attr in ("default_rng", "RandomState", "Generator"):
            if not self._is_seed_call(node):
                self._emit(
                    node, "SC001", f"numpy.random.{attr}() without a seed"
                )
        elif attr != "seed":
            self._emit(node, "SC001", f"global-state call numpy.random.{attr}()")

    # -- SC005: docstring coverage -------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        if ast.get_docstring(node) is None:
            self._emit(node, "SC005", "module has no docstring")
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if ast.get_docstring(node) is None:
            self._emit(node, "SC005", f"class {node.name} has no docstring")
        self.generic_visit(node)

    # -- SC003: asserts ------------------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit(
            node,
            "SC003",
            "bare assert is stripped under python -O; raise a real exception",
        )
        self.generic_visit(node)

    # -- SC004: set iteration ------------------------------------------------

    def _scope(self) -> Dict[str, bool]:
        return self.setish_stack[-1]

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._scope().get(node.id, False)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            # s.union(...), s.intersection(...), s.copy() keep set-ness.
            if (
                isinstance(func, ast.Attribute)
                and func.attr
                in ("union", "intersection", "difference",
                    "symmetric_difference", "copy")
                and self._is_setish(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setish(node.left) or self._is_setish(node.right)
        return False

    def _flag_iteration(self, node: ast.expr, context: str) -> None:
        if self._is_setish(node):
            self._emit(
                node,
                "SC004",
                f"{context} iterates an unordered set; wrap in sorted()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._flag_iteration(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is order-free; only flag once consumed.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self._check_array_call(node)
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "enumerate")
            and node.args
        ):
            self._flag_iteration(
                node.args[0], f"{func.id}() materialisation"
            )
        self.generic_visit(node)

    # -- SC006 / SC007 / SC008: array-kernel hazards -------------------------

    def _aliases(self) -> Set[str]:
        return self.alias_stack[-1]

    @staticmethod
    def _base_name(expr: ast.expr) -> str | None:
        """The root name of a (possibly nested) subscript expression."""
        while isinstance(expr, ast.Subscript):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    @staticmethod
    def _contains_slice(index: ast.expr) -> bool:
        if isinstance(index, ast.Slice):
            return True
        if isinstance(index, ast.Tuple):
            return any(isinstance(element, ast.Slice) for element in index.elts)
        return False

    def _is_param_view(self, expr: ast.expr) -> bool:
        """True for a parameter name or a basic-slice view of one.

        Basic slicing (``p[1:]``, ``p[:, 0:2]``) returns a view that
        aliases the parameter; advanced (fancy/boolean) indexing and
        scalar indexing return copies or scalars, which break the alias.
        """
        if isinstance(expr, ast.Name):
            return expr.id in self._aliases()
        if isinstance(expr, ast.Subscript) and self._is_param_view(expr.value):
            return self._contains_slice(expr.slice)
        return False

    def _has_stable_kind(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
                return kw.value.value in ("stable", "mergesort")
        return False

    def _check_array_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name) and base.id in self.numpy_modules:
            if func.attr in ("sort", "argsort"):
                if not self._has_stable_kind(node):
                    self._emit(
                        node,
                        "SC007",
                        f"np.{func.attr}() without kind=\"stable\": tie order "
                        "is implementation-defined (np.lexsort is exempt)",
                    )
            elif func.attr == "unique":
                if any(
                    kw.arg == "return_index"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                ):
                    self._emit(
                        node,
                        "SC007",
                        "np.unique(return_index=True): first-occurrence "
                        "indices depend on sort stability",
                    )
            elif func.attr in _DTYPE_CONSTRUCTORS:
                if not any(kw.arg == "dtype" for kw in node.keywords):
                    self._emit(
                        node,
                        "SC008",
                        f"np.{func.attr}() without an explicit dtype: the "
                        "platform default breaks bit-identity",
                    )
            return
        if func.attr == "argsort" and not self._has_stable_kind(node):
            self._emit(
                node,
                "SC007",
                ".argsort() without kind=\"stable\": tie order is "
                "implementation-defined",
            )
            return
        if func.attr == "at" and node.args:
            target = self._base_name(node.args[0])
            if target is not None and target in self._aliases():
                self._emit(
                    node,
                    "SC006",
                    f"ufunc .at() scatters into parameter {target!r} in "
                    "place, mutating caller state; copy first",
                )
            return
        if (
            func.attr in _INPLACE_METHODS
            and isinstance(base, ast.Name)
            and base.id in self._aliases()
        ):
            self._emit(
                node,
                "SC006",
                f".{func.attr}() mutates parameter {base.id!r} in place, "
                "mutating caller state; copy first",
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        offender: str | None = None
        if isinstance(target, ast.Name) and target.id in self._aliases():
            offender = target.id
        elif isinstance(target, ast.Subscript):
            candidate = self._base_name(target)
            if candidate is not None and candidate in self._aliases():
                offender = candidate
        if offender is not None:
            self._emit(
                node,
                "SC006",
                f"augmented assignment mutates parameter {offender!r} in "
                "place, mutating caller state; copy first",
            )
        self.generic_visit(node)

    # -- SC009: silent engine fallback ---------------------------------------

    def _check_sc009(self, node: ast.AST) -> None:
        """Flag Simulator(engine=...) calls in functions that never read
        ``engine_name`` (nested functions are checked on their own)."""
        if "SC009" not in self.rules:
            return
        offending: List[ast.Call] = []
        reads_engine_name = False
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(current, ast.Attribute) and current.attr == "engine_name":
                reads_engine_name = True
            if isinstance(current, ast.Call):
                func = current.func
                callee = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else ""
                )
                if callee == "Simulator":
                    for kw in current.keywords:
                        if kw.arg != "engine":
                            continue
                        explicit_reference = (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value == "reference"
                        )
                        if not explicit_reference:
                            offending.append(current)
            stack.extend(ast.iter_child_nodes(current))
        if reads_engine_name:
            return
        for call in offending:
            self._emit(
                call,
                "SC009",
                "Simulator(engine=...) may silently fall back to the "
                "reference engine; read engine_name and report it",
            )

    # -- name binding tracking ----------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                mutated = self._base_name(target)
                if mutated is not None and mutated in self._aliases():
                    self._emit(
                        node,
                        "SC006",
                        f"subscript store into parameter {mutated!r} "
                        "mutates caller state; copy first",
                    )
        setish = self._is_setish(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scope()[target.id] = setish
                if self._is_param_view(node.value):
                    self._aliases().add(target.id)
                else:
                    self._aliases().discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            setish = node.value is not None and self._is_setish(node.value)
            if not setish and node.value is None:
                ann = ast.unparse(node.annotation)
                setish = ann.startswith(("set", "frozenset", "Set", "FrozenSet"))
            self._scope()[node.target.id] = setish
        self.generic_visit(node)

    @staticmethod
    def _parameter_names(node: ast.AST) -> Set[str]:
        args = getattr(node, "args", None)
        if not isinstance(args, ast.arguments):
            return set()
        names = {
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        return names - {"self", "cls"}

    def _visit_scope(self, node: ast.AST) -> None:
        self.setish_stack.append({})
        self.alias_stack.append(self._parameter_names(node))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_sc009(node)
        self.generic_visit(node)
        self.alias_stack.pop()
        self.setish_stack.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_Lambda = _visit_scope


# -- entry points --------------------------------------------------------------


def _waived(violation: LintViolation, lines: Sequence[str]) -> bool:
    if violation.line - 1 >= len(lines):
        return False
    match = _NOQA_RE.search(lines[violation.line - 1])
    if match is None:
        return False
    listed = match.group("rules")
    if listed is None:
        return True
    return violation.rule in {r.strip().upper() for r in listed.split(",")}


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[str] | None = None,
) -> List[LintViolation]:
    """Lint one source string; returns violations sorted by location."""
    active = set(RULES) if rules is None else set(rules)
    unknown = active - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rules {sorted(unknown)}")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ValueError(f"{path}: cannot lint, syntax error: {exc}") from exc
    checker = _Checker(path, lines, active)
    checker.visit(tree)
    kept = [v for v in checker.violations if not _waived(v, lines)]
    return sorted(kept, key=lambda v: (v.line, v.col, v.rule))


def rules_for_path(relative: str) -> Tuple[str, ...]:
    """The rule set that applies to a repo-relative source path.

    SC003 and SC009 apply everywhere under ``src/repro``; the determinism
    rules to the simulation packages; SC005 to the infrastructure packages
    and ``DOCSTRING_MODULES``; the array-hazard rules SC006-SC008 to the
    numpy kernels in ``ARRAY_MODULES``.
    """
    parts = Path(relative).parts
    rules: List[str] = ["SC003"]
    if "repro" in parts:
        idx = parts.index("repro")
        inside = "/".join(parts[idx + 1:])
        if len(parts) > idx + 1:
            package = parts[idx + 1]
            if package in SCOPED_PACKAGES:
                rules = ["SC001", "SC002", "SC003", "SC004"]
            elif package in DOCSTRING_PACKAGES:
                rules = ["SC003", "SC005"]
        if inside in DOCSTRING_MODULES and "SC005" not in rules:
            rules.append("SC005")
        if inside in ARRAY_MODULES:
            rules.extend(("SC006", "SC007", "SC008"))
    rules.append("SC009")
    return tuple(rules)


def run_lint(root: Path | str) -> List[LintViolation]:
    """Lint every ``src/repro`` module under the repo root."""
    root = Path(root).resolve()
    package = root / "src" / "repro"
    if not package.is_dir():
        raise ValueError(f"{package} is not a directory; pass the repo root")
    violations: List[LintViolation] = []
    for source_path in sorted(package.rglob("*.py")):
        relative = source_path.relative_to(root).as_posix()
        source = source_path.read_text(encoding="utf-8")
        violations.extend(
            lint_source(source, relative, rules=rules_for_path(relative))
        )
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))
