"""Static queue-bound certification by abstract interpretation.

The paper's headline invariant -- every queue holds at most ``k`` packets
(Theorem 15) -- is checked dynamically by the runtime
:class:`~repro.verify.oracles.QueueBoundOracle`, one trace at a time.  This
module certifies it *statically*, for every execution at once, by abstract
interpretation over the symbolic :class:`~repro.mesh.transitions.
TransitionModel` a router exposes through ``enumerate_transitions``.

Each queue (a :class:`~repro.analysis.static_check.cdg.Channel`) gets an
abstract occupancy bound in the lattice ``{0, ..., capacity, TOP}``,
computed as a fixed point of a per-channel transfer function:

- a **blockable** queue refuses offers once full, so its occupancy is
  policy-enforced at ``capacity``;
- an always-accepting queue needs a *drain guarantee* from the model
  (``drain_keys`` / ``drain_all_keys``) to be bounded: ``DRAIN_ONE``
  (Theorem 15's N/S invariant: a nonempty queue ejects one packet per
  step) bounds the queue at ``capacity`` when at most one packet can
  arrive per step, and ``DRAIN_ALL`` (bufferless deflection) bounds it
  when per-step arrivals fit in ``capacity``;
- an always-accepting queue with transit arrivals from a nonempty feeder
  and no validated drain guarantee has no static bound: TOP.

Drain guarantees are *claims*; the certifier re-validates them
structurally (every onward target of a draining queue must itself always
accept, else the drain could be refused) and ignores unsound claims.

Verdicts are per (router, topology, n, k) cell, under a declared
injection semantics:

- ``BOUNDED(b)`` -- every queue's fixed-point bound is at most ``b`` and
  (open-loop semantics) no wait-for cycle can stall the network: the bound
  holds on every execution.
- ``UNBOUNDED`` -- some queue has no static bound (reason
  ``queue-overflow``), or -- under **open-loop** injection, where sources
  keep producing -- the blockable-queue dependency graph has a cycle, so a
  wedged configuration forces unbounded *source backlog* even though every
  in-network queue stays at ``capacity`` (reason ``wedged-backlog``; this
  is exactly the PR 6 streaming finding for the central-queue routers).
  The verdict carries a concrete witness chain of transitions.
- ``UNKNOWN`` -- the router exposes no sound transition model.

Closed-loop semantics (a fixed packet batch, no sources) drops the
wedged-backlog rule: a deadlock freezes occupancy at ``capacity`` rather
than growing anything.

Every verdict is cross-checked in both directions against the runtime
``QueueBoundOracle`` over the differential registry's cells by
:func:`check_bounds_agreement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mesh.directions import Direction
from repro.mesh.ndtopology import Port
from repro.mesh.queues import CENTRAL, KIND_CENTRAL, KIND_INCOMING
from repro.mesh.topology import Topology
from repro.mesh.transitions import DRAIN_ALL, DRAIN_ONE, TransitionModel

from repro.analysis.static_check.cdg import (
    FAMILIES_BY_TOPOLOGY,
    TOPOLOGIES,
    UNKNOWN,
    Channel,
    _central_outs,
    _key_name,
    build_cdg,
    find_witness_cycle,
    make_topology,
)

#: Verdicts (UNKNOWN is shared with the CDG engine).
BOUNDED = "BOUNDED"
UNBOUNDED = "UNBOUNDED"

#: Injection semantics a verdict is issued under.
OPEN_LOOP = "open"
CLOSED_LOOP = "closed"

#: Failure reasons carried by UNBOUNDED verdicts.
REASON_OVERFLOW = "queue-overflow"
REASON_WEDGE = "wedged-backlog"


def _key_label(key: object) -> str:
    return _key_name(key)


@dataclass(frozen=True)
class TransitionStep:
    """One concrete queue-to-queue transition of a witness chain."""

    source: Channel
    travel_in: Optional[Direction]
    travel_out: Direction
    target: Channel

    def __str__(self) -> str:
        t_in = self.travel_in.name if self.travel_in is not None else "inject"
        return f"{self.source} --[{t_in}->{self.travel_out.name}]--> {self.target}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source.to_dict(),
            "travel_in": self.travel_in.name if self.travel_in is not None else None,
            "travel_out": self.travel_out.name,
            "target": self.target.to_dict(),
        }


@dataclass(frozen=True)
class BoundsVerdict:
    """The static queue-bound verdict for one (router, topology, n, k)."""

    router: str
    topology: str
    n: int
    k: int
    verdict: str
    semantics: str = OPEN_LOOP
    bound: Optional[int] = None
    reason: str = ""
    witness: Tuple[TransitionStep, ...] = ()
    channels: int = 0
    key_bounds: Tuple[Tuple[str, Optional[int]], ...] = ()
    note: str = ""

    def describe(self) -> str:
        """Human-readable verdict: ``BOUNDED(b=4)`` or ``UNBOUNDED[reason]``."""
        if self.verdict == BOUNDED:
            return f"{BOUNDED}(b={self.bound})"
        if self.verdict == UNBOUNDED:
            return f"{UNBOUNDED}[{self.reason}]"
        return self.verdict

    def to_dict(self) -> Dict[str, Any]:
        return {
            "router": self.router,
            "topology": self.topology,
            "n": self.n,
            "k": self.k,
            "verdict": self.verdict,
            "semantics": self.semantics,
            "bound": self.bound,
            "reason": self.reason,
            "witness": [step.to_dict() for step in self.witness],
            "channels": self.channels,
            "key_bounds": dict(self.key_bounds),
            "note": self.note,
        }


# -- the abstract domain -------------------------------------------------------


def _all_channels(topology: Topology, model: TransitionModel) -> List[Channel]:
    """Every queue of the regime, blockable or not, in sorted order."""
    channels: List[Channel] = []
    if model.queue_kind == KIND_CENTRAL:
        for node in topology.nodes():
            channels.append(Channel(node, CENTRAL))
    elif model.queue_kind == KIND_INCOMING:
        for node in topology.nodes():
            for key in topology.directions:
                channels.append(Channel(node, key))
    else:  # pragma: no cover - QueueSpec guards the kind already
        raise ValueError(f"unknown queue kind {model.queue_kind!r}")
    return sorted(channels)


def _feeders(
    topology: Topology, model: TransitionModel, channel: Channel
) -> Tuple[TransitionStep, ...]:
    """The transit transitions that can deposit a packet into ``channel``.

    Injection is excluded deliberately: both engines admission-gate it
    (``offer_packet`` and the array engine's ``_inject_pending`` refuse at
    capacity, and batch loading validates occupancy), so only link
    traversals can grow a queue past its admitted load.
    """
    steps: List[TransitionStep] = []
    if model.queue_kind == KIND_CENTRAL:
        for travel in topology.directions:
            upstream = topology.neighbor(channel.node, travel.opposite)
            if upstream is None:
                continue
            for t_in in (None, *topology.directions):
                if (t_in, travel) not in model.turns:
                    continue
                if t_in is not None and topology.neighbor(
                    upstream, t_in.opposite
                ) is None:
                    continue
                steps.append(
                    TransitionStep(
                        Channel(upstream, CENTRAL), t_in, travel, channel
                    )
                )
                break  # one representative transition per inlink
        return tuple(steps)
    key = channel.key
    if not isinstance(key, (Direction, Port)):  # pragma: no cover - regime invariant
        raise ValueError(f"incoming-regime channel with key {key!r}")
    upstream = topology.neighbor(channel.node, key)
    if upstream is None:
        return ()
    travel = key.opposite  # the only travel direction that lands in this queue
    seen: set[Channel] = set()
    for t_in in (None, *topology.directions):
        if (t_in, travel) not in model.turns:
            continue
        if t_in is None:
            # Injected at the upstream node: the default injection rule
            # stores a packet about to travel ``travel`` under key
            # ``travel.opposite`` there.
            source = Channel(upstream, travel.opposite)
        else:
            if topology.neighbor(upstream, t_in.opposite) is None:
                continue
            source = Channel(upstream, t_in.opposite)
        if source in seen:
            continue
        seen.add(source)
        steps.append(TransitionStep(source, t_in, travel, channel))
    return tuple(sorted(steps, key=lambda s: s.source))


def _arrival_slots(
    topology: Topology, model: TransitionModel, channel: Channel
) -> int:
    """Max packets that can transit into ``channel`` in one step.

    One per inlink: the incoming regime funnels a single link into each
    queue; a central queue can receive from every existing inlink at once.
    """
    feeders = _feeders(topology, model, channel)
    if model.queue_kind == KIND_CENTRAL:
        return len({step.travel_out for step in feeders})
    return 1 if feeders else 0


def validate_drain_claims(
    model: TransitionModel,
) -> Tuple[Dict[object, str], List[str]]:
    """Structurally validate the model's drain guarantees.

    A drain is only guaranteed when the departing packet cannot be refused
    downstream: every onward target queue of a draining queue's occupants
    must itself always accept (delivery at the destination always
    succeeds, so it needs no check).  Unsound claims are dropped and
    reported, never trusted.
    """
    validated: Dict[object, str] = {}
    notes: List[str] = []
    for key in sorted(
        model.drain_keys | model.drain_all_keys, key=_key_label
    ):
        guarantee = model.drain_for(key)
        if guarantee is None:  # pragma: no cover - keys come from the sets
            continue
        if model.queue_kind == KIND_CENTRAL:
            # Occupants of a central queue target central queues; the claim
            # is sound iff those never refuse.
            sound = CENTRAL not in model.blocking_keys
        elif isinstance(key, (Direction, Port)):
            travel_in = key.opposite
            targets = {
                out.opposite for out in model.outs_for(travel_in)
            }
            sound = not (targets & model.blocking_keys)
        else:
            sound = False
        if sound:
            validated[key] = guarantee
        else:
            notes.append(
                f"drain claim on {_key_label(key)} is unsound (a target "
                "queue may refuse); ignored"
            )
    return validated, notes


def compute_channel_bounds(
    topology: Topology, model: TransitionModel, capacity: int
) -> Dict[Channel, Optional[int]]:
    """Fixed-point occupancy bound per queue (None = no static bound).

    Starts every queue at ``capacity`` (batch loading validates occupancy
    and injection is admission-gated, so that is the tightest sound
    initial abstraction) and iterates the transfer function until stable.
    """
    validated, _ = validate_drain_claims(model)
    channels = _all_channels(topology, model)
    bounds: Dict[Channel, Optional[int]] = {c: capacity for c in channels}
    feeders = {c: _feeders(topology, model, c) for c in channels}

    def transfer(channel: Channel) -> Optional[int]:
        if channel.key in model.blocking_keys:
            return capacity  # refusal-enforced, independent of feeders
        live = [
            step for step in feeders[channel] if bounds.get(step.source, capacity) != 0
        ]
        if model.queue_kind == KIND_CENTRAL:
            arrivals = len({step.travel_out for step in live})
        else:
            arrivals = 1 if live else 0
        guarantee = validated.get(channel.key)
        if guarantee == DRAIN_ALL:
            return capacity if arrivals <= capacity else None
        if guarantee == DRAIN_ONE:
            return capacity if arrivals <= 1 else None
        return capacity if arrivals == 0 else None

    for _ in range(len(channels) + 1):
        changed = False
        for channel in channels:
            new = transfer(channel)
            if new != bounds[channel]:
                bounds[channel] = new
                changed = True
        if not changed:
            return bounds
    raise RuntimeError(  # pragma: no cover - the lattice has height 2
        "channel-bound fixed point failed to converge"
    )


def _overflow_witness(
    topology: Topology,
    model: TransitionModel,
    channel: Channel,
    max_length: int = 4,
) -> Tuple[TransitionStep, ...]:
    """A transit chain ending at the unbounded ``channel``.

    Walks feeders backwards (deterministically: first feeder in sorted
    order) until the chain closes on itself or reaches ``max_length``;
    each step is a transition that can add a packet the queue never
    sheds.
    """
    chain: List[TransitionStep] = []
    visited = {channel}
    current = channel
    while len(chain) < max_length:
        feeders = _feeders(topology, model, current)
        if not feeders:
            break
        step = feeders[0]
        chain.append(step)
        if step.source in visited:
            break
        visited.add(step.source)
        current = step.source
    chain.reverse()
    return tuple(chain)


def _annotate_cycle(
    topology: Topology, model: TransitionModel, cycle: Sequence[Channel]
) -> Tuple[TransitionStep, ...]:
    """Turn a CDG witness cycle into concrete transitions (with turns)."""
    steps: List[TransitionStep] = []
    for position, source in enumerate(cycle):
        target = cycle[(position + 1) % len(cycle)]
        if model.queue_kind == KIND_INCOMING and isinstance(
            source.key, (Direction, Port)
        ):
            travel_in: Optional[Direction] = source.key.opposite
            outs = [
                out
                for out in model.outs_for(travel_in)
                if topology.neighbor(source.node, out) == target.node
                and out.opposite == target.key
            ]
            if not outs:  # pragma: no cover - the CDG edge guarantees one
                raise RuntimeError(f"no turn realizes CDG edge {source}->{target}")
            steps.append(TransitionStep(source, travel_in, outs[0], target))
            continue
        realized = False
        for out in _central_outs(model, topology, source.node):
            if topology.neighbor(source.node, out) != target.node:
                continue
            for t_in in (None, *topology.directions):
                if (t_in, out) not in model.turns:
                    continue
                if t_in is not None and topology.neighbor(
                    source.node, t_in.opposite
                ) is None:
                    continue
                steps.append(TransitionStep(source, t_in, out, target))
                realized = True
                break
            if realized:
                break
        if not realized:  # pragma: no cover - the CDG edge guarantees one
            raise RuntimeError(f"no turn realizes CDG edge {source}->{target}")
    return tuple(steps)


# -- verdicts ------------------------------------------------------------------


def certify_model(
    model: TransitionModel,
    topology: Topology,
    capacity: int,
    *,
    router: str,
    topology_name: str,
    n: int,
    k: int,
    semantics: str = OPEN_LOOP,
) -> BoundsVerdict:
    """The queue-bound verdict for one explicit transition model."""
    if semantics not in (OPEN_LOOP, CLOSED_LOOP):
        raise ValueError(
            f"unknown semantics {semantics!r}; expected "
            f"{OPEN_LOOP!r} or {CLOSED_LOOP!r}"
        )
    _, claim_notes = validate_drain_claims(model)
    bounds = compute_channel_bounds(topology, model, capacity)
    note = "; ".join([model.note, *claim_notes]) if claim_notes else model.note

    key_worst: Dict[str, Optional[int]] = {}
    for channel, bound in bounds.items():
        label = _key_label(channel.key)
        previous = key_worst.get(label, 0)
        if previous is None or bound is None:
            key_worst[label] = None
        else:
            key_worst[label] = max(previous, bound)
    key_bounds = tuple(sorted(key_worst.items()))

    unbounded = sorted(c for c, bound in bounds.items() if bound is None)
    if unbounded:
        return BoundsVerdict(
            router,
            topology_name,
            n,
            k,
            UNBOUNDED,
            semantics=semantics,
            reason=REASON_OVERFLOW,
            witness=_overflow_witness(topology, model, unbounded[0]),
            channels=len(bounds),
            key_bounds=key_bounds,
            note=note,
        )
    if semantics == OPEN_LOOP:
        cycle = find_witness_cycle(build_cdg(topology, model))
        if cycle:
            return BoundsVerdict(
                router,
                topology_name,
                n,
                k,
                UNBOUNDED,
                semantics=semantics,
                reason=REASON_WEDGE,
                witness=_annotate_cycle(topology, model, cycle),
                channels=len(bounds),
                key_bounds=key_bounds,
                note=note,
            )
    worst = max(bound for bound in bounds.values() if bound is not None)
    return BoundsVerdict(
        router,
        topology_name,
        n,
        k,
        BOUNDED,
        semantics=semantics,
        bound=worst,
        channels=len(bounds),
        key_bounds=key_bounds,
        note=note,
    )


def certify_algorithm(
    algorithm: Any,
    router: str,
    topology_name: str,
    n: int,
    k: int,
    *,
    semantics: str = OPEN_LOOP,
) -> BoundsVerdict:
    """Verdict for one concrete algorithm instance on one topology."""
    topology = make_topology(topology_name, n)
    model = algorithm.enumerate_transitions(topology, k)
    if model is None:
        return BoundsVerdict(
            router,
            topology_name,
            n,
            k,
            UNKNOWN,
            semantics=semantics,
            note="no static transition model",
        )
    capacity = int(algorithm.queue_spec.capacity)
    return certify_model(
        model,
        topology,
        capacity,
        router=router,
        topology_name=topology_name,
        n=n,
        k=k,
        semantics=semantics,
    )


def certify_router(
    router: str,
    topology_name: str,
    n: int,
    k: int,
    *,
    seed: int = 0,
    semantics: str = OPEN_LOOP,
) -> BoundsVerdict:
    """Verdict for one *registered* router, built by the differential
    registry's factory so the certified configuration is exactly the one
    the runtime cross-check exercises."""
    from repro.verify.differential import REGISTRY

    entry = REGISTRY.get(router)
    if entry is None:
        raise ValueError(
            f"unknown router {router!r}; expected one of {sorted(REGISTRY)}"
        )
    if topology_name not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology_name!r}; expected one of {TOPOLOGIES}"
        )
    if not entry.supports_topology(topology_name):
        raise ValueError(
            f"router {router!r} is not registered on topology "
            f"{topology_name!r}; supported: {entry.topologies}"
        )
    algorithm = entry.factory(k, seed)
    return certify_algorithm(
        algorithm, router, topology_name, n, k, semantics=semantics
    )


def certify_registry(
    *,
    ns: Iterable[int] = (4,),
    ks: Iterable[int] = (1, 2, 4),
    topologies: Iterable[str] = TOPOLOGIES,
    routers: Iterable[str] | None = None,
    semantics: str = OPEN_LOOP,
) -> List[BoundsVerdict]:
    """Verdicts for every requested (router, topology, n, k) combination."""
    from repro.verify.differential import REGISTRY

    names = sorted(routers) if routers is not None else sorted(REGISTRY)
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown routers {unknown}; expected a subset of {sorted(REGISTRY)}"
        )
    verdicts: List[BoundsVerdict] = []
    for router in names:
        entry = REGISTRY[router]
        for topology_name in topologies:
            if not entry.supports_topology(topology_name):
                continue  # e.g. a compass-only 2D router on a 3D grid
            for n in ns:
                for k in ks:
                    verdicts.append(
                        certify_router(
                            router, topology_name, n, k, semantics=semantics
                        )
                    )
    return verdicts


# -- agreement with the runtime QueueBoundOracle -------------------------------


def check_bounds_agreement(
    verdicts: Sequence[BoundsVerdict] | None = None,
    *,
    n: int = 4,
    ks: Iterable[int] = (1, 2, 4),
) -> List[str]:
    """Cross-check static verdicts against the runtime ``QueueBoundOracle``.

    Both directions are checked over the differential registry's cells:

    - ``BOUNDED(b)`` is a proof, so every oracle-checked run of that
      (router, topology) must finish with zero queue-bound violations and
      an observed ``max_queue_len`` of at most ``b``; and the differential
      table must not expect a stall there (a wedged run is unbounded
      source backlog under open-loop semantics).
    - Conversely, every runtime queue-bound violation and every expected
      stall must sit on an ``UNBOUNDED`` (or ``UNKNOWN``) cell: the static
      pass must predict what the runtime can exhibit.  (``UNBOUNDED`` is
      necessary, not sufficient -- an UNBOUNDED cell whose runs stay clean
      is *not* a finding.)

    Returns human-readable disagreement strings (empty = layers agree).
    """
    from repro.verify.differential import (
        REGISTRY,
        build_instance,
        checked_run,
        step_budget,
    )

    ks = tuple(ks)
    if verdicts is None:
        verdicts = certify_registry(ns=(n,), ks=ks)

    by_cell: Dict[Tuple[str, str], List[BoundsVerdict]] = {}
    for verdict in verdicts:
        by_cell.setdefault((verdict.router, verdict.topology), []).append(verdict)

    findings: List[str] = []
    for (router, topology_name), group in sorted(by_cell.items()):
        kinds = {v.verdict for v in group}
        if len(kinds) > 1:
            findings.append(
                f"{router}/{topology_name}: bounds verdict unstable across "
                f"(n, k): {sorted(kinds)}"
            )
            continue
        kind = next(iter(kinds))
        entry = REGISTRY.get(router)
        if entry is None:
            findings.append(f"{router}: not in the differential registry")
            continue
        families = FAMILIES_BY_TOPOLOGY[topology_name]
        expected_stalls = [f for f in families if not entry.expects_completion(f)]
        if kind == BOUNDED and expected_stalls:
            findings.append(
                f"{router}/{topology_name}: statically BOUNDED but the "
                f"differential table expects stalls on {expected_stalls} -- "
                "a wedge is unbounded source backlog, so one layer is wrong"
            )
        if kind == UNKNOWN:
            continue  # nothing certified, nothing to contradict
        bound_by_k = {v.k: v.bound for v in group}
        for family in families:
            for k in sorted(set(ks)):
                topology, packets = build_instance(family, n, seed=0)
                expected = entry.expects_completion(family)
                cap = None if expected else min(step_budget(n, k), 50 * n)
                outcome = checked_run(
                    entry,
                    topology,
                    packets,
                    k=k,
                    seed=0,
                    mode="record",
                    max_steps=cap,
                )
                queue_violations = [
                    v for v in outcome.violations if v.oracle == "queue-bound"
                ]
                cell = f"{router}/{topology_name}/{family} n={n} k={k}"
                if kind == BOUNDED:
                    bound = bound_by_k.get(k)
                    if queue_violations:
                        findings.append(
                            f"{cell}: statically BOUNDED(b={bound}) but the "
                            f"runtime QueueBoundOracle fired: "
                            f"{queue_violations[0]}"
                        )
                    if bound is not None and outcome.max_queue_len > bound:
                        findings.append(
                            f"{cell}: observed max_queue_len="
                            f"{outcome.max_queue_len} exceeds the certified "
                            f"bound {bound}"
                        )
                    if expected and not outcome.completed:
                        findings.append(
                            f"{cell}: statically BOUNDED (no wedge possible) "
                            f"but the run stalled after {outcome.steps} steps"
                        )
    return findings
