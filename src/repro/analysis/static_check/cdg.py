"""Channel-dependency-graph deadlock analysis (Dally-Seitz, statically).

A *channel* is one blockable queue: ``(node, queue key)``.  The
channel-dependency graph (CDG) has an edge ``c1 -> c2`` whenever a packet
occupying ``c1`` may, under the router's symbolic
:class:`~repro.mesh.transitions.TransitionModel`, request space in ``c2``
on its next hop.  A deadlock configuration is a set of full queues each
waiting on the next, i.e. a cycle in this graph -- so:

- an **acyclic** CDG proves the router deadlock-free on that topology
  (``DEADLOCK_FREE``): no wait-for cycle can ever close;
- a **cyclic** CDG means deadlock cannot be excluded statically
  (``CYCLIC``): the verdict carries a minimal witness cycle, but whether
  traffic actually closes it depends on the workload (a cycle is necessary
  for deadlock, not sufficient);
- a router without a sound transition model is ``UNKNOWN``.

Queues whose inqueue policy provably always accepts (``TransitionModel.
blocking_keys`` excludes them) cannot be waited on and are left out of the
graph entirely -- this is how the Theorem 15 router's N/S queues and the
bufferless hot-potato router become statically deadlock-free.

The verdicts are cross-checked against the differential runner's deadlock
expectation table (:data:`repro.verify.differential.REGISTRY`): a router
the static pass proves deadlock-free must never be *expected* to stall in
the runtime layer, so the two layers cannot silently drift apart.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.mesh.directions import Direction
from repro.mesh.ndtopology import TOPOLOGY_NAMES, Port, build_topology
from repro.mesh.queues import CENTRAL, KIND_CENTRAL, KIND_INCOMING
from repro.mesh.topology import Topology
from repro.mesh.transitions import TransitionModel

#: Verdicts.
DEADLOCK_FREE = "DEADLOCK_FREE"
CYCLIC = "CYCLIC"
UNKNOWN = "UNKNOWN"

#: Workload families of the differential runner that run on each topology.
MESH_FAMILIES: Tuple[str, ...] = ("permutation", "hh", "dynamic")
TORUS_FAMILIES: Tuple[str, ...] = ("torus",)

#: Every registered analysis topology (one verdict column each).
TOPOLOGIES: Tuple[str, ...] = TOPOLOGY_NAMES

#: The differential workload families exercised on each topology, used by
#: the agreement gates to pair static verdicts with runtime expectations.
FAMILIES_BY_TOPOLOGY: Dict[str, Tuple[str, ...]] = {
    "mesh": MESH_FAMILIES,
    "torus": TORUS_FAMILIES,
    "mesh3d": ("mesh3d",),
    "torus3d": ("torus3d",),
    "pillar": ("pillar",),
}

Node = Tuple[int, ...]


def _key_name(key: object) -> str:
    """Stable label for a queue key: compass name, port name, or sentinel."""
    return key.name if isinstance(key, (Direction, Port)) else str(key)


@dataclass(frozen=True, order=True)
class Channel:
    """One blockable queue: the unit vertex of the dependency graph."""

    node: Node
    key: object  # Direction/Port (incoming regime) or the CENTRAL sentinel

    def __str__(self) -> str:
        return f"{self.node}/{_key_name(self.key)}"

    def to_dict(self) -> Dict[str, Any]:
        return {"node": list(self.node), "key": _key_name(self.key)}


Adjacency = Dict[Channel, Tuple[Channel, ...]]


def make_topology(name: str, n: int) -> Topology:
    """The named analysis topology at side length ``n``."""
    return build_topology(name, n)


def _central_outs(model: TransitionModel, topology: Topology, node: Node) -> Tuple[Direction, ...]:
    """Travel directions packets in a central queue may depart in.

    A central queue mixes every flow through the node: packets that arrived
    travelling any direction with an existing inlink, plus freshly injected
    ones.  The union of the model's outs over all those travel-ins.
    """
    outs: set[Direction] = set(model.outs_for(None))
    for t_in in topology.directions:
        if topology.neighbor(node, t_in.opposite) is not None:
            outs.update(model.outs_for(t_in))
    return tuple(d for d in topology.directions if d in outs)


def build_cdg(topology: Topology, model: TransitionModel) -> Adjacency:
    """The channel-dependency graph over the model's blockable queues.

    Conventions: a packet travelling ``t`` sits (incoming regime) under
    queue key ``t.opposite``; the default injection rule places injected
    packets in the queue of the inlink they would have arrived on, so every
    occupant of queue ``q`` behaves like a ``q.opposite``-travelling
    arrival.  Edges land only on blockable target queues -- a queue that
    always accepts can never be waited on, so it cannot extend a cycle.
    """
    adjacency: Adjacency = {}
    if model.never_blocks:
        return adjacency
    if model.queue_kind == KIND_CENTRAL:
        blockable = CENTRAL in model.blocking_keys
        for node in topology.nodes():
            if not blockable:
                break
            outs = _central_outs(model, topology, node)
            targets: List[Channel] = []
            for out in outs:
                neighbor = topology.neighbor(node, out)
                if neighbor is not None:
                    targets.append(Channel(neighbor, CENTRAL))
            adjacency[Channel(node, CENTRAL)] = tuple(sorted(targets))
        return adjacency
    if model.queue_kind != KIND_INCOMING:  # pragma: no cover - QueueSpec guards
        raise ValueError(f"unknown queue kind {model.queue_kind!r}")
    keys = tuple(d for d in topology.directions if d in model.blocking_keys)
    for node in topology.nodes():
        for key in keys:
            travel_in = key.opposite
            targets = []
            for out in model.outs_for(travel_in):
                neighbor = topology.neighbor(node, out)
                if neighbor is None:
                    continue
                target_key = out.opposite  # arrival queue at the neighbour
                if target_key in model.blocking_keys:
                    targets.append(Channel(neighbor, target_key))
            adjacency[Channel(node, key)] = tuple(sorted(targets))
    return adjacency


# -- cycle detection -----------------------------------------------------------


def tarjan_scc(adjacency: Mapping[Channel, Sequence[Channel]]) -> List[List[Channel]]:
    """Strongly connected components, iteratively (no recursion limit).

    Components come out in reverse topological order; membership order
    within a component follows discovery order, which is deterministic
    because vertices and edge lists are iterated in sorted order.
    """
    index: Dict[Channel, int] = {}
    lowlink: Dict[Channel, int] = {}
    on_stack: Dict[Channel, bool] = {}
    stack: List[Channel] = []
    components: List[List[Channel]] = []
    counter = 0

    for root in sorted(adjacency):
        if root in index:
            continue
        # Iterative Tarjan: (vertex, iterator position into its out-edges).
        work: List[Tuple[Channel, int]] = [(root, 0)]
        while work:
            vertex, edge_pos = work.pop()
            if edge_pos == 0:
                index[vertex] = lowlink[vertex] = counter
                counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            advanced = False
            out_edges = adjacency.get(vertex, ())
            for position in range(edge_pos, len(out_edges)):
                successor = out_edges[position]
                if successor not in adjacency:
                    continue  # edge into a vertex outside the graph
                if successor not in index:
                    work.append((vertex, position + 1))
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack.get(successor, False):
                    lowlink[vertex] = min(lowlink[vertex], index[successor])
            if advanced:
                continue
            if lowlink[vertex] == index[vertex]:
                component: List[Channel] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
    return components


def _cyclic_vertices(adjacency: Adjacency) -> List[Channel]:
    """Vertices lying on at least one cycle (nontrivial SCC or self-loop)."""
    out: List[Channel] = []
    for component in tarjan_scc(adjacency):
        if len(component) > 1:
            out.extend(component)
        elif component and component[0] in adjacency.get(component[0], ()):
            out.append(component[0])
    return out


def find_witness_cycle(adjacency: Adjacency) -> Tuple[Channel, ...]:
    """A minimal witness cycle, or () when the graph is acyclic.

    BFS from each cyclic vertex (in sorted order) back to itself; the
    shortest cycle found wins, ties broken by starting vertex order, so the
    witness is deterministic.  Self-loops are length-1 witnesses.
    """
    cyclic = set(_cyclic_vertices(adjacency))
    if not cyclic:
        return ()
    best: Tuple[Channel, ...] = ()
    for start in sorted(cyclic):
        if start in adjacency.get(start, ()):
            return (start,)
        if best and len(best) <= 2:
            break  # nothing shorter than 2 remains possible
        parent: Dict[Channel, Channel] = {}
        queue: deque[Channel] = deque([start])
        seen = {start}
        found = False
        while queue and not found:
            vertex = queue.popleft()
            for successor in adjacency.get(vertex, ()):
                if successor == start:
                    cycle = [vertex]
                    while cycle[-1] != start:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    if not best or len(cycle) < len(best):
                        best = tuple(cycle)
                    found = True
                    break
                if successor in cyclic and successor not in seen:
                    seen.add(successor)
                    parent[successor] = vertex
                    queue.append(successor)
    return best


# -- verdicts ------------------------------------------------------------------


@dataclass(frozen=True)
class CdgVerdict:
    """The static deadlock verdict for one (router, topology, n, k)."""

    router: str
    topology: str
    n: int
    k: int
    verdict: str
    witness: Tuple[Channel, ...] = ()
    channels: int = 0
    edges: int = 0
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "router": self.router,
            "topology": self.topology,
            "n": self.n,
            "k": self.k,
            "verdict": self.verdict,
            "witness": [c.to_dict() for c in self.witness],
            "channels": self.channels,
            "edges": self.edges,
            "note": self.note,
        }


def analyze_algorithm(
    algorithm: Any, router: str, topology_name: str, n: int, k: int
) -> CdgVerdict:
    """Verdict for one concrete algorithm instance on one topology."""
    topology = make_topology(topology_name, n)
    model = algorithm.enumerate_transitions(topology, k)
    if model is None:
        return CdgVerdict(
            router, topology_name, n, k, UNKNOWN, note="no static transition model"
        )
    adjacency = build_cdg(topology, model)
    edges = sum(len(targets) for targets in adjacency.values())
    witness = find_witness_cycle(adjacency)
    verdict = CYCLIC if witness else DEADLOCK_FREE
    return CdgVerdict(
        router,
        topology_name,
        n,
        k,
        verdict,
        witness=witness,
        channels=len(adjacency),
        edges=edges,
        note=model.note,
    )


def analyze_router(
    router: str, topology_name: str, n: int, k: int, *, seed: int = 0
) -> CdgVerdict:
    """Verdict for one *registered* router (the differential registry's
    factory builds it, so the analyzed configuration is exactly the one the
    runtime cross-check exercises)."""
    from repro.verify.differential import REGISTRY

    entry = REGISTRY.get(router)
    if entry is None:
        raise ValueError(
            f"unknown router {router!r}; expected one of {sorted(REGISTRY)}"
        )
    if topology_name not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology_name!r}; expected one of {TOPOLOGIES}"
        )
    if not entry.supports_topology(topology_name):
        raise ValueError(
            f"router {router!r} is not registered on topology "
            f"{topology_name!r}; supported: {entry.topologies}"
        )
    algorithm = entry.factory(k, seed)
    return analyze_algorithm(algorithm, router, topology_name, n, k)


def analyze_registry(
    *,
    ns: Iterable[int] = (4,),
    ks: Iterable[int] = (1, 2, 4),
    topologies: Iterable[str] = TOPOLOGIES,
    routers: Iterable[str] | None = None,
) -> List[CdgVerdict]:
    """Verdicts for every requested (router, topology, n, k) combination."""
    from repro.verify.differential import REGISTRY

    names = sorted(routers) if routers is not None else sorted(REGISTRY)
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown routers {unknown}; expected a subset of {sorted(REGISTRY)}"
        )
    verdicts: List[CdgVerdict] = []
    for router in names:
        entry = REGISTRY[router]
        for topology_name in topologies:
            if not entry.supports_topology(topology_name):
                continue  # e.g. a compass-only 2D router on a 3D grid
            for n in ns:
                for k in ks:
                    verdicts.append(analyze_router(router, topology_name, n, k))
    return verdicts


# -- agreement with the differential expectation table -------------------------


#: AgreementFinding severities.
SEVERITY_ERROR = "error"
SEVERITY_ADVISORY = "advisory"


@dataclass(frozen=True)
class AgreementFinding:
    """One CDG/differential disagreement, with a severity.

    ``error`` findings mean one of the layers is provably wrong and fail
    the analyze gate; ``advisory`` findings report a disagreement that is
    logically permitted (a cycle is necessary for deadlock, not
    sufficient) but worth surfacing rather than silently ignoring.
    """

    severity: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.message}"


def check_agreement_detailed(
    verdicts: Sequence[CdgVerdict] | None = None,
    *,
    n: int = 4,
    ks: Iterable[int] = (1, 2, 4),
) -> List[AgreementFinding]:
    """Cross-check CDG verdicts against the runtime deadlock expectations,
    in both directions.

    Errors (one of the layers is provably wrong):

    - ``DEADLOCK_FREE`` is a *proof*, so a statically deadlock-free router
      must be expected to complete every workload family on that topology
      -- an expected stall there fails the gate.
    - Conversely, every family the differential table marks as
      deadlock/livelock-prone must sit on a ``CYCLIC`` (or ``UNKNOWN``)
      topology: the static pass must exhibit the cycle that makes the
      observed stall possible.
    - A verdict that flips across (n, k) for the same (router, topology).

    Advisories (permitted, but no longer silently ignored): a ``CYCLIC``
    verdict for a router the registry expects to complete every family.  A
    dependency cycle is necessary for deadlock, not sufficient -- most
    adaptive routers drain their cycles on every workload we fuzz -- but
    the cell is one workload away from a wedge, so the disagreement is
    reported instead of dropped.
    """
    from repro.verify.differential import REGISTRY

    if verdicts is None:
        verdicts = analyze_registry(ns=(n,), ks=ks)
    by_cell: Dict[Tuple[str, str], set[str]] = {}
    for verdict in verdicts:
        by_cell.setdefault((verdict.router, verdict.topology), set()).add(
            verdict.verdict
        )
    findings: List[AgreementFinding] = []
    for (router, topology_name), kinds in sorted(by_cell.items()):
        if len(kinds) > 1:
            findings.append(
                AgreementFinding(
                    SEVERITY_ERROR,
                    f"{router}/{topology_name}: verdict unstable across "
                    f"(n, k): {sorted(kinds)}",
                )
            )
            continue
        verdict_kind = next(iter(kinds))
        entry = REGISTRY.get(router)
        if entry is None:
            findings.append(
                AgreementFinding(
                    SEVERITY_ERROR, f"{router}: not in the differential registry"
                )
            )
            continue
        families = FAMILIES_BY_TOPOLOGY[topology_name]
        expected_stalls = [f for f in families if not entry.expects_completion(f)]
        if verdict_kind == DEADLOCK_FREE and expected_stalls:
            findings.append(
                AgreementFinding(
                    SEVERITY_ERROR,
                    f"{router}/{topology_name}: statically DEADLOCK_FREE but "
                    f"the differential table expects stalls on "
                    f"{expected_stalls} -- one of the layers is wrong",
                )
            )
        elif verdict_kind == CYCLIC and not expected_stalls:
            findings.append(
                AgreementFinding(
                    SEVERITY_ADVISORY,
                    f"{router}/{topology_name}: statically CYCLIC but the "
                    f"differential table expects completion of "
                    f"{list(families)} -- the cycle has not been observed "
                    "to close (necessary, not sufficient)",
                )
            )
    return findings


def check_agreement(
    verdicts: Sequence[CdgVerdict] | None = None,
    *,
    n: int = 4,
    ks: Iterable[int] = (1, 2, 4),
) -> List[str]:
    """The hard-error subset of :func:`check_agreement_detailed`.

    Returns human-readable disagreement strings (empty = layers agree in
    every direction that is sound).  Advisory findings -- ``CYCLIC`` with
    all-complete expectations -- are reported separately by the detailed
    variant and do not fail this gate.
    """
    return [
        finding.message
        for finding in check_agreement_detailed(verdicts, n=n, ks=ks)
        if finding.severity == SEVERITY_ERROR
    ]
