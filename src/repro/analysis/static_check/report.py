"""The router x topology verdict matrix, rendered as a markdown table.

Single source of truth for the table embedded in ``docs/TOPOLOGY.md``:
``python -m repro analyze cdg --format markdown`` prints it, and the
docs-drift test (``tests/docs/test_docs_drift.py``) regenerates it and
diffs it against the checked-in document, so the documented verdicts can
never drift from what the CDG analyzer and the queue-bound certifier
actually prove about the registered routers.

Each cell pairs the two static verdicts for one (router, topology) at the
canonical analysis size (n=4, k=2): ``<CDG> / <bounds>`` -- for example
``DEADLOCK_FREE / BOUNDED(b=2)``.  An em dash marks a pair the
differential registry does not support (the compass-only 2D routers on
d-dimensional topologies).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.analysis.static_check.bounds import certify_router
from repro.analysis.static_check.cdg import TOPOLOGIES, analyze_router

#: Cell placeholder for (router, topology) pairs outside the registry.
NOT_APPLICABLE = "—"

#: The canonical analysis cell the documentation table is issued at.
TABLE_N = 4
TABLE_K = 2

Cell = Tuple[str, str]
Matrix = Dict[str, Dict[str, Cell]]


def verdict_matrix(
    *,
    n: int = TABLE_N,
    k: int = TABLE_K,
    topologies: Tuple[str, ...] = TOPOLOGIES,
    routers: Optional[Iterable[str]] = None,
) -> Matrix:
    """``{router: {topology: (cdg_verdict, bounds_description)}}`` at (n, k).

    Pairs the registry does not support are absent from the inner mapping
    (rendered as :data:`NOT_APPLICABLE` by :func:`render_markdown`).
    """
    from repro.verify.differential import REGISTRY

    names = sorted(routers) if routers is not None else sorted(REGISTRY)
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown routers {unknown}; expected a subset of {sorted(REGISTRY)}"
        )
    matrix: Matrix = {}
    for router in names:
        entry = REGISTRY[router]
        row: Dict[str, Cell] = {}
        for topology_name in topologies:
            if not entry.supports_topology(topology_name):
                continue
            cdg = analyze_router(router, topology_name, n, k)
            bounds = certify_router(router, topology_name, n, k)
            row[topology_name] = (cdg.verdict, bounds.describe())
        matrix[router] = row
    return matrix


def render_markdown(
    matrix: Mapping[str, Mapping[str, Cell]],
    *,
    topologies: Tuple[str, ...] = TOPOLOGIES,
) -> str:
    """The matrix as a GitHub-flavoured markdown table (no trailing newline)."""
    header = "| router | " + " | ".join(topologies) + " |"
    rule = "|" + "---|" * (len(topologies) + 1)
    lines = [header, rule]
    for router in sorted(matrix):
        cells: list[str] = []
        for topology_name in topologies:
            cell = matrix[router].get(topology_name)
            cells.append(f"{cell[0]} / {cell[1]}" if cell else NOT_APPLICABLE)
        lines.append(f"| {router} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def verdict_table_markdown(*, n: int = TABLE_N, k: int = TABLE_K) -> str:
    """The canonical documentation table (every router, every topology)."""
    return render_markdown(verdict_matrix(n=n, k=k))
