"""Checked-in lint baseline: CI fails on *new* violations only.

The baseline records the fingerprints ``(rule, path, normalized source
snippet)`` of violations that predate the lint, with a count per
fingerprint.  The diff against it classifies a fresh scan into ``new``
(fail CI) and ``fixed`` (fingerprints in the baseline that no longer fire
-- prune them with ``python -m repro analyze lint --update-baseline``).
Keying on the whitespace-normalized snippet rather than the line number
(or the verbatim line) keeps the baseline stable across line renumbering
*and* pure reformatting of the offending line.

Format version 2 stores the normalized snippet under ``"snippet"``;
version-1 files (verbatim ``"code"`` lines) are migrated transparently on
load by normalizing each entry, so a stale checkout never hard-fails.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.static_check.lint import LintViolation, normalize_snippet

Fingerprint = Tuple[str, str, str]  # (rule, path, normalized snippet)

#: Baseline file format version (1 = verbatim code lines, migrated on load).
_VERSION = 2


def baseline_path(root: Path | str | None = None) -> Path:
    """The canonical baseline location (next to this module)."""
    if root is not None:
        return (
            Path(root)
            / "src"
            / "repro"
            / "analysis"
            / "static_check"
            / "baseline.json"
        )
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: Path | str | None = None) -> Counter[Fingerprint]:
    """Fingerprint counts from the baseline file; empty when absent."""
    target = Path(path) if path is not None else baseline_path()
    if not target.exists():
        return Counter()
    payload = json.loads(target.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version not in (1, _VERSION):
        raise ValueError(
            f"{target}: unsupported baseline version {version!r} "
            f"(expected {_VERSION})"
        )
    counts: Counter[Fingerprint] = Counter()
    for entry in payload.get("entries", []):
        # Version 1 stored the verbatim line under "code"; normalizing it
        # here migrates old files to the version-2 keying transparently.
        snippet = entry["snippet"] if version == _VERSION else entry["code"]
        counts[
            (entry["rule"], entry["path"], normalize_snippet(snippet))
        ] += int(entry.get("count", 1))
    return counts


def save_baseline(
    violations: Iterable[LintViolation], path: Path | str | None = None
) -> Path:
    """Write the violations' fingerprints as the new baseline."""
    target = Path(path) if path is not None else baseline_path()
    counts: Counter[Fingerprint] = Counter(v.fingerprint for v in violations)
    entries: List[Dict[str, object]] = [
        {"rule": rule, "path": rel, "snippet": snippet, "count": count}
        for (rule, rel, snippet), count in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "entries": entries}
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def diff_against_baseline(
    violations: Iterable[LintViolation], path: Path | str | None = None
) -> Tuple[List[LintViolation], List[Fingerprint]]:
    """Split a scan into (new violations, fixed baseline fingerprints).

    A fingerprint seen more often than the baseline allows contributes its
    excess occurrences to ``new`` (so duplicating a baselined bad line still
    fails); baseline fingerprints no longer seen at all come back in
    ``fixed`` so the baseline can be pruned.
    """
    budget = load_baseline(path)
    seen: Counter[Fingerprint] = Counter()
    new: List[LintViolation] = []
    for violation in sorted(violations, key=lambda v: (v.path, v.line, v.col)):
        fingerprint = violation.fingerprint
        seen[fingerprint] += 1
        if seen[fingerprint] > budget.get(fingerprint, 0):
            new.append(violation)
    fixed = sorted(fp for fp in budget if seen.get(fp, 0) == 0)
    return new, fixed
