"""Static deadlock, queue-bound & determinism analysis (``docs/ANALYSIS.md``).

Three engines, wired into ``python -m repro analyze [cdg|bounds|lint|all]``:

- :mod:`repro.analysis.static_check.cdg` -- builds the channel-dependency
  graph of every registered router on every registered topology (2D
  mesh/torus, the d-dimensional grids, the irregular pillar mesh) from
  its symbolic :class:`~repro.mesh.transitions.TransitionModel`, runs
  cycle detection, and emits a ``DEADLOCK_FREE`` / ``CYCLIC`` /
  ``UNKNOWN`` verdict per (router, topology, n, k), cross-checked
  bidirectionally against the differential runner's deadlock
  expectation table.
- :mod:`repro.analysis.static_check.bounds` -- the static queue-bound
  certifier: abstract interpretation over the same transition models
  computes a fixed-point occupancy bound per queue and issues
  ``BOUNDED(b)`` / ``UNBOUNDED`` / ``UNKNOWN`` verdicts with concrete
  witness chains, cross-checked in both directions against the runtime
  ``QueueBoundOracle`` over the differential registry's cells.
- :mod:`repro.analysis.static_check.lint` -- an AST lint pass enforcing the
  simulator's reproducibility contract (no unseeded RNG, no wall clock in
  step logic, no bare asserts, no unordered-set iteration) plus the
  array-kernel hazard rules SC006-SC009 (aliasing mutation, unstable
  sorts, implicit dtypes, silent engine fallback).  Pre-existing
  violations live in a checked-in baseline
  (:mod:`repro.analysis.static_check.baseline`).
"""

from repro.analysis.static_check.cdg import (
    CYCLIC,
    DEADLOCK_FREE,
    UNKNOWN,
    AgreementFinding,
    CdgVerdict,
    Channel,
    analyze_registry,
    analyze_router,
    build_cdg,
    check_agreement,
    check_agreement_detailed,
    find_witness_cycle,
    tarjan_scc,
)
from repro.analysis.static_check.bounds import (
    BOUNDED,
    UNBOUNDED,
    BoundsVerdict,
    TransitionStep,
    certify_algorithm,
    certify_registry,
    certify_router,
    check_bounds_agreement,
    compute_channel_bounds,
    validate_drain_claims,
)
from repro.analysis.static_check.report import (
    render_markdown,
    verdict_matrix,
    verdict_table_markdown,
)
from repro.analysis.static_check.lint import LintViolation, run_lint, lint_source, RULES
from repro.analysis.static_check.baseline import (
    baseline_path,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)

__all__ = [
    "CYCLIC",
    "DEADLOCK_FREE",
    "UNKNOWN",
    "AgreementFinding",
    "CdgVerdict",
    "Channel",
    "analyze_registry",
    "analyze_router",
    "build_cdg",
    "check_agreement",
    "check_agreement_detailed",
    "find_witness_cycle",
    "tarjan_scc",
    "BOUNDED",
    "UNBOUNDED",
    "BoundsVerdict",
    "TransitionStep",
    "certify_algorithm",
    "certify_registry",
    "certify_router",
    "check_bounds_agreement",
    "compute_channel_bounds",
    "validate_drain_claims",
    "render_markdown",
    "verdict_matrix",
    "verdict_table_markdown",
    "LintViolation",
    "RULES",
    "run_lint",
    "lint_source",
    "baseline_path",
    "diff_against_baseline",
    "load_baseline",
    "save_baseline",
]
