"""Static deadlock & determinism analysis (see ``docs/ANALYSIS.md``).

Two engines, wired into ``python -m repro analyze [cdg|lint|all]``:

- :mod:`repro.analysis.static_check.cdg` -- builds the channel-dependency
  graph of every registered router on the mesh and the torus from its
  symbolic :class:`~repro.mesh.transitions.TransitionModel`, runs cycle
  detection, and emits a ``DEADLOCK_FREE`` / ``CYCLIC`` / ``UNKNOWN``
  verdict per (router, topology, n, k), cross-checked against the
  differential runner's deadlock expectation table.
- :mod:`repro.analysis.static_check.lint` -- an AST lint pass enforcing the
  simulator's reproducibility contract: no unseeded RNG, no wall clock in
  step logic, no bare asserts for runtime invariants, no iteration over
  unordered sets where order reaches packet scheduling.  Pre-existing
  violations live in a checked-in baseline
  (:mod:`repro.analysis.static_check.baseline`).
"""

from repro.analysis.static_check.cdg import (
    CYCLIC,
    DEADLOCK_FREE,
    UNKNOWN,
    CdgVerdict,
    Channel,
    analyze_registry,
    analyze_router,
    build_cdg,
    check_agreement,
    find_witness_cycle,
    tarjan_scc,
)
from repro.analysis.static_check.lint import LintViolation, run_lint, lint_source, RULES
from repro.analysis.static_check.baseline import (
    baseline_path,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)

__all__ = [
    "CYCLIC",
    "DEADLOCK_FREE",
    "UNKNOWN",
    "CdgVerdict",
    "Channel",
    "analyze_registry",
    "analyze_router",
    "build_cdg",
    "check_agreement",
    "find_witness_cycle",
    "tarjan_scc",
    "LintViolation",
    "RULES",
    "run_lint",
    "lint_source",
    "baseline_path",
    "diff_against_baseline",
    "load_baseline",
    "save_baseline",
]
