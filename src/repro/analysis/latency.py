"""Latency and throughput statistics from routing runs.

Downstream network-evaluation users expect latency distributions and
throughput-over-time series, not just completion times; these helpers
compute them from :class:`~repro.mesh.simulator.RunResult` data (packet
injection/delivery times and the optional per-step series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.mesh.packet import Packet
from repro.mesh.simulator import RunResult


@dataclass(frozen=True)
class LatencyStats:
    """Distribution of per-packet latencies (delivery - injection).

    Attributes:
        count: Delivered packets included.
        mean / p50 / p95 / p99 / max: The usual summary points.
        mean_slowdown: Mean of latency / shortest-path distance over
            packets with nonzero distance (1.0 = every packet took an
            uncontended shortest path).
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: int
    mean_slowdown: float


def latency_stats(
    result: RunResult,
    packets: Sequence[Packet],
    distances: Mapping[int, int] | None = None,
) -> LatencyStats:
    """Compute latency statistics for one run.

    Args:
        result: The finished run.
        packets: The instance (used for injection times and, with
            ``distances``, slowdowns).
        distances: pid -> shortest-path distance.  When given, the mean
            slowdown is computed; otherwise it is reported as ``nan``.
    """
    injection = {p.pid: p.injection_time for p in packets}
    lat = np.array(
        [t - injection[pid] for pid, t in result.delivery_times.items()],
        dtype=float,
    )
    if lat.size == 0:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0, float("nan"))
    slowdown = float("nan")
    if distances is not None:
        ratios = [
            (result.delivery_times[pid] - injection[pid]) / distances[pid]
            for pid in result.delivery_times
            if distances.get(pid, 0) > 0
        ]
        if ratios:
            slowdown = float(np.mean(ratios))
    return LatencyStats(
        count=int(lat.size),
        mean=float(lat.mean()),
        p50=float(np.percentile(lat, 50)),
        p95=float(np.percentile(lat, 95)),
        p99=float(np.percentile(lat, 99)),
        max=int(lat.max()),
        mean_slowdown=slowdown,
    )


def throughput_series(result: RunResult, window: int = 1) -> list[tuple[int, float]]:
    """Deliveries per step, optionally averaged over a trailing window.

    Computed from ``delivery_times``; works without per-step series
    recording.  Returns (step, deliveries/step) pairs covering 1..steps.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    per_step = np.zeros(result.steps + 1, dtype=float)
    for t in result.delivery_times.values():
        if t > 0:
            per_step[min(t, result.steps)] += 1
    out = []
    for t in range(1, result.steps + 1):
        lo = max(1, t - window + 1)
        out.append((t, float(per_step[lo : t + 1].mean())))
    return out


def peak_throughput(result: RunResult, window: int = 8) -> float:
    """Highest windowed delivery rate achieved during the run."""
    series = throughput_series(result, window)
    return max((v for _, v in series), default=0.0)
