"""Routing measurements: one call, one comparable record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import Simulator
from repro.mesh.topology import Topology


@dataclass(frozen=True)
class RoutingMeasurement:
    """Summary of one routing run.

    Attributes:
        algorithm: The algorithm's name.
        completed: All packets delivered within the step budget.
        steps: Steps executed (delivery time of the last packet when
            completed; the budget otherwise).
        max_queue_len: Largest single-queue occupancy observed.
        max_node_load: Largest per-node total observed.
        total_moves: Link transmissions (network load).
        avg_delivery_time: Mean delivery step over delivered packets.
    """

    algorithm: str
    completed: bool
    steps: int
    max_queue_len: int
    max_node_load: int
    total_moves: int
    avg_delivery_time: float


def measure_routing(
    topology: Topology,
    algorithm: RoutingAlgorithm,
    packets: Iterable[Packet],
    max_steps: int = 1_000_000,
) -> RoutingMeasurement:
    """Run one instance and summarize it."""
    sim = Simulator(topology, algorithm, list(packets))
    result = sim.run(max_steps=max_steps)
    times = list(result.delivery_times.values())
    return RoutingMeasurement(
        algorithm=algorithm.name,
        completed=result.completed,
        steps=result.steps,
        max_queue_len=result.max_queue_len,
        max_node_load=result.max_node_load,
        total_moves=result.total_moves,
        avg_delivery_time=sum(times) / len(times) if times else 0.0,
    )


def compare_algorithms(
    topology: Topology,
    factories: Sequence[tuple[str, Callable[[], RoutingAlgorithm]]],
    workload: Callable[[], list[Packet]],
    max_steps: int = 1_000_000,
) -> list[RoutingMeasurement]:
    """Run the same (regenerated) workload through several algorithms."""
    out = []
    for _name, factory in factories:
        out.append(measure_routing(topology, factory(), workload(), max_steps))
    return out
