"""Summary tables over the campaign result store.

The store rows (``campaigns/<name>/results.jsonl``) are kind-heterogeneous;
this module flattens them into one readable table for ``python -m repro
campaign show`` and for ad-hoc analysis.  It also reads the machine-readable
``benchmarks/results/<name>.json`` files the benchmark fixture records, so
old (fixture-recorded) and new (store-backed) results can be consumed
uniformly.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.analysis.report import format_table


def _headline(row: dict[str, Any]) -> str:
    """One human-scannable cell summarizing a trial's key metrics."""
    metrics = row.get("metrics")
    if metrics is None:
        return (row.get("error") or row["status"]).splitlines()[0]
    kind = row["spec"]["kind"]
    if kind == "route":
        steps = metrics["steps"] if metrics["completed"] else "STALLED"
        return f"steps={steps} delivered={metrics['delivered']}/{metrics['total_packets']}"
    if kind == "lower_bound":
        return (
            f"bound={metrics['bound_steps']} measured={metrics['measured_steps']} "
            f"exchanges={metrics['exchange_count']}"
        )
    if kind == "section6":
        return f"actual={metrics['actual_steps']} scheduled={metrics['scheduled_steps']}"
    if kind == "sort_route":
        return f"steps={metrics['total_steps']}"
    return json.dumps(metrics, sort_keys=True)


def _load(row: dict[str, Any]) -> Any:
    metrics = row.get("metrics") or {}
    return metrics.get("max_queue_len", metrics.get("max_node_load", ""))


def summarize_rows(rows: list[dict[str, Any]]) -> str:
    """The ``campaign show`` table for one campaign's result rows."""
    table_rows = []
    for row in rows:
        spec = row["spec"]
        what = spec["algorithm"] or spec["construction"] or spec["kind"]
        table_rows.append(
            [
                row["index"],
                spec["kind"],
                what,
                spec["n"],
                spec["k"],
                spec["seed"],
                row["status"],
                _headline(row),
                _load(row),
                row.get("label", ""),
            ]
        )
    return format_table(
        ["#", "kind", "algorithm", "n", "k", "seed", "status", "headline", "max q/load", "label"],
        table_rows,
    )


def summarize_manifest(manifest: dict[str, Any]) -> str:
    """The ``campaign status`` report for one campaign's manifest."""
    telemetry = manifest.get("telemetry", {})
    lines = [
        f"campaign: {manifest['name']}",
        f"code version: {manifest.get('code_version', '?')}",
        f"workers: {manifest.get('workers', '?')}",
        "trials: {total} total, {ok} ok, {error} error, {timeout} timeout, "
        "{cached} cached".format(
            total=telemetry.get("total", len(manifest.get("trials", []))),
            ok=telemetry.get("ok", "?"),
            error=telemetry.get("error", "?"),
            timeout=telemetry.get("timeout", "?"),
            cached=telemetry.get("cached", "?"),
        ),
        f"wall: {telemetry.get('wall_s', '?')}s total, "
        f"{telemetry.get('max_trial_wall_s', '?')}s slowest trial, "
        f"max queue length {telemetry.get('max_queue_len', '?')}",
    ]
    failures = [t for t in manifest.get("trials", []) if t["status"] != "ok"]
    if failures:
        lines.append("failures:")
        for t in failures:
            first = (t.get("error") or t["status"]).splitlines()[0]
            lines.append(f"  #{t['index']} [{t['status']}] {first}")
    return "\n".join(lines)


def load_recorded_result(path: str | pathlib.Path) -> dict[str, Any]:
    """One ``benchmarks/results/<name>.json`` file (the fixture's output)."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict) or "text" not in data:
        raise ValueError(f"not a recorded benchmark result: {path}")
    return data


def load_recorded_results(results_dir: str | pathlib.Path) -> dict[str, dict[str, Any]]:
    """Every recorded benchmark result in a directory, keyed by name."""
    out = {}
    for path in sorted(pathlib.Path(results_dir).glob("*.json")):
        out[path.stem] = load_recorded_result(path)
    return out
