"""Turning intervals: the accounting object of Theorem 15's proof.

"For any fixed row i, define a *turning interval* to begin when an East or
West queue at some column j in row i contains k packets, all of which want
to turn into column j, and to end when the last of these k packets turns.
There are at most n/k turning intervals for row i [...] the turning
interval itself can last at most n steps."

:class:`TurningIntervalMonitor` observes a simulator (as its interceptor,
i.e. at phase (b), after scheduling and before transmission) and records
every turning interval: where it started, when, and how long it lasted.
Benchmarks verify the proof's two counting claims on live executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mesh.directions import Direction
from repro.mesh.simulator import ScheduledMove, Simulator

HORIZONTAL_QUEUES = (Direction.E, Direction.W)


@dataclass
class TurningInterval:
    """One observed turning interval."""

    row: int
    column: int
    queue: Direction
    started: int
    ended: int | None = None
    members: frozenset[int] = frozenset()

    @property
    def duration(self) -> int | None:
        return None if self.ended is None else self.ended - self.started


@dataclass
class TurningIntervalMonitor:
    """Detects turning intervals in an incoming-queue dimension-order run.

    Install as the simulator's interceptor.  An interval begins the first
    step an E/W queue holds exactly ``k`` packets that all want to turn
    into the queue's column (their destination column equals the node's
    column); it ends when none of those ``k`` packets remains in the queue.

    Attributes:
        k: The queue capacity of the monitored router.
        intervals: All completed and open intervals, in start order.
    """

    k: int
    intervals: list[TurningInterval] = field(default_factory=list)
    _open: dict[tuple[tuple[int, int], Direction], TurningInterval] = field(
        default_factory=dict
    )

    def __call__(self, sim: Simulator, schedule: list[ScheduledMove]) -> None:
        t = sim.time
        for node, queues in sim.queues.items():
            for key in HORIZONTAL_QUEUES:
                q = queues.get(key)
                slot = (node, key)
                current = self._open.get(slot)
                if current is not None:
                    still_there = q and any(
                        p.pid in current.members for p in q
                    )
                    if not still_there:
                        current.ended = t
                        del self._open[slot]
                        current = None
                if current is None and q and len(q) >= self.k:
                    if all(p.dest[0] == node[0] for p in q):
                        interval = TurningInterval(
                            row=node[1],
                            column=node[0],
                            queue=key,
                            started=t,
                            members=frozenset(p.pid for p in q),
                        )
                        self._open[slot] = interval
                        self.intervals.append(interval)

    def finalize(self, sim: Simulator) -> None:
        """Close any intervals still open when the run ends."""
        for interval in self._open.values():
            interval.ended = sim.time
        self._open.clear()

    # -- the proof's counting claims -----------------------------------------

    def intervals_per_row(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for iv in self.intervals:
            out[iv.row] = out.get(iv.row, 0) + 1
        return out

    def max_intervals_per_row(self) -> int:
        per_row = self.intervals_per_row()
        return max(per_row.values()) if per_row else 0

    def max_duration(self) -> int:
        durations = [iv.duration for iv in self.intervals if iv.duration is not None]
        return max(durations) if durations else 0
