"""Shared deterministic summary statistics for measured runs.

Both the fault-injection layer (:mod:`repro.faults.run`) and the
streaming-injection layer (:mod:`repro.streaming`) reduce a run to the
same shape of degradation row: latency percentiles over integer step
latencies plus per-oracle violation tallies.  These helpers are the
single implementation both layers share, so the numbers in a faults
table and a saturation table are computed identically.

Everything here is a pure function of its inputs -- no RNG, no wall
clock, no float interpolation -- so metrics rows stay byte-identical
across platforms and worker counts.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.verify.oracles import Violation


def percentile(
    values: Iterable[int], q: float, *, presorted: bool = False
) -> int | None:
    """Nearest-rank percentile (inclusive); None on an empty input.

    Nearest-rank keeps the value an actual observed latency (an integer
    number of steps), which keeps metrics rows exactly reproducible --
    no float interpolation to drift across platforms.

    Args:
        presorted: The caller vouches ``values`` is already an ascending
            sequence (skips the sort -- callers taking several quantiles
            of one sample sort once and pass it here per quantile).
    """
    vals = list(values) if presorted else sorted(values)
    if not vals:
        return None
    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return vals[min(rank, len(vals)) - 1]


def latency_percentiles(
    latencies: Iterable[int], qs: tuple[float, ...] = (50, 99)
) -> dict[str, int | None]:
    """The ``latency_pNN`` block of a degradation row.

    One ``latency_pNN`` key per requested percentile, each computed with
    the nearest-rank rule above (``None`` when nothing was delivered).
    The sample is sorted once, not once per quantile.
    """
    vals = sorted(latencies)
    return {
        f"latency_p{int(q) if float(q).is_integer() else q}": percentile(
            vals, q, presorted=True
        )
        for q in qs
    }


def violation_counts(violations: Iterable[Violation]) -> dict[str, int]:
    """Tally recorded oracle violations by oracle name.

    The degradation-counter helper: record-mode runs (faults sweeps,
    streaming runs) count violations per oracle instead of aborting, and
    every layer must bucket them the same way for its metrics row.
    """
    counts: dict[str, int] = {}
    for v in violations:
        counts[v.oracle] = counts.get(v.oracle, 0) + 1
    return counts


def delivered_fraction(delivered: int, total: int) -> float:
    """Delivered share of ``total`` packets; 1.0 for an empty instance."""
    if total <= 0:
        return 1.0
    return delivered / total


def degradation_metrics(
    *,
    delivered: int,
    total: int,
    latencies: Iterable[int],
    dropped: int = 0,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The common degradation block: delivered fraction, p50/p99, drops.

    ``extra`` entries (retransmission counters, rejection counters, ...)
    are merged in last so a layer can extend the row without changing
    the shared keys.
    """
    row: dict[str, Any] = {
        "delivered_fraction": delivered_fraction(delivered, total),
        **latency_percentiles(latencies, (50, 99)),
        "dropped_packets": dropped,
    }
    if extra:
        row.update(extra)
    return row
