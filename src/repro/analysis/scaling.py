"""Power-law fitting and crossover detection for bound-shape validation.

The paper's results are asymptotic: Theorem 14 says the adversarial time
grows like ``n^2 / k^2``, Theorem 15 like ``n^2 / k``, Section 6 like ``n``.
These helpers turn measured (parameter, time) series into fitted exponents
so each bench can assert the *shape* rather than absolute constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``t = C * x^alpha`` on log-log axes.

    Attributes:
        exponent: The fitted alpha.
        coefficient: The fitted C.
        r_squared: Goodness of fit in log space (1.0 = perfect power law).
    """

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit a power law through measured points (requires >= 2 points,
    all positive)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit an exponent")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit needs positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    resid = ly - (slope * lx + intercept)
    total = ly - ly.mean()
    denom = float(total @ total)
    r2 = 1.0 - float(resid @ resid) / denom if denom > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope), coefficient=float(np.exp(intercept)), r_squared=r2
    )


def crossover_point(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """The x at which series A overtakes series B (linear interpolation).

    Returns None when one series dominates throughout.  Used e.g. to locate
    where the adversarial instance's cost crosses the diameter bound.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValueError("series must have equal length")
    diff = [a - b for a, b in zip(ys_a, ys_b)]
    for i in range(1, len(diff)):
        if diff[i - 1] == 0:
            return float(xs[i - 1])
        if diff[i - 1] * diff[i] < 0:
            frac = abs(diff[i - 1]) / (abs(diff[i - 1]) + abs(diff[i]))
            return float(xs[i - 1] + frac * (xs[i] - xs[i - 1]))
    if diff and diff[-1] == 0:
        return float(xs[-1])
    return None
