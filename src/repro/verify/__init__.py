"""Invariant oracles and differential verification (see docs/VERIFY.md).

This package is the correctness substrate of the reproduction: every
simulation can be made self-checking by attaching an
:class:`InvariantChecker` (queue bounds, packet conservation, minimality /
delta-excursion, theorem step budgets), and the differential runner
cross-checks every registered router against every other on seeded random
instances, metamorphic images, and the paper's EX1-EX4 exchange probe.

Entry points:

- ``python -m repro verify [--smoke]`` -- the CLI sweep
- :func:`repro.verify.differential.run_verification` -- the same, in-process
- :func:`repro.verify.oracles.attach_checker` -- instrument one simulator
"""

from repro.verify.oracles import (
    InvariantChecker,
    MinimalityOracle,
    Oracle,
    PacketConservationOracle,
    QueueBoundOracle,
    StepBoundOracle,
    VerificationError,
    Violation,
    attach_checker,
    default_oracles,
)
from repro.verify.differential import (
    FAMILIES,
    REGISTRY,
    SMOKE_FAMILIES,
    CellReport,
    RouterEntry,
    VerificationReport,
    build_instance,
    checked_run,
    cross_check,
    exchangeability_probe,
    reflect_instance,
    run_verification,
    section6_probe,
    transpose_instance,
)
from repro.verify.engine_equivalence import (
    ARRAY_PORTED,
    LOCKSTEP_FAMILIES,
    LockstepReport,
    lockstep_cell,
    run_engine_matrix,
)

__all__ = [
    "InvariantChecker",
    "MinimalityOracle",
    "Oracle",
    "PacketConservationOracle",
    "QueueBoundOracle",
    "StepBoundOracle",
    "VerificationError",
    "Violation",
    "attach_checker",
    "default_oracles",
    "FAMILIES",
    "REGISTRY",
    "SMOKE_FAMILIES",
    "CellReport",
    "RouterEntry",
    "VerificationReport",
    "build_instance",
    "checked_run",
    "cross_check",
    "exchangeability_probe",
    "reflect_instance",
    "run_verification",
    "section6_probe",
    "transpose_instance",
    "ARRAY_PORTED",
    "LOCKSTEP_FAMILIES",
    "LockstepReport",
    "lockstep_cell",
    "run_engine_matrix",
]
