"""Lockstep equivalence harness: the array engine vs. the reference engine.

The array backend (:mod:`repro.mesh.array_engine`) re-implements the
step engine as batched numpy operations.  Its correctness claim is not
"statistically similar" but **bit-identical**: on every instance it
accepts, it must produce exactly the configuration trace the reference
engine produces -- same queues, same packet order inside each queue,
same packet states, same delivery times, same counters.  This module is
the gate that enforces that claim.

One *lockstep run* builds the same instance twice (fresh packet copies),
once per engine, then advances both simulators one step at a time and
compares :meth:`Simulator.configuration` -- the paper's "configuration
of the network" -- after **every** step, not just at the end.  Any
divergence is reported with the exact step at which it first appeared,
which localizes a kernel bug to one phase of one step.  After the run
(completion, budget exhaustion, or divergence) the full
:class:`~repro.mesh.simulator.RunResult` fields and the deterministic
scheduling counters are compared field by field.

The harness reuses the differential runner's router registry and
instance families (:mod:`repro.verify.differential`), so a lockstep cell
is addressed the same way as a differential cell: (router, family, n, k,
seed).  :func:`run_engine_matrix` sweeps a grid of cells -- this is what
the CI ``engine-lockstep`` job and ``repro verify --engines`` run.

Routers the array backend has not ported silently fall back to the
reference engine at dispatch time; a lockstep run would then trivially
"pass" by comparing the reference engine against itself.  The harness
therefore checks :attr:`Simulator.engine_name` after construction and
(by default) reports a non-engaged array engine as a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mesh import Packet, Simulator, Topology
from repro.verify.differential import (
    REGISTRY,
    RouterEntry,
    build_instance,
    fresh_copies,
    step_budget,
)

#: Registry names of the routers the array backend has kernels for, in
#: registry order.  Extending the backend means appending here *and*
#: registering the kernel in ``repro.mesh.array_engine``; the lockstep
#: test suite asserts the two lists agree.
ARRAY_PORTED = (
    "dor",
    "bounded-dor",
    "hot-potato",
    "greedy-adaptive",
    "farthest-first",
    "credit-adaptive",
)

#: Instance families the lockstep matrix sweeps by default: static
#: permutations on both topologies plus the dynamic (timed-injection)
#: family, which exercises the array engine's pending-packet path.
LOCKSTEP_FAMILIES = ("permutation", "torus", "dynamic")


@dataclass
class LockstepReport:
    """Outcome of one lockstep cell (router, family, n, k, seed).

    Attributes:
        steps: Steps both engines executed together.
        engaged: True when the array simulator actually dispatched to the
            array engine (``engine_name == "array"``) rather than falling
            back to the reference implementation.
        divergence_step: First step whose configurations differed, or
            ``None`` when the trace matched throughout.
        findings: Human-readable mismatch descriptions; empty means the
            engines were bit-identical on this cell.
    """

    router: str
    family: str
    n: int
    k: int
    seed: int
    steps: int = 0
    engaged: bool = False
    divergence_step: int | None = None
    findings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the cell produced no findings."""
        return not self.findings

    def to_metrics(self) -> dict[str, Any]:
        """Flat JSON-serializable summary (campaign-harness row payload)."""
        return {
            "router": self.router,
            "family": self.family,
            "n": self.n,
            "k": self.k,
            "seed": self.seed,
            "steps": self.steps,
            "engaged": self.engaged,
            "divergence_step": self.divergence_step,
            "findings": self.findings,
            "ok": self.ok,
        }


#: RunResult fields compared after a lockstep run.  ``series`` is omitted
#: (recording is off here; the golden tests cover it) and ``counters``
#: is compared separately because instrumented runs add wall-clock keys.
_RESULT_FIELDS = (
    "completed",
    "steps",
    "total_packets",
    "delivered",
    "max_queue_len",
    "max_node_load",
    "total_moves",
    "delivery_times",
)

#: Deterministic scheduling counters; wall-clock instrumentation keys
#: (``wall_s`` etc.) are intentionally not in this list.
_COUNTER_KEYS = (
    "scheduled_moves",
    "accepted_moves",
    "refused_moves",
    "injected_packets",
)


def lockstep(
    reference: Simulator,
    array: Simulator,
    max_steps: int,
    report: LockstepReport,
) -> None:
    """Advance both simulators together, comparing every configuration.

    Appends findings to ``report`` in place.  Stops at the first trace
    divergence (later steps of a diverged pair compare garbage against
    garbage), at completion of both runs, or at ``max_steps``.
    """
    while not (reference.done and array.done) and report.steps < max_steps:
        if reference.done != array.done:
            report.findings.append(
                f"done-state diverged at step {report.steps}: "
                f"reference={reference.done} array={array.done}"
            )
            report.divergence_step = report.steps
            return
        reference.step()
        array.step()
        report.steps += 1
        if reference.configuration() != array.configuration():
            report.findings.append(
                f"configuration diverged at step {report.steps}"
            )
            report.divergence_step = report.steps
            return
    compare_final(reference, array, report)


def compare_final(
    reference: Simulator, array: Simulator, report: LockstepReport
) -> None:
    """Field-by-field comparison of the two engines' final outcomes."""
    ref_result = reference.result()
    arr_result = array.result()
    for name in _RESULT_FIELDS:
        ref_value = getattr(ref_result, name)
        arr_value = getattr(arr_result, name)
        if ref_value != arr_value:
            detail = (
                f"({len(ref_value)} vs {len(arr_value)} entries)"
                if isinstance(ref_value, dict)
                else f"(reference={ref_value!r} array={arr_value!r})"
            )
            report.findings.append(f"result.{name} mismatch {detail}")
    for key in _COUNTER_KEYS:
        ref_value = ref_result.counters.get(key)
        arr_value = arr_result.counters.get(key)
        if ref_value != arr_value:
            report.findings.append(
                f"counter {key} mismatch "
                f"(reference={ref_value!r} array={arr_value!r})"
            )
    if reference.rejected != array.rejected:
        report.findings.append(
            f"rejected-set mismatch ({len(reference.rejected)} vs "
            f"{len(array.rejected)} packets)"
        )


def lockstep_cell(
    router: str,
    family: str,
    n: int,
    k: int,
    seed: int,
    *,
    max_steps: int | None = None,
    require_array: bool = True,
) -> LockstepReport:
    """Run one (router, family, n, k, seed) cell on both engines in lockstep.

    ``max_steps`` defaults to the differential runner's step budget,
    shortened for router/family pairs documented never to complete (the
    engines must still agree step for step while livelocked, so those
    cells are compared over a bounded window rather than skipped).
    ``require_array=False`` permits the array simulator to have fallen
    back to the reference engine (useful for probing dispatch itself);
    the default treats a silent fallback as a finding, because a
    reference-vs-reference comparison proves nothing.
    """
    entry: RouterEntry = REGISTRY[router]
    topology, packets = build_instance(family, n, seed)
    if max_steps is None:
        budget = step_budget(n, k)
        max_steps = (
            budget if entry.expects_completion(family) else min(budget, 50 * n)
        )

    reference = Simulator(
        topology, entry.factory(k, seed), fresh_copies(packets)
    )
    array = Simulator(
        topology, entry.factory(k, seed), fresh_copies(packets), engine="array"
    )
    report = LockstepReport(router=router, family=family, n=n, k=k, seed=seed)
    report.engaged = array.engine_name == "array"
    if require_array and not report.engaged:
        report.findings.append(
            "array engine did not engage (dispatch fell back to reference)"
        )
        return report
    lockstep(reference, array, max_steps, report)
    return report


def run_engine_matrix(
    *,
    routers: tuple[str, ...] = ARRAY_PORTED,
    families: tuple[str, ...] = LOCKSTEP_FAMILIES,
    sizes: tuple[int, ...] = (8, 16),
    ks: tuple[int, ...] = (1, 2),
    seeds: tuple[int, ...] = (0,),
    max_steps: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[LockstepReport]:
    """Lockstep-compare every cell of the grid; the CI equivalence gate.

    Returns one report per cell; the sweep is clean iff every report's
    ``ok`` is True.  The default grid covers every ported router on mesh
    and torus permutations plus dynamic timed-injection traffic.
    ``max_steps`` caps every cell at a fixed lockstep window (the per-step
    comparison makes a bounded prefix a sound gate); ``None`` lets each
    cell run to its own step budget.
    """
    reports = []
    for router in routers:
        for family in families:
            for n in sizes:
                for k in ks:
                    for seed in seeds:
                        if progress:
                            progress(
                                f"lockstep {router} {family} "
                                f"n={n} k={k} seed={seed}"
                            )
                        reports.append(
                            lockstep_cell(
                                router, family, n, k, seed,
                                max_steps=max_steps,
                            )
                        )
    return reports
