"""Differential and metamorphic cross-checking of every registered router.

One *cell* is (workload family, n, k, seed).  For each cell the runner
routes the same instance through every registered router with the full
oracle battery attached, then cross-checks the outcomes:

- **Bound compliance / invariants**: every run is oracle-clean (queue
  bound, conservation, minimality, step bounds) -- even runs that stall.
- **Completion expectations**: routers route the families they are
  guaranteed (or long observed) to finish; an unexpected stall is a
  finding.  Deadlock-prone configurations (the paper's own subject
  matter!) are encoded as expectations, not failures: e.g. plain FIFO
  dimension order livelocks on dynamic h-h traffic.
- **Delivered-set equality**: every completed router delivered exactly the
  same packet-id set (all of them).
- **Determinism**: repeating a run step-count- and delivery-time-identical
  (catches hidden global state; the randomized router is seeded).
- **Metamorphic symmetry**: the transpose and reflection images of an
  instance are routed clean and complete whenever the original does.
  (Step counts may legitimately differ: tie-breaking priorities are not
  symmetric under the transforms, so only validity is asserted.)
- **Exchangeability probe** (per run, not per cell): the Section 3/5
  adversaries perform their EX1-EX4 destination exchanges mid-flight, and
  replaying the final permutation from scratch must reproduce the exact
  same configuration trace (Lemma 12) -- the paper's indistinguishability
  claim, executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mesh import (
    Mesh,
    MeshND,
    Packet,
    Simulator,
    SparsePillarMesh,
    Topology,
    Torus,
    TorusND,
    TOPOLOGY_NAMES,
)
from repro.mesh.errors import SimulationError
from repro.mesh.interfaces import RoutingAlgorithm
from repro.verify.oracles import (
    InvariantChecker,
    MinimalityOracle,
    PacketConservationOracle,
    QueueBoundOracle,
    StepBoundOracle,
    VerificationError,
    Violation,
)

FAMILIES = ("permutation", "hh", "torus", "dynamic", "mesh3d", "torus3d", "pillar")

#: The analysis-topology name (see ``repro.mesh.ndtopology.TOPOLOGY_NAMES``)
#: each workload family runs on.  Routers are only exercised on families
#: whose topology they are registered for (``RouterEntry.topologies``).
FAMILY_TOPOLOGY: dict[str, str] = {
    "permutation": "mesh",
    "hh": "mesh",
    "dynamic": "mesh",
    "torus": "torus",
    "mesh3d": "mesh3d",
    "torus3d": "torus3d",
    "pillar": "pillar",
}

#: Families included by ``python -m repro verify --smoke``.
SMOKE_FAMILIES = ("permutation", "hh", "torus", "mesh3d", "pillar")


@dataclass(frozen=True)
class RouterEntry:
    """One registered router: how to build it, and what it promises.

    ``factory(k, seed)`` must return a fresh algorithm instance.  Capacity
    floors (e.g. the adaptive routers need k >= 2 incoming queues to avoid
    the head-on deadlock the paper studies) live inside the factory.
    ``completes`` maps a family name to the expectation that the router
    delivers every packet there; unlisted families default to True.
    ``topologies`` lists the analysis topologies the router is registered
    on -- the 2D routers hard-code the four-direction mesh, so they default
    to the classic pair; a d-dimensional router opts into the rest.
    """

    name: str
    factory: Callable[[int, int], RoutingAlgorithm]
    completes: dict[str, bool] = field(default_factory=dict)
    topologies: tuple[str, ...] = ("mesh", "torus")

    def expects_completion(self, family: str) -> bool:
        return self.completes.get(family, True)

    def supports_topology(self, topology_name: str) -> bool:
        return topology_name in self.topologies

    def supports_family(self, family: str) -> bool:
        return FAMILY_TOPOLOGY.get(family, "mesh") in self.topologies


def _registry() -> dict[str, RouterEntry]:
    from repro.routing import (
        AlternatingAdaptiveRouter,
        BoundedDimensionOrderRouter,
        BoundedExcursionRouter,
        CreditAdaptiveRouter,
        DimensionOrderRouter,
        FarthestFirstRouter,
        GreedyAdaptiveRouter,
        HotPotatoRouter,
        RandomizedAdaptiveRouter,
    )

    entries = [
        # Plain FIFO dimension order deadlocks head-of-line on sustained
        # h-h traffic at any central capacity; that *is* the Section 5
        # lower-bound story, so it is an expectation, not a bug.
        RouterEntry(
            "dor",
            lambda k, s: DimensionOrderRouter(max(k, 4)),
            completes={"hh": False, "dynamic": False},
        ),
        RouterEntry("bounded-dor", lambda k, s: BoundedDimensionOrderRouter(k)),
        RouterEntry("farthest-first", lambda k, s: FarthestFirstRouter(k)),
        RouterEntry(
            "greedy-adaptive",
            lambda k, s: GreedyAdaptiveRouter(max(k, 2), "incoming"),
        ),
        RouterEntry(
            "alternating-adaptive",
            lambda k, s: AlternatingAdaptiveRouter(max(k, 2), "incoming"),
        ),
        RouterEntry("hot-potato", lambda k, s: HotPotatoRouter()),
        RouterEntry(
            "randomized-adaptive",
            lambda k, s: RandomizedAdaptiveRouter(max(k, 2), s, "incoming"),
        ),
        RouterEntry(
            "bounded-excursion",
            lambda k, s: BoundedExcursionRouter(max(k, 2), 1, "incoming"),
        ),
        # The only d-dimensional entry: its escape channel is topology-bound
        # at load time, so one registration covers every analysis topology.
        RouterEntry(
            "credit-adaptive",
            lambda k, s: CreditAdaptiveRouter(k),
            topologies=TOPOLOGY_NAMES,
        ),
    ]
    return {e.name: e for e in entries}


REGISTRY: dict[str, RouterEntry] = _registry()


# -- instances -----------------------------------------------------------------


def build_instance(family: str, n: int, seed: int) -> tuple[Topology, list[Packet]]:
    """The (topology, packets) of one cell.  Deterministic in (family, n, seed)."""
    from repro.workloads import bernoulli_traffic, dynamic_hh_problem, random_permutation

    if family == "permutation":
        mesh = Mesh(n)
        return mesh, random_permutation(mesh, seed=seed)
    if family == "hh":
        mesh = Mesh(n)
        return mesh, dynamic_hh_problem(mesh, 2, spacing=1, seed=seed)
    if family == "torus":
        torus = Torus(n)
        return torus, random_permutation(torus, seed=seed)
    if family == "dynamic":
        mesh = Mesh(n)
        return mesh, bernoulli_traffic(mesh, 0.1, 2 * n, seed=seed)
    if family == "mesh3d":
        cube = MeshND((n, n, n))
        return cube, random_permutation(cube, seed=seed)
    if family == "torus3d":
        cube3 = TorusND((n, n, n))
        return cube3, random_permutation(cube3, seed=seed)
    if family == "pillar":
        pillar = SparsePillarMesh(n)
        return pillar, random_permutation(pillar, seed=seed)
    raise ValueError(f"unknown workload family {family!r}; expected one of {FAMILIES}")


def fresh_copies(packets: list[Packet]) -> list[Packet]:
    """Pristine copies for one more run (pos/state reset, no shared objects)."""
    out = []
    for p in packets:
        q = Packet(p.pid, p.source, p.dest, injection_time=p.injection_time)
        out.append(q)
    return out


def transpose_instance(
    topology: Topology, packets: list[Packet]
) -> tuple[Topology, list[Packet]]:
    """The instance under coordinate reversal -- (x, y) -> (y, x) in 2D.

    Valid on regular, equal-sided topologies (axis permutation is then a
    graph automorphism); the sparse-pillar mesh breaks it because the
    vertical axis is not exchangeable with the grid axes.
    """
    shape = topology.shape
    if not topology.regular or len(set(shape)) != 1:
        raise ValueError(
            "transpose metamorphic transform needs an equal-sided regular topology"
        )
    t = lambda node: tuple(reversed(node))
    image = [
        Packet(p.pid, t(p.source), t(p.dest), injection_time=p.injection_time)
        for p in packets
    ]
    return topology, image


def reflect_instance(
    topology: Topology, packets: list[Packet]
) -> tuple[Topology, list[Packet]]:
    """The instance under first-axis reflection -- (x, y) -> (width-1-x, y).

    Valid on regular topologies; reflection moves the pillar columns of the
    sparse-pillar mesh, so it is rejected there.
    """
    if not topology.regular:
        raise ValueError("reflect metamorphic transform needs a regular topology")
    w = topology.shape[0]
    r = lambda node: (w - 1 - node[0], *node[1:])
    image = [
        Packet(p.pid, r(p.source), r(p.dest), injection_time=p.injection_time)
        for p in packets
    ]
    return topology, image


def step_budget(n: int, k: int) -> int:
    """Generous per-run step cap: several times every proven bound at this size."""
    return max(30 * (n * n // max(k, 1) + n), 4000)


# -- one routed, oracle-checked run -------------------------------------------


@dataclass
class RunOutcome:
    router: str
    completed: bool
    steps: int
    delivered: frozenset[int]
    delivery_times: dict[int, int]
    max_queue_len: int
    violations: list[Violation]


def checked_run(
    entry: RouterEntry,
    topology: Topology,
    packets: list[Packet],
    *,
    k: int,
    seed: int,
    mode: str = "strict",
    bound_steps: int | None = None,
    max_steps: int | None = None,
) -> RunOutcome:
    """Route one instance with the full oracle battery attached."""
    algorithm = entry.factory(k, seed)
    sim = Simulator(topology, algorithm, fresh_copies(packets))
    oracles = [
        PacketConservationOracle(),
        QueueBoundOracle(),
        MinimalityOracle(),
        StepBoundOracle(bound_steps),
    ]
    checker = InvariantChecker(sim, oracles, mode)
    try:
        result = sim.run(max_steps or step_budget(topology.width, k))
        checker.finish()
    except VerificationError:
        # Strict mode aborts the run at the first violation; the checker
        # already recorded it, so the partial outcome is reported as-is.
        result = sim.result()
    except SimulationError as exc:
        # The simulator's own model enforcement tripped (e.g. an overflow
        # with validate on); fold it into the findings as a violation.
        result = sim.result()
        checker.violations.append(
            Violation("simulator", sim.time, f"{type(exc).__name__}: {exc}")
        )
    return RunOutcome(
        router=entry.name,
        completed=result.completed,
        steps=result.steps,
        delivered=frozenset(sim.delivery_times),
        delivery_times=dict(sim.delivery_times),
        max_queue_len=result.max_queue_len,
        violations=checker.violations,
    )


# -- the cell cross-check ------------------------------------------------------


@dataclass
class CellReport:
    """Outcome of cross-checking one (family, n, k, seed) cell."""

    family: str
    n: int
    k: int
    seed: int
    outcomes: dict[str, RunOutcome] = field(default_factory=dict)
    findings: list[str] = field(default_factory=list)
    stalls: list[str] = field(default_factory=list)
    runs: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_metrics(self) -> dict[str, Any]:
        """JSON-serializable summary (the campaign-harness row payload)."""
        return {
            "family": self.family,
            "n": self.n,
            "k": self.k,
            "seed": self.seed,
            "routers": len(self.outcomes),
            "runs": self.runs,
            "violations": sum(len(o.violations) for o in self.outcomes.values()),
            "findings": self.findings,
            "expected_stalls": self.stalls,
            "steps": {name: o.steps for name, o in self.outcomes.items()},
            "ok": self.ok,
        }


def _theorem_bound(entry: RouterEntry, family: str, n: int, k: int, seed: int) -> int | None:
    """The proven step budget this run is held to, if the paper gives one.

    Contract bounds cover permutations on the mesh; other families and the
    torus are outside the theorems' hypotheses, so no budget applies.
    """
    if family != "permutation":
        return None
    return entry.factory(k, seed).permutation_step_bound(n)


def cross_check(
    family: str,
    n: int,
    k: int,
    seed: int,
    *,
    routers: list[str] | None = None,
    mode: str = "strict",
    metamorphic: bool = True,
) -> CellReport:
    """Run one cell through every router and cross-check the outcomes.

    In ``record`` mode oracle violations become findings instead of raising,
    so one report can carry several routers' failures.
    """
    topology, packets = build_instance(family, n, seed)
    report = CellReport(family=family, n=n, k=k, seed=seed)
    names = [
        name
        for name in (routers or list(REGISTRY))
        if REGISTRY[name].supports_family(family)
    ]
    all_pids = frozenset(p.pid for p in packets)
    # Metamorphic transforms that are automorphisms of *this* topology.
    transforms: list[tuple[str, Callable[..., tuple[Topology, list[Packet]]]]] = []
    if topology.regular:
        if len(set(topology.shape)) == 1:
            transforms.append(("transpose", transpose_instance))
        transforms.append(("reflect", reflect_instance))

    for name in names:
        entry = REGISTRY[name]
        bound = _theorem_bound(entry, family, n, k, seed)
        expected = entry.expects_completion(family)
        # Expected stalls burn the whole step budget; cap them short.
        cap = None if expected else min(step_budget(n, k), 50 * n)
        outcome = checked_run(
            entry, topology, packets, k=k, seed=seed, mode=mode,
            bound_steps=bound, max_steps=cap,
        )
        report.outcomes[name] = outcome
        report.runs += 1
        for v in outcome.violations:
            report.findings.append(f"{name}: {v}")
        if expected and not outcome.completed:
            report.findings.append(
                f"{name}: expected to complete {family} n={n} k={k} seed={seed}, "
                f"delivered {len(outcome.delivered)}/{len(all_pids)} "
                f"in {outcome.steps} steps"
            )
        elif not expected and not outcome.completed:
            report.stalls.append(name)

        if outcome.completed and outcome.delivered != all_pids:
            missing = sorted(all_pids - outcome.delivered)[:5]
            report.findings.append(
                f"{name}: completed but delivered set mismatch (missing {missing})"
            )

        # Determinism: the identical run must replay step- and
        # delivery-identical (the randomized router is seeded).
        rerun = checked_run(
            entry, topology, packets, k=k, seed=seed, mode=mode,
            bound_steps=bound, max_steps=cap,
        )
        report.runs += 1
        if (rerun.steps, rerun.delivery_times) != (
            outcome.steps,
            outcome.delivery_times,
        ):
            report.findings.append(
                f"{name}: nondeterministic replay (steps {outcome.steps} vs "
                f"{rerun.steps})"
            )

        if metamorphic and expected:
            for tname, transform in transforms:
                itopo, ipackets = transform(topology, packets)
                image = checked_run(
                    entry, itopo, ipackets, k=k, seed=seed, mode=mode,
                    bound_steps=bound,
                )
                report.runs += 1
                for v in image.violations:
                    report.findings.append(f"{name}/{tname}: {v}")
                if not image.completed:
                    report.findings.append(
                        f"{name}: {tname} image of {family} n={n} k={k} "
                        f"seed={seed} stalled at {image.steps} steps"
                    )
                elif image.delivered != all_pids:
                    report.findings.append(
                        f"{name}: {tname} image delivered set mismatch"
                    )

    # Delivered-set equality across completed routers (all must equal the
    # full pid set; asymmetries were already reported individually, this
    # catches consistent-but-wrong subsets).
    delivered_sets = {
        o.delivered for o in report.outcomes.values() if o.completed
    }
    if len(delivered_sets) > 1:
        report.findings.append(
            f"completed routers disagree on the delivered set "
            f"({len(delivered_sets)} distinct sets)"
        )
    return report


# -- paper-level probes (per verification run, not per cell) -------------------


def exchangeability_probe(construction: str = "adaptive", n: int = 60, k: int = 1) -> list[str]:
    """The EX1-EX4 swap test: adversary exchanges must be invisible.

    Runs a lower-bound construction (whose interceptor performs the paper's
    EX1-EX4 destination exchanges mid-flight) and then replays the *final*
    permutation from scratch without any interceptor.  Lemma 12: both runs
    must produce identical configuration traces and delivery times.  A
    router that sneaks destination information into a policy breaks this
    immediately.
    """
    from repro.core import (
        AdaptiveLowerBoundConstruction,
        DorLowerBoundConstruction,
        replay_constructed_permutation,
    )
    from repro.routing import BoundedDimensionOrderRouter, GreedyAdaptiveRouter

    if construction == "adaptive":
        factory = lambda: GreedyAdaptiveRouter(k)
        con = AdaptiveLowerBoundConstruction(n, factory)
    elif construction == "dor":
        factory = lambda: BoundedDimensionOrderRouter(k)
        con = DorLowerBoundConstruction(n, factory)
    else:
        raise ValueError(f"unknown probe construction {construction!r}")

    result = con.run()
    rep = replay_constructed_permutation(result, factory, run_to_completion=False)
    findings = []
    if result.exchange_count == 0:
        findings.append(f"{construction} probe n={n}: adversary performed no exchanges")
    if not rep.configuration_matches:
        findings.append(
            f"{construction} probe n={n} k={k}: configurations diverge after "
            f"EX swaps (destination-exchangeability broken)"
        )
    if not rep.delivery_times_match:
        findings.append(
            f"{construction} probe n={n} k={k}: delivery times diverge after EX swaps"
        )
    return findings


def section6_probe(n: int = 27, seed: int = 0) -> list[str]:
    """The Section 6 tiling bound: scheduled steps and queue occupancy must
    stay within the paper's 972n / 834 budgets on a routed permutation."""
    from repro.tiling import Section6Router
    from repro.workloads import random_permutation

    mesh = Mesh(n)
    result = Section6Router(n).route(random_permutation(mesh, seed=seed))
    findings = []
    if not result.completed:
        findings.append(f"section6 probe n={n}: routing did not complete")
    if result.scheduled_steps > result.paper_time_bound:
        findings.append(
            f"section6 probe n={n}: scheduled {result.scheduled_steps} steps "
            f"> paper bound {result.paper_time_bound}"
        )
    if result.max_node_load > result.paper_queue_bound:
        findings.append(
            f"section6 probe n={n}: node load {result.max_node_load} "
            f"> paper bound {result.paper_queue_bound}"
        )
    return findings


# -- whole verification sweeps -------------------------------------------------


@dataclass
class VerificationReport:
    cells: list[CellReport] = field(default_factory=list)
    probe_findings: list[str] = field(default_factory=list)

    @property
    def findings(self) -> list[str]:
        out = list(self.probe_findings)
        for cell in self.cells:
            out.extend(
                f"[{cell.family} n={cell.n} k={cell.k} seed={cell.seed}] {f}"
                for f in cell.findings
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def runs(self) -> int:
        return sum(c.runs for c in self.cells)


def run_verification(
    *,
    families: tuple[str, ...] = SMOKE_FAMILIES,
    sizes: tuple[int, ...] = (8,),
    ks: tuple[int, ...] = (1, 2),
    seeds: tuple[int, ...] = (0,),
    routers: list[str] | None = None,
    mode: str = "record",
    metamorphic: bool = True,
    probes: bool = True,
    progress: Callable[[str], None] | None = None,
) -> VerificationReport:
    """Cross-check every cell in the given grid plus the paper-level probes."""
    report = VerificationReport()
    if probes:
        for construction in ("adaptive", "dor"):
            if progress:
                progress(f"probe {construction} (EX1-EX4 swap test)")
            report.probe_findings.extend(exchangeability_probe(construction))
        if progress:
            progress("probe section6 (tiling bounds)")
        report.probe_findings.extend(section6_probe())
    for family in families:
        for n in sizes:
            for k in ks:
                for seed in seeds:
                    if progress:
                        progress(f"cell {family} n={n} k={k} seed={seed}")
                    report.cells.append(
                        cross_check(
                            family, n, k, seed,
                            routers=routers, mode=mode, metamorphic=metamorphic,
                        )
                    )
    return report
