"""Invariant oracles: the paper's guarantees, checked on every step.

Each oracle watches one claim the paper proves (or the model demands) and
is attached to a :class:`~repro.mesh.simulator.Simulator` through its
pre/post-step hook points by an :class:`InvariantChecker`:

- :class:`PacketConservationOracle` -- packets are never created,
  destroyed, or duplicated; deliveries happen exactly at destinations.
- :class:`QueueBoundOracle` -- no queue ever exceeds its capacity ``k``,
  per queue regime (Section 2's inqueue obligation).
- :class:`MinimalityOracle` -- minimal routers only make profitable moves;
  delta-bounded routers stay within the Section 5 excursion rectangle.
- :class:`StepBoundOracle` -- runs finish within the algorithm's proven
  step budget (Theorem 15 for bounded dimension order) and never beat the
  per-packet distance floor.

Checkers run in one of three modes:

- ``strict``: a violation raises :class:`VerificationError` immediately
  (tests, the differential runner).
- ``record``: violations are appended to ``checker.violations`` and
  tallied in ``checker.counters`` -- cheap enough for benchmark sweeps
  that want invariant telemetry without aborting.
- ``off``: nothing is attached; zero per-step cost.

The oracles deliberately re-derive everything from public simulator state
instead of trusting the simulator's own ``validate`` flag, so they catch
regressions in the enforcement code itself (run with ``validate=False`` to
see them work alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.mesh.simulator import ScheduledMove, Simulator

MODES = ("strict", "record", "off")


class VerificationError(AssertionError):
    """An oracle observed a violated invariant (strict mode)."""

    def __init__(self, violation: "Violation") -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation."""

    oracle: str
    time: int
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle} @ step {self.time}] {self.message}"


class Oracle:
    """Base class: override any subset of the hook methods."""

    name = "oracle"

    def on_attach(self, checker: "InvariantChecker", sim: Simulator) -> None:
        """Called once when the checker attaches to the simulator."""

    def pre_step(self, checker: "InvariantChecker", sim: Simulator) -> None:
        """Called at the top of every step, before scheduling."""

    def post_step(
        self, checker: "InvariantChecker", sim: Simulator, moves: list[ScheduledMove]
    ) -> None:
        """Called at the end of every step with the transmitted moves."""

    def on_finish(self, checker: "InvariantChecker", sim: Simulator) -> None:
        """Called once by :meth:`InvariantChecker.finish` after the run."""


@dataclass
class InvariantChecker:
    """Wires a set of oracles into one simulator and collects violations."""

    sim: Simulator
    oracles: list[Oracle]
    mode: str = "strict"
    violations: list[Violation] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.mode == "off":
            return
        for oracle in self.oracles:
            oracle.on_attach(self, self.sim)
        self.sim.pre_step_hooks.append(self._pre)
        self.sim.post_step_hooks.append(self._post)

    def _pre(self, sim: Simulator) -> None:
        for oracle in self.oracles:
            oracle.pre_step(self, sim)

    def _post(self, sim: Simulator, moves: list[ScheduledMove]) -> None:
        for oracle in self.oracles:
            oracle.post_step(self, sim, moves)

    def finish(self) -> list[Violation]:
        """Run end-of-run checks; returns all collected violations."""
        if self.mode != "off":
            for oracle in self.oracles:
                oracle.on_finish(self, self.sim)
        return self.violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self, oracle: Oracle, message: str) -> None:
        violation = Violation(oracle.name, self.sim.time, message)
        self.counters[oracle.name] = self.counters.get(oracle.name, 0) + 1
        self.violations.append(violation)
        if self.mode == "strict":
            raise VerificationError(violation)


def attach_checker(
    sim: Simulator, oracles: Iterable[Oracle], mode: str = "strict"
) -> InvariantChecker:
    """Convenience constructor mirroring ``InvariantChecker(...)``."""
    return InvariantChecker(sim, list(oracles), mode)


# -- the oracles ---------------------------------------------------------------


class PacketConservationOracle(Oracle):
    """Packets are conserved: pending + in-network + delivered + dropped
    + rejected == total, no pid occupies two queues, deliveries happen at
    the destination, and the delivered set only grows.

    The dropped term is conservation-modulo-dropped for faulty runs (see
    :mod:`repro.faults`): a packet leaves the accounting only by being
    delivered or by being explicitly recorded in ``Simulator.dropped``.
    The rejected term is its admission-time analogue for open-loop
    streaming runs (see :mod:`repro.streaming`): a packet refused at the
    source under backpressure is recorded in ``Simulator.rejected`` and
    never enters the network, but stays in the accounting.  In closed-loop
    fault-free runs both dicts are empty and the invariant reduces to the
    original equality."""

    name = "packet-conservation"

    def on_attach(self, checker: InvariantChecker, sim: Simulator) -> None:
        self._delivered_seen: set[int] = set(sim.delivery_times)

    def post_step(
        self, checker: InvariantChecker, sim: Simulator, moves: list[ScheduledMove]
    ) -> None:
        in_network = 0
        seen: set[int] = set()
        for p in sim.iter_packets():
            in_network += 1
            if p.pid in seen:
                checker.report(self, f"packet {p.pid} occupies two queues")
            seen.add(p.pid)
            if p.pid in sim.delivery_times:
                checker.report(
                    self, f"packet {p.pid} still queued after delivery"
                )
            if p.pid in sim.dropped:
                checker.report(
                    self, f"packet {p.pid} still queued after being dropped"
                )
            if p.pid in sim.rejected:
                checker.report(
                    self, f"packet {p.pid} queued despite admission rejection"
                )
        if in_network != sim.in_flight:
            checker.report(
                self,
                f"in-flight counter {sim.in_flight} != queued packets {in_network}",
            )
        total = (
            len(sim.delivery_times)
            + in_network
            + sim.pending_count
            + len(sim.dropped)
            + len(sim.rejected)
        )
        if total != sim.total_packets:
            checker.report(
                self,
                f"conservation broken: delivered {len(sim.delivery_times)} + "
                f"queued {in_network} + pending {sim.pending_count} + "
                f"dropped {len(sim.dropped)} + rejected {len(sim.rejected)} "
                f"!= total {sim.total_packets}",
            )
        delivered_now = set(sim.delivery_times)
        if not self._delivered_seen <= delivered_now:
            lost = sorted(self._delivered_seen - delivered_now)[:5]
            checker.report(self, f"delivered set shrank (lost pids {lost})")
        newly_delivered = delivered_now - self._delivered_seen
        for mv in moves:
            p = mv.packet
            if p.pid in newly_delivered and p.pos != p.dest:
                checker.report(
                    self,
                    f"packet {p.pid} recorded delivered at {p.pos}, "
                    f"destination is {p.dest}",
                )
        self._delivered_seen = delivered_now


class QueueBoundOracle(Oracle):
    """No queue ever holds more than ``k`` packets, and only queue keys the
    regime defines are in use (Section 2 / Section 5 queue models)."""

    name = "queue-bound"

    def post_step(
        self, checker: InvariantChecker, sim: Simulator, moves: list[ScheduledMove]
    ) -> None:
        spec = sim.spec
        allowed = set(spec.keys)
        for node, node_queues in sim.queues.items():
            for key, q in node_queues.items():
                if len(q) > spec.capacity:
                    checker.report(
                        self,
                        f"queue {key!r} at {node} holds {len(q)} > "
                        f"capacity {spec.capacity}",
                    )
                if q and key not in allowed:
                    checker.report(
                        self,
                        f"queue key {key!r} at {node} is outside the "
                        f"{spec.kind} regime",
                    )


class MinimalityOracle(Oracle):
    """Minimal routers shrink distance-to-destination by exactly one per
    move; delta-bounded routers never stray more than ``delta`` hops beyond
    the rectangle spanned by source and destination (Section 5's class).

    The rectangle check is skipped on wrapping topologies, where the
    spanned rectangle is not well defined, and under an interceptor, whose
    destination exchanges redefine the rectangle mid-flight.
    """

    name = "minimality"

    def post_step(
        self, checker: InvariantChecker, sim: Simulator, moves: list[ScheduledMove]
    ) -> None:
        delta = sim.algorithm.excursion_delta()
        if delta is None:
            return
        topo = sim.topology
        if sim.algorithm.minimal:
            for mv in moves:
                before = topo.distance(mv.src, mv.packet.dest)
                after = topo.distance(mv.target, mv.packet.dest)
                if after != before - 1:
                    checker.report(
                        self,
                        f"packet {mv.packet.pid} moved {mv.src}->{mv.target} "
                        f"(distance {before}->{after}), not a profitable move "
                        f"for dest {mv.packet.dest}",
                    )
        if topo.wraps or not topo.regular or sim.interceptor is not None:
            # Irregular topologies (sparse-pillar) route minimally *around*
            # missing links, so minimal paths legitimately leave the box.
            return
        for mv in moves:
            p = mv.packet
            excess = _rectangle_excess(p.pos, p.source, p.dest)
            if excess > delta:
                checker.report(
                    self,
                    f"packet {p.pid} at {p.pos} strays {excess} > delta "
                    f"{delta} beyond rectangle {p.source}..{p.dest}",
                )


def _rectangle_excess(
    pos: tuple[int, ...], a: tuple[int, ...], b: tuple[int, ...]
) -> int:
    """Manhattan distance from ``pos`` to the box spanned by a and b (any d)."""
    excess = 0
    for x, ax, bx in zip(pos, a, b):
        lo, hi = min(ax, bx), max(ax, bx)
        excess += max(lo - x, 0, x - hi)
    return excess


class StepBoundOracle(Oracle):
    """Completed runs respect the algorithm's proven step budget and the
    trivial distance floor.

    ``bound_steps`` is the theorem budget the run is held to (None = no
    proven bound, only the floor is checked).  The floor -- a packet cannot
    be delivered before ``injection_time + distance(source, dest)`` -- is
    checked per packet, but only when no interceptor rewrote destinations.
    """

    name = "step-bound"

    def __init__(self, bound_steps: int | None) -> None:
        self.bound_steps = bound_steps

    def on_attach(self, checker: InvariantChecker, sim: Simulator) -> None:
        self._floor = {}
        if sim.interceptor is None:
            topo = sim.topology
            for p in sim.iter_packets():
                self._floor[p.pid] = p.injection_time + topo.distance(p.source, p.dest)
            # Pending (dynamic) packets are not in the queues yet.
            for p in sim._pending:
                self._floor[p.pid] = p.injection_time + topo.distance(p.source, p.dest)

    def post_step(
        self, checker: InvariantChecker, sim: Simulator, moves: list[ScheduledMove]
    ) -> None:
        if self.bound_steps is not None and sim.time > self.bound_steps:
            checker.report(
                self,
                f"step {sim.time} exceeds the proven bound {self.bound_steps} "
                f"with {sim.undelivered} packet(s) undelivered",
            )

    def on_finish(self, checker: InvariantChecker, sim: Simulator) -> None:
        for pid, t in sim.delivery_times.items():
            floor = self._floor.get(pid)
            if floor is not None and t < floor:
                checker.report(
                    self,
                    f"packet {pid} delivered at step {t}, before its "
                    f"distance floor {floor}",
                )


def default_oracles(sim: Simulator, *, bound_steps: int | None = None) -> list[Oracle]:
    """The full oracle battery for one simulator.

    When ``bound_steps`` is None, the algorithm's own contract bound for
    the topology's side length is used (when it has one).
    """
    if bound_steps is None:
        bound_steps = sim.algorithm.permutation_step_bound(
            max(sim.topology.width, sim.topology.height)
        )
    return [
        PacketConservationOracle(),
        QueueBoundOracle(),
        MinimalityOracle(),
        StepBoundOracle(bound_steps),
    ]
